"""Ablation: JSON-lines serial transport vs binary framed pipelining.

PR 1 put an adaptive batcher behind the frontend, but the JSON-lines
transport above it still paid text codecs and one in-flight request per
connection — a batcher cannot coalesce what the wire never delivers
concurrently. This ablation measures the two transport taxes removed by
the binary framed protocol (`repro.frontend.wire`):

* **Codec cost** — encode+decode round-trip time and wire size for
  representative requests/responses, JSON-lines vs struct-packed binary
  (ndarray payloads as raw dtype/shape/bytes).
* **Transport throughput** — closed-loop predict throughput against the
  same engine-backed server: a serial JSON-lines client (one in-flight
  request) vs the pipelined binary client at 1/4/16 in-flight requests
  on one socket.

Shape assertions: binary beats JSON on codec time for feature-vector
payloads, and the pipelined binary path at 16 in-flight beats the serial
JSON-lines baseline by >= 2x throughput on the same workload.

Set ``WIRE_SMOKE=1`` for the fast CI configuration.
"""

from __future__ import annotations

import io
import os
import time
from collections import deque

import numpy as np

from repro.frontend import (
    PipelinedClient,
    PredictApiRequest,
    RemoteClient,
    TopKApiRequest,
    VeloxServer,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)
from repro.frontend import wire
from repro.frontend.api import ApiResponse
from repro.serving import ServingConfig

from conftest import build_mf_serving, write_result

SMOKE = os.environ.get("WIRE_SMOKE", "") not in ("", "0")

DIMENSION = 34
NUM_ITEMS = 1000
NUM_USERS = 64

CODEC_ITERATIONS = 300 if SMOKE else 3000
NUM_REQUESTS = 400 if SMOKE else 3000
PIPELINE_WINDOWS = [1, 4, 16]


# -- codec cost -------------------------------------------------------------


def _time_per_op(fn, iterations: int) -> float:
    start = time.perf_counter()
    for _ in range(iterations):
        fn()
    return (time.perf_counter() - start) / iterations


def _codec_rows():
    rng = np.random.default_rng(7)
    subjects = {
        "predict_int_item": PredictApiRequest(uid=11, item=17, model="bench"),
        "predict_ndarray_d64": PredictApiRequest(
            uid=11, item=rng.normal(size=64)
        ),
        "top_k_50_items": TopKApiRequest(
            uid=11, items=tuple(range(50)), k=10, model="bench"
        ),
    }
    response = ApiResponse(
        ok=True,
        payload={
            "items": [
                {"item": int(i), "score": float(s)}
                for i, s in zip(range(10), rng.normal(size=10))
            ]
        },
    )
    rows = []
    for name, request in subjects.items():
        json_line = encode_request(request)

        def json_roundtrip(request=request):
            decode_request(encode_request(request))

        frame = wire.encode_request_frame(request, 0)

        def binary_roundtrip(request=request):
            opcode, _, payload = wire.read_frame(
                io.BytesIO(wire.encode_request_frame(request, 0))
            )
            wire.decode_request_payload(opcode, payload)

        rows.append(
            {
                "name": name,
                "json_us": _time_per_op(json_roundtrip, CODEC_ITERATIONS) * 1e6,
                "binary_us": _time_per_op(binary_roundtrip, CODEC_ITERATIONS)
                * 1e6,
                "json_bytes": len(json_line) + 1,
                "binary_bytes": len(frame),
            }
        )

    def json_response_roundtrip():
        decode_response(encode_response(response))

    def binary_response_roundtrip():
        _, _, payload = wire.read_frame(
            io.BytesIO(wire.encode_response_frame(response, 0))
        )
        wire.decode_response_payload(payload)

    rows.append(
        {
            "name": "response_top10",
            "json_us": _time_per_op(json_response_roundtrip, CODEC_ITERATIONS)
            * 1e6,
            "binary_us": _time_per_op(binary_response_roundtrip, CODEC_ITERATIONS)
            * 1e6,
            "json_bytes": len(encode_response(response)) + 1,
            "binary_bytes": len(wire.encode_response_frame(response, 0)),
        }
    )
    return rows


# -- transport throughput ---------------------------------------------------


def _make_plan():
    rng = np.random.default_rng(17)
    return list(
        zip(
            rng.integers(0, NUM_USERS, NUM_REQUESTS).tolist(),
            rng.integers(0, NUM_ITEMS, NUM_REQUESTS).tolist(),
        )
    )


def _serving_stack():
    """Fresh deployment + engine-backed server per run so caches and
    AIMD state never leak across series."""
    velox = build_mf_serving(
        DIMENSION, NUM_ITEMS, num_users=NUM_USERS, num_nodes=1
    )
    engine = velox.serving_engine(
        ServingConfig(
            num_workers=2,
            max_queue_depth=8192,
            max_queue_age=10.0,
            batching="adaptive",
            max_batch_size=64,
            slo_p99=0.1,
        )
    )
    return VeloxServer(velox, engine=engine), engine


def run_serial_json(plan) -> dict:
    server, engine = _serving_stack()
    with server:
        with RemoteClient(server.host, server.port, timeout=30) as client:
            start = time.perf_counter()
            for uid, item in plan:
                response = client.call(PredictApiRequest(uid=uid, item=item))
                assert response.ok, response.error
            elapsed = time.perf_counter() - start
        (snapshot,) = engine.metrics_snapshot().values()
    return {
        "throughput_rps": len(plan) / elapsed,
        "batch_mean": snapshot["batch_size_mean"],
    }


def run_pipelined_binary(plan, window: int) -> dict:
    server, engine = _serving_stack()
    with server:
        with PipelinedClient(server.host, server.port, timeout=30) as client:
            assert client.protocol == "binary"
            outstanding: deque = deque()
            start = time.perf_counter()
            for uid, item in plan:
                if len(outstanding) >= window:
                    response = outstanding.popleft().result(timeout=30)
                    assert response.ok, response.error
                outstanding.append(
                    client.submit(PredictApiRequest(uid=uid, item=item))
                )
            while outstanding:
                response = outstanding.popleft().result(timeout=30)
                assert response.ok, response.error
            elapsed = time.perf_counter() - start
        (snapshot,) = engine.metrics_snapshot().values()
    return {
        "throughput_rps": len(plan) / elapsed,
        "batch_mean": snapshot["batch_size_mean"],
    }


def test_wire_summary(benchmark):
    codec_rows = _codec_rows()
    plan = _make_plan()
    serial = run_serial_json(plan)
    pipelined = {
        window: run_pipelined_binary(plan, window)
        for window in PIPELINE_WINDOWS
    }

    lines = ["== codec round-trip cost =="]
    lines.append(
        "payload               json_us   binary_us  json_bytes  binary_bytes"
    )
    for row in codec_rows:
        lines.append(
            f"{row['name']:<22}{row['json_us']:<10.2f}{row['binary_us']:<11.2f}"
            f"{row['json_bytes']:<12d}{row['binary_bytes']:d}"
        )
    lines.append("")
    lines.append(f"== transport throughput ({NUM_REQUESTS} predicts) ==")
    lines.append("transport        in_flight  throughput_rps  batch_mean")
    lines.append(
        f"{'json_serial':<17}{1:<11d}{serial['throughput_rps']:<16.1f}"
        f"{serial['batch_mean']:.2f}"
    )
    for window, row in pipelined.items():
        lines.append(
            f"{'binary_pipelined':<17}{window:<11d}{row['throughput_rps']:<16.1f}"
            f"{row['batch_mean']:.2f}"
        )
    speedup = (
        pipelined[PIPELINE_WINDOWS[-1]]["throughput_rps"]
        / serial["throughput_rps"]
    )
    lines.append("")
    lines.append(
        f"speedup binary_pipelined@{PIPELINE_WINDOWS[-1]} vs json_serial: "
        f"{speedup:.2f}x"
    )
    write_result("ablation_wire", lines)

    # Binary framing beats text codecs on feature-vector payloads.
    ndarray_row = next(
        row for row in codec_rows if row["name"] == "predict_ndarray_d64"
    )
    assert ndarray_row["binary_us"] < ndarray_row["json_us"]
    assert ndarray_row["binary_bytes"] < ndarray_row["json_bytes"]
    # The tentpole claim: pipelined binary at the deepest window beats
    # the serial JSON-lines baseline by >= 2x on the same workload.
    assert speedup >= 2.0
    # Pipelining actually fed the batcher from a single connection.
    assert pipelined[PIPELINE_WINDOWS[-1]]["batch_mean"] > 1.0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

"""A larger end-to-end scale smoke: everything at 10x the unit-test size.

One test, deliberately heavier (~15-25s): a MovieLens-shaped corpus, a
full train → deploy → heavy mixed traffic → staleness-driven retrain →
shadow-checked candidate run, across an 8-node cluster with the
threaded batch scheduler. Guards against regressions that only appear
at scale (quadratic loops, per-request allocations, cache thrash).
"""

import numpy as np
import pytest

from repro import Velox, VeloxConfig
from repro.batch import BatchContext
from repro.core.models import MatrixFactorizationModel
from repro.core.offline import als_train
from repro.data import SynthLensConfig, generate_synthlens, paper_protocol_split
from repro.metrics import rmse
from repro.store import Observation
from repro.workloads import ObserveRequest, ZipfItemSampler, generate_request_stream


@pytest.fixture(scope="module")
def big_deployment():
    lens = generate_synthlens(
        SynthLensConfig(
            num_users=600,
            num_items=400,
            rank=10,
            ratings_per_user_mean=45.0,
            min_ratings_per_user=24,
            zipf_exponent=0.9,
            seed=77,
        )
    )
    split = paper_protocol_split(lens.ratings)
    ctx = BatchContext(default_parallelism=6)
    als = als_train(
        ctx,
        [(r.uid, r.item_id, r.rating) for r in split.init],
        rank=10,
        num_items=lens.num_items,
        num_iterations=6,
    )
    model = MatrixFactorizationModel(
        "songs", als.item_factors, als.item_bias, als.global_mean
    )
    weights = {
        uid: model.pack_user_weights(als.user_factors[uid], als.user_bias[uid])
        for uid in als.user_factors
    }
    velox = Velox.deploy(
        VeloxConfig(num_nodes=8), batch_parallelism=6, auto_retrain=False
    )
    velox.add_model(
        model,
        initial_user_weights=weights,
        seed_observations=[
            Observation(r.uid, r.item_id, r.rating, item_data=r.item_id)
            for r in split.init
        ],
    )
    return velox, lens, split


class TestScale:
    def test_full_lifecycle_at_scale(self, big_deployment):
        velox, lens, split = big_deployment
        truth = [r.rating for r in split.holdout]

        def holdout_rmse():
            return rmse(
                truth,
                [velox.predict(None, r.uid, r.item_id)[1] for r in split.holdout],
            )

        baseline = holdout_rmse()

        # Heavy mixed traffic: 20k predicts + the full stream as observes.
        sampler = ZipfItemSampler(lens.num_items, 0.9, rng=1)
        traffic = generate_request_stream(
            20_000, lens.num_users, sampler, observe_fraction=0.0, rng=2
        )
        for request in traffic:
            __, score = velox.predict(None, request.uid, request.item_id)
            assert np.isfinite(score)
        for r in split.stream:
            velox.observe(uid=r.uid, x=r.item_id, y=r.rating)

        online = holdout_rmse()
        assert online < baseline

        # Zipf traffic should make the feature caches genuinely hot.
        stats = velox.service.cache_stats()
        hit_rate = stats["feature_hits"] / (
            stats["feature_hits"] + stats["feature_misses"]
        )
        assert hit_rate > 0.6

        # Retrain on ~ >30k logged observations via the threaded scheduler.
        event = velox.retrain(reason="scale test")
        retrained = holdout_rmse()
        assert retrained < baseline
        assert event.observations_used > 20_000

        # Routing stayed local for user traffic across all 8 nodes.
        loads = [n.stats.requests_served for n in velox.cluster.nodes]
        assert min(loads) > 0
        assert max(loads) < 2.0 * (sum(loads) / len(loads))

        # Catalog-wide indexed topK at scale.
        top = velox.top_k_catalog(None, uid=11, k=20)
        assert len(top) == 20
        scores = [s for __i, s in top]
        assert scores == sorted(scores, reverse=True)

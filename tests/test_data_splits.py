"""Split utilities, including the Section 4.2 protocol split."""

import pytest

from repro.common.errors import ValidationError
from repro.data import (
    Rating,
    paper_protocol_split,
    split_by_fraction,
    split_per_user,
)


def make_ratings(num_users: int, per_user: int) -> list[Rating]:
    ratings = []
    t = 0
    for uid in range(num_users):
        for j in range(per_user):
            ratings.append(Rating(uid, j, 3.0, float(t)))
            t += 1
    return ratings


class TestSplitByFraction:
    def test_sizes(self):
        ratings = make_ratings(10, 10)
        split = split_by_fraction(ratings, 0.8, seed=1)
        assert len(split.train) == 80
        assert len(split.test) == 20

    def test_disjoint_and_complete(self):
        ratings = make_ratings(5, 8)
        split = split_by_fraction(ratings, 0.5, seed=2)
        combined = {(r.uid, r.item_id) for r in split.train + split.test}
        assert len(combined) == 40

    def test_deterministic(self):
        ratings = make_ratings(5, 8)
        a = split_by_fraction(ratings, 0.5, seed=3)
        b = split_by_fraction(ratings, 0.5, seed=3)
        assert a.train == b.train

    def test_invalid_fraction(self):
        with pytest.raises(ValidationError):
            split_by_fraction(make_ratings(2, 2), 1.0)


class TestSplitPerUser:
    def test_every_user_in_both_sides(self):
        ratings = make_ratings(6, 10)
        split = split_per_user(ratings, 0.7)
        train_users = {r.uid for r in split.train}
        test_users = {r.uid for r in split.test}
        assert train_users == test_users == set(range(6))

    def test_train_precedes_test_in_time_per_user(self):
        ratings = make_ratings(4, 10)
        split = split_per_user(ratings, 0.6)
        for uid in range(4):
            max_train = max(r.timestamp for r in split.train if r.uid == uid)
            min_test = min(r.timestamp for r in split.test if r.uid == uid)
            assert max_train < min_test

    def test_single_rating_user_goes_to_train(self):
        ratings = [Rating(0, 0, 3.0, 0.0)]
        split = split_per_user(ratings, 0.5)
        assert len(split.train) == 1
        assert split.test == []


class TestPaperProtocolSplit:
    def test_three_way_partition_disjoint_and_complete(self):
        ratings = make_ratings(8, 20)
        split = paper_protocol_split(ratings)
        all_parts = split.init + split.stream + split.holdout
        assert len(all_parts) == 160
        keys = {(r.uid, r.item_id) for r in all_parts}
        assert len(keys) == 160

    def test_fractions_roughly_respected(self):
        ratings = make_ratings(10, 40)
        split = paper_protocol_split(ratings, init_fraction=0.5, stream_fraction=0.7)
        assert len(split.init) == 200
        assert len(split.stream) == pytest.approx(140, abs=10)
        assert len(split.holdout) == pytest.approx(60, abs=10)

    def test_per_user_time_ordering(self):
        ratings = make_ratings(5, 20)
        split = paper_protocol_split(ratings)
        for uid in range(5):
            init_max = max(r.timestamp for r in split.init if r.uid == uid)
            stream_min = min(r.timestamp for r in split.stream if r.uid == uid)
            stream_max = max(r.timestamp for r in split.stream if r.uid == uid)
            hold_min = min(r.timestamp for r in split.holdout if r.uid == uid)
            assert init_max < stream_min
            assert stream_max < hold_min

    def test_tiny_users_fall_back_to_init(self):
        ratings = [Rating(0, j, 3.0, float(j)) for j in range(2)]
        split = paper_protocol_split(ratings)
        assert len(split.init) == 2
        assert split.stream == [] and split.holdout == []

    def test_invalid_fractions(self):
        ratings = make_ratings(2, 4)
        with pytest.raises(ValidationError):
            paper_protocol_split(ratings, init_fraction=0.0)
        with pytest.raises(ValidationError):
            paper_protocol_split(ratings, stream_fraction=1.0)

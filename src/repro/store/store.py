"""VeloxStore: the table/namespace manager over partitions.

One :class:`VeloxStore` instance models the whole Tachyon deployment:
named tables (user weights, item features, model metadata), observation
logs, and cluster-facing hooks (which partitions exist, fail/recover).
"""

from __future__ import annotations

from typing import Callable

from repro.common.errors import StorageError
from repro.store.oblog import ObservationLog
from repro.store.table import Table


class VeloxStore:
    """A namespace of :class:`Table` objects plus observation logs.

    ``default_partitions`` controls sharding for tables created without an
    explicit count; a Velox cluster sets this to its node count so each
    node hosts one shard of each table.
    """

    def __init__(self, default_partitions: int = 1):
        if default_partitions < 1:
            raise ValueError(
                f"default_partitions must be >= 1, got {default_partitions}"
            )
        self.default_partitions = default_partitions
        self._tables: dict[str, Table] = {}
        self._logs: dict[str, ObservationLog] = {}
        #: callables(table) invoked on every table creation; the
        #: replication layer subscribes so tables created after
        #: replication is enabled (e.g. per-model user-state tables)
        #: get replica sets too.
        self._table_listeners: list[Callable[[Table], None]] = []
        #: callables(name, log) invoked on every log creation; the
        #: analytics tier subscribes so each model's observation log
        #: gets a materialized-view catalog the moment it exists.
        self._log_listeners: list[Callable[[str, ObservationLog], None]] = []

    def add_table_listener(self, listener: Callable[[Table], None]) -> None:
        """Subscribe to table creation; fires for future tables only."""
        self._table_listeners.append(listener)

    def add_log_listener(
        self, listener: Callable[[str, ObservationLog], None]
    ) -> None:
        """Subscribe to observation-log creation; fires for future logs
        only (subscribers that attach late can enumerate ``log_names``)."""
        self._log_listeners.append(listener)

    # -- tables -------------------------------------------------------------

    def create_table(
        self,
        name: str,
        num_partitions: int | None = None,
        partitioner: Callable[[object], int] | None = None,
        value_policy=None,
    ) -> Table:
        """Create a table; raises :class:`StorageError` if it exists.

        ``value_policy`` (a :class:`~repro.store.slab.SlabPolicy`) opts
        the table into columnar slab storage for fixed-rank vector
        values; ``None`` keeps classic dict partitions.
        """
        if name in self._tables:
            raise StorageError(f"table {name!r} already exists")
        table = Table(
            name,
            num_partitions=num_partitions or self.default_partitions,
            partitioner=partitioner,
            value_policy=value_policy,
        )
        self._tables[name] = table
        for listener in self._table_listeners:
            listener(table)
        return table

    def table(self, name: str) -> Table:
        """Look up an existing table by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise StorageError(f"table {name!r} does not exist") from None

    def has_table(self, name: str) -> bool:
        """Whether a table with this name exists."""
        return name in self._tables

    def get_or_create_table(self, name: str, **kwargs) -> Table:
        """Fetch a table, creating it on first use."""
        if name in self._tables:
            return self._tables[name]
        return self.create_table(name, **kwargs)

    def drop_table(self, name: str) -> None:
        """Remove a table and all its data."""
        if name not in self._tables:
            raise StorageError(f"table {name!r} does not exist")
        del self._tables[name]

    def table_names(self) -> list[str]:
        """Sorted names of all tables."""
        return sorted(self._tables)

    # -- observation logs -----------------------------------------------------

    def create_log(self, name: str) -> ObservationLog:
        """Create a named observation log."""
        if name in self._logs:
            raise StorageError(f"observation log {name!r} already exists")
        log = ObservationLog()
        self._logs[name] = log
        for listener in self._log_listeners:
            listener(name, log)
        return log

    def log(self, name: str) -> ObservationLog:
        """Look up an existing observation log by name."""
        try:
            return self._logs[name]
        except KeyError:
            raise StorageError(f"observation log {name!r} does not exist") from None

    def get_or_create_log(self, name: str) -> ObservationLog:
        """Fetch a log, creating it on first use."""
        if name in self._logs:
            return self._logs[name]
        return self.create_log(name)

    def log_names(self) -> list[str]:
        """Sorted names of all observation logs."""
        return sorted(self._logs)

    # -- cluster hooks ---------------------------------------------------------

    def snapshot_all(self) -> None:
        """Checkpoint every table (compacting journals)."""
        for table in self._tables.values():
            table.snapshot()

    def fail_node(self, partition_index: int) -> None:
        """Fail partition ``partition_index`` of every table — models the
        memory loss of one node hosting that shard."""
        for table in self._tables.values():
            if partition_index < table.num_partitions:
                table.fail_partition(partition_index)

    def recover_node(self, partition_index: int) -> int:
        """Recover that shard on every table; returns records replayed."""
        replayed = 0
        for table in self._tables.values():
            if partition_index < table.num_partitions:
                if table.partition(partition_index).failed:
                    replayed += table.recover_partition(partition_index)
        return replayed

"""PredictionService: predict/topK, caches, routing, bootstrap."""

import numpy as np
import pytest

from repro import Velox, VeloxConfig
from repro.common.errors import UserNotFoundError, ValidationError
from repro.core.bandits import GreedyPolicy, LinUcbPolicy
from repro.core.prediction import item_cache_key
from tests.conftest import make_initial_weights, make_mf_model


class TestPredict:
    def test_score_matches_manual_computation(self, deployed_velox, trained_als):
        model = deployed_velox.model()
        uid = next(iter(trained_als.user_factors))
        result = deployed_velox.predict_detailed(None, uid, 3)
        expected = float(
            model.pack_user_weights(
                trained_als.user_factors[uid], trained_als.user_bias[uid]
            )
            @ model.features(3)
        )
        assert result.score == pytest.approx(expected)

    def test_predict_returns_item_and_score_tuple(self, deployed_velox):
        item, score = deployed_velox.predict(None, 0, 5)
        assert item == 5
        assert isinstance(score, float)

    def test_routed_to_owner_node(self, deployed_velox):
        for uid in range(8):
            result = deployed_velox.predict_detailed(None, uid, 1)
            assert result.node_id == uid % 2

    def test_user_weight_reads_always_local(self, deployed_velox):
        for uid in range(20):
            deployed_velox.predict(None, uid, uid % 10)
        # only item-feature fetches may be remote under user-aware routing
        stats = deployed_velox.cluster.network.stats
        user_table_accesses = 20
        assert stats.remote_accesses <= 20  # none of these are user reads
        # verify via a direct charge: serving node == owner for every uid
        assert all(
            deployed_velox.cluster.router.route(uid).node_id
            == deployed_velox.cluster.owner_of_user(uid)
            for uid in range(20)
        )


class TestPredictionCache:
    def test_second_call_hits(self, deployed_velox):
        first = deployed_velox.predict_detailed(None, 1, 7)
        second = deployed_velox.predict_detailed(None, 1, 7)
        assert not first.prediction_cache_hit
        assert second.prediction_cache_hit
        assert second.score == first.score

    def test_observe_invalidates_user_predictions(self, deployed_velox):
        before = deployed_velox.predict_detailed(None, 1, 7)
        deployed_velox.observe(uid=1, x=7, y=5.0)
        after = deployed_velox.predict_detailed(None, 1, 7)
        assert not after.prediction_cache_hit  # weight_version changed
        assert after.score != pytest.approx(before.score)

    def test_other_users_cache_untouched_by_observe(self, deployed_velox):
        deployed_velox.predict_detailed(None, 2, 7)
        deployed_velox.observe(uid=1, x=7, y=5.0)
        again = deployed_velox.predict_detailed(None, 2, 7)
        assert again.prediction_cache_hit

    def test_disabled_cache_never_hits(self, trained_als):
        model = make_mf_model(trained_als)
        velox = Velox.deploy(
            VeloxConfig(num_nodes=2, prediction_cache_capacity=0),
            auto_retrain=False,
        )
        velox.add_model(model, make_initial_weights(model, trained_als))
        velox.predict(None, 1, 7)
        result = velox.predict_detailed(None, 1, 7)
        assert not result.prediction_cache_hit


class TestFeatureCache:
    def test_feature_cache_shared_across_users_on_same_node(self, deployed_velox):
        deployed_velox.predict(None, 0, 9)  # node 0, miss
        result = deployed_velox.predict_detailed(None, 2, 9)  # node 0, hit
        assert result.feature_cache_hit

    def test_feature_cache_not_shared_across_nodes(self, deployed_velox):
        deployed_velox.predict(None, 0, 9)  # node 0
        result = deployed_velox.predict_detailed(None, 1, 9)  # node 1
        assert not result.feature_cache_hit

    def test_remote_feature_fetch_charged_on_miss_only(self, deployed_velox):
        item = 11
        node = deployed_velox.cluster.owner_of_item(item)
        # pick a user served by the *other* node
        uid = 1 if node == 0 else 0
        first = deployed_velox.predict_detailed(None, uid, item)
        second = deployed_velox.predict_detailed(None, uid, item + 0)
        assert first.modeled_network_latency > 0
        assert second.prediction_cache_hit  # no new fetch at all


class TestBootstrapping:
    def test_unknown_user_gets_average_weights(self, deployed_velox, trained_als):
        unknown_uid = 10_000
        result = deployed_velox.predict_detailed(None, unknown_uid, 3)
        model = deployed_velox.model()
        averager = deployed_velox.manager.averager("songs")
        expected = float(averager.mean() @ model.features(3))
        assert result.score == pytest.approx(expected)
        assert result.uncertainty == 0.0  # no state yet

    def test_bootstrap_disabled_raises(self, trained_als):
        model = make_mf_model(trained_als)
        velox = Velox.deploy(
            VeloxConfig(num_nodes=2, bootstrap_new_users=False), auto_retrain=False
        )
        velox.add_model(model, make_initial_weights(model, trained_als))
        with pytest.raises(UserNotFoundError):
            velox.predict(None, 10_000, 3)

    def test_no_users_falls_back_to_model_initial(self, trained_als):
        model = make_mf_model(trained_als)
        velox = Velox.deploy(VeloxConfig(num_nodes=2), auto_retrain=False)
        velox.add_model(model)  # no initial weights at all
        result = deployed = velox.predict_detailed(None, 5, 2)
        expected = float(model.initial_user_weights() @ model.features(2))
        assert result.score == pytest.approx(expected)


class TestTopK:
    def test_returns_k_best_by_score(self, deployed_velox):
        items = list(range(20))
        results = deployed_velox.service.top_k("songs", 3, items, k=5)
        assert len(results) == 5
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)
        all_scores = [
            deployed_velox.predict_detailed(None, 3, i).score for i in items
        ]
        assert scores[0] == pytest.approx(max(all_scores))

    def test_k_one_default(self, deployed_velox):
        results = deployed_velox.service.top_k("songs", 3, [1, 2, 3])
        assert len(results) == 1

    def test_empty_itemset(self, deployed_velox):
        assert deployed_velox.service.top_k("songs", 3, []) == []

    def test_invalid_k(self, deployed_velox):
        with pytest.raises(ValidationError):
            deployed_velox.service.top_k("songs", 3, [1], k=0)

    def test_bandit_policy_changes_ranking(self, deployed_velox):
        """With huge exploration, LinUCB must sometimes disagree with greedy."""
        items = list(range(30))
        greedy = deployed_velox.top_k(None, 4, items, k=1, policy=GreedyPolicy())
        explore = deployed_velox.top_k(
            None, 4, items, k=1, policy=LinUcbPolicy(alpha=1000.0)
        )
        # greedy picks max score; huge-alpha LinUCB picks max uncertainty,
        # which for a user with training history is a different item here.
        assert greedy[0][0] != explore[0][0] or greedy[0][1] == explore[0][1]

    def test_item_filter_prefilters_candidates(self, deployed_velox):
        """The paper's application-level pre-filtering: excluded items
        are never scored, let alone returned."""
        results = deployed_velox.service.top_k(
            "songs", 3, list(range(20)), k=5, item_filter=lambda x: x % 2 == 0
        )
        assert all(r.item % 2 == 0 for r in results)

    def test_item_filter_can_empty_the_slate(self, deployed_velox):
        assert (
            deployed_velox.top_k(None, 3, [1, 3, 5], k=2, item_filter=lambda x: False)
            == []
        )

    def test_uncertainty_survives_prediction_cache(self, deployed_velox):
        """Bandit policies must keep working on cached predictions —
        a cache hit that dropped uncertainty would silently degrade
        LinUCB to greedy (regression test)."""
        first = deployed_velox.predict_detailed(None, 2, 9)
        second = deployed_velox.predict_detailed(None, 2, 9)
        assert second.prediction_cache_hit
        assert second.uncertainty == pytest.approx(first.uncertainty)
        assert second.uncertainty > 0

    def test_top_k_uses_prediction_cache(self, deployed_velox):
        items = list(range(10))
        deployed_velox.top_k(None, 5, items, k=3)
        stats_before = deployed_velox.service.cache_stats()["prediction_hits"]
        deployed_velox.top_k(None, 5, items, k=3)
        stats_after = deployed_velox.service.cache_stats()["prediction_hits"]
        assert stats_after - stats_before == 10


class TestItemCacheKey:
    def test_primitives_key_themselves(self):
        assert item_cache_key(5) == 5
        assert item_cache_key("abc") == "abc"
        assert item_cache_key((1, 2)) == (1, 2)

    def test_numpy_int(self):
        assert item_cache_key(np.int64(7)) == 7

    def test_ndarray_content_addressed(self):
        a = np.array([1.0, 2.0])
        b = np.array([1.0, 2.0])
        c = np.array([1.0, 3.0])
        assert item_cache_key(a) == item_cache_key(b)
        assert item_cache_key(a) != item_cache_key(c)

    def test_unhashable_rejected(self):
        with pytest.raises(ValidationError):
            item_cache_key({"dict": 1})


    def test_scalar_floats_accepted(self):
        assert item_cache_key(2.5) == 2.5
        assert item_cache_key(np.float64(2.5)) == 2.5
        assert isinstance(item_cache_key(np.float32(1.5)), float)


class TestTopKVectorized:
    """The candidate-set top_k runs through the stacked predict_batch
    path; results must match the scalar predict loop exactly."""

    def test_matches_scalar_loop(self, deployed_velox):
        service = deployed_velox.service
        items = list(range(20))
        vectorized = service.top_k("songs", 7, items, k=5)
        scalar = sorted(
            (service.predict("songs", 7, x) for x in items),
            key=lambda r: r.score,
            reverse=True,
        )[:5]
        assert [r.item for r in vectorized] == [r.item for r in scalar]
        for a, b in zip(vectorized, scalar):
            assert a.score == pytest.approx(b.score, abs=1e-9)
            assert a.uncertainty == pytest.approx(b.uncertainty, abs=1e-9)

    def test_matches_scalar_loop_under_bandit_policy(self, deployed_velox):
        service = deployed_velox.service
        items = list(range(15))
        policy = LinUcbPolicy(alpha=0.7)
        vectorized = service.top_k("songs", 3, items, k=4, policy=policy)
        scalar = sorted(
            (service.predict("songs", 3, x) for x in items),
            key=lambda r: policy.selection_score(r.score, r.uncertainty),
            reverse=True,
        )[:4]
        assert [r.item for r in vectorized] == [r.item for r in scalar]
        for a, b in zip(vectorized, scalar):
            assert a.score == pytest.approx(b.score, abs=1e-9)

    def test_single_weight_lookup_per_candidate_set(self, deployed_velox):
        """The vectorized path reads the user's weights once per call,
        not once per candidate item."""
        service = deployed_velox.service
        items = list(range(30))
        service.top_k("songs", 7, items, k=3)  # warm feature caches
        stats = deployed_velox.cluster.network.stats
        before = stats.total_accesses
        service.top_k("songs", 7, items, k=3)
        # one user-weight access for the whole candidate set; every
        # feature access hits the warmed cache
        assert stats.total_accesses - before == 1

"""End-to-end lifecycle integration tests.

These exercise the whole Figure 1 loop — train, serve, observe, detect
staleness, retrain, serve better — across all the subsystems at once.
"""

import numpy as np
import pytest

from repro import Velox, VeloxConfig
from repro.batch import BatchContext
from repro.cluster.router import RandomRouter
from repro.core.models import MatrixFactorizationModel, PersonalizedLinearModel
from repro.core.offline import als_train
from repro.data import SynthLensConfig, generate_synthlens, paper_protocol_split
from repro.metrics import rmse
from tests.conftest import make_initial_weights, make_mf_model


class TestFullLifecycle:
    def test_train_serve_observe_retrain_improves(self, trained_als, small_split):
        from repro.store import Observation

        model = make_mf_model(trained_als)
        velox = Velox.deploy(VeloxConfig(num_nodes=3), auto_retrain=False)
        velox.add_model(
            model,
            make_initial_weights(model, trained_als),
            seed_observations=[
                Observation(r.uid, r.item_id, r.rating, item_data=r.item_id)
                for r in small_split.init
            ],
        )

        holdout = small_split.holdout
        truth = [r.rating for r in holdout]

        def holdout_rmse():
            return rmse(
                truth, [velox.predict(None, r.uid, r.item_id)[1] for r in holdout]
            )

        baseline = holdout_rmse()
        for r in small_split.stream:
            velox.observe(uid=r.uid, x=r.item_id, y=r.rating)
        online = holdout_rmse()
        velox.retrain()
        retrained = holdout_rmse()

        assert online < baseline  # online updates helped
        assert retrained < baseline  # full retrain helped too
        assert velox.model().version == 1

    def test_observation_log_survives_node_failure(self, deployed_velox):
        for i in range(20):
            deployed_velox.observe(uid=i, x=i % 10, y=3.0)
        table = deployed_velox.manager.user_state_table("songs")
        weights_before = table.get(4).weights.copy()
        deployed_velox.cluster.fail_node(0)
        replayed = deployed_velox.cluster.restart_node(0)
        assert replayed > 0
        assert np.allclose(table.get(4).weights, weights_before)
        # serving works again for users on the recovered node
        __, score = deployed_velox.predict(None, 4, 2)
        assert np.isfinite(score)

    def test_two_models_coexist(self, deployed_velox, rng):
        linear = PersonalizedLinearModel("ads", input_dimension=4)
        deployed_velox.add_model(linear)
        x = rng.normal(size=4)
        for __ in range(5):
            deployed_velox.observe(uid=1, x=x, y=2.0, model_name="ads")
        __, ad_score = deployed_velox.predict("ads", 1, x)
        __, song_score = deployed_velox.predict("songs", 1, 3)
        assert np.isfinite(ad_score) and np.isfinite(song_score)
        # separate logs
        assert len(deployed_velox.manager.observation_log("ads")) == 5
        assert len(deployed_velox.manager.observation_log("songs")) == 0

    def test_random_routing_still_correct_just_slower(self, trained_als):
        """Correctness is routing-independent; only locality differs."""
        model = make_mf_model(trained_als)
        weights = make_initial_weights(model, trained_als)

        local = Velox.deploy(VeloxConfig(num_nodes=4), auto_retrain=False)
        local.add_model(model.with_version(0), dict(weights))
        remote = Velox.deploy(
            VeloxConfig(num_nodes=4),
            router_factory=lambda nodes: RandomRouter(nodes, rng=3),
            auto_retrain=False,
        )
        remote.add_model(model.with_version(0), dict(weights))

        for uid in range(0, 40, 2):
            a = local.predict(None, uid, uid % 20)[1]
            b = remote.predict(None, uid, uid % 20)[1]
            assert a == pytest.approx(b)
        assert local.cluster.network.stats.remote_accesses == 0 or (
            local.cluster.network.stats.remote_accesses
            < remote.cluster.network.stats.remote_accesses
        )

    def test_cold_start_user_warms_up(self, deployed_velox, small_lens):
        """A brand-new user starts at the bootstrap average and their
        predictions individualize as observations arrive."""
        uid = 99_999
        target_item = 5
        bootstrap_score = deployed_velox.predict(None, uid, target_item)[1]
        for __ in range(8):
            deployed_velox.observe(uid=uid, x=target_item, y=5.0)
        warmed_score = deployed_velox.predict(None, uid, target_item)[1]
        assert abs(warmed_score - 5.0) < abs(bootstrap_score - 5.0)

    def test_end_to_end_through_tcp_frontend(self, deployed_velox):
        from repro.frontend import (
            ObserveApiRequest,
            PredictApiRequest,
            RemoteClient,
            VeloxServer,
        )

        with VeloxServer(deployed_velox) as server:
            with RemoteClient(server.host, server.port) as client:
                before = client.call(PredictApiRequest(uid=3, item=9))
                for __ in range(5):
                    assert client.call(
                        ObserveApiRequest(uid=3, item=9, label=5.0)
                    ).ok
                after = client.call(PredictApiRequest(uid=3, item=9))
        assert after.payload["score"] > before.payload["score"]


class TestScaleSmoke:
    def test_thousand_mixed_requests(self, deployed_velox, rng):
        """A realistic request mix runs clean end to end."""
        from repro.workloads import ZipfItemSampler, generate_request_stream
        from repro.workloads import ObserveRequest, PredictRequest

        sampler = ZipfItemSampler(100, 0.9, rng=rng)
        stream = generate_request_stream(
            1000,
            num_users=60,
            item_sampler=sampler,
            observe_fraction=0.2,
            rng=rng,
        )
        for request in stream:
            if isinstance(request, ObserveRequest):
                deployed_velox.observe(
                    uid=request.uid, x=request.item_id, y=request.label
                )
            else:
                __, score = deployed_velox.predict(None, request.uid, request.item_id)
                assert np.isfinite(score)
        stats = deployed_velox.service.cache_stats()
        assert stats["feature_hits"] > 0
        assert deployed_velox.health().observations > 100

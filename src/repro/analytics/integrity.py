"""Drift detection: replay each MV against its own log prefix.

The maintenance invariant says a view at high-watermark W holds exactly
the fold of ``log[0:W)``. This module *tests* that claim instead of
assuming it: snapshot a view's ``(state, watermark)``, re-fold the same
prefix record by record through the view's own ``key_of``, and compare
key sets, counts, and sums. Because inline maintenance accumulates in
the same offset order the replay does, the comparison is exact by
default (``tolerance=0.0``) — counts are integers and sums see the same
float additions in the same order. A nonzero tolerance is only needed
for window views fed out-of-order timestamps, where bucket re-opening
changes float association.

A failed check means a view diverged from its log — a maintenance bug,
a torn snapshot, or state corruption — and the report says which keys
and by how much.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analytics.views import RollupView
from repro.store.oblog import ObservationLog


@dataclass(frozen=True)
class ViewIntegrity:
    """The verdict for one view: MV state vs. replayed log prefix."""

    view: str
    high_watermark: int
    keys_checked: int
    #: keys in the replayed reference but absent from the MV.
    missing_keys: int
    #: keys in the MV but absent from the replayed reference.
    extra_keys: int
    #: keys present in both whose count or sum disagreed.
    mismatched_keys: int
    #: largest absolute sum disagreement across all compared keys.
    max_abs_drift: float
    ok: bool

    def payload(self) -> dict:
        return {
            "view": self.view,
            "high_watermark": self.high_watermark,
            "keys_checked": self.keys_checked,
            "missing_keys": self.missing_keys,
            "extra_keys": self.extra_keys,
            "mismatched_keys": self.mismatched_keys,
            "max_abs_drift": self.max_abs_drift,
            "ok": self.ok,
        }


@dataclass(frozen=True)
class IntegrityReport:
    """All view verdicts for one catalog."""

    catalog: str
    views: tuple
    ok: bool

    def payload(self) -> dict:
        return {
            "catalog": self.catalog,
            "ok": self.ok,
            "views": [verdict.payload() for verdict in self.views],
        }


def check_view(
    view: RollupView, log: ObservationLog, tolerance: float = 0.0
) -> ViewIntegrity:
    """Compare one view's snapshot against a replay of its log prefix."""
    state, watermark = view.snapshot()
    reference: dict = {}
    for observation in log.read_range(0, watermark):
        key = view.key_of(observation)
        count, total = reference.get(key, (0, 0.0))
        reference[key] = (count + 1, total + observation.label)
    missing = [key for key in reference if key not in state]
    extra = [key for key in state if key not in reference]
    mismatched = 0
    max_drift = 0.0
    for key, (want_count, want_total) in reference.items():
        if key not in state:
            continue
        have_count, have_total = state[key]
        drift = abs(have_total - want_total)
        max_drift = max(max_drift, drift)
        if have_count != want_count or drift > tolerance:
            mismatched += 1
    ok = not missing and not extra and mismatched == 0
    return ViewIntegrity(
        view=view.name,
        high_watermark=watermark,
        keys_checked=len(reference),
        missing_keys=len(missing),
        extra_keys=len(extra),
        mismatched_keys=mismatched,
        max_abs_drift=max_drift,
        ok=ok,
    )


class IntegrityChecker:
    """Replays every view of one catalog against its log."""

    def __init__(self, catalog):
        self.catalog = catalog

    def check(self, tolerance: float = 0.0) -> IntegrityReport:
        """Run the replay for every registered view."""
        verdicts = tuple(
            check_view(view, self.catalog.log, tolerance=tolerance)
            for view in self.catalog.views.values()
        )
        return IntegrityReport(
            catalog=self.catalog.name,
            views=verdicts,
            ok=all(verdict.ok for verdict in verdicts),
        )

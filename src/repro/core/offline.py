"""Offline training on the sparklite batch substrate (paper Section 4.2).

The offline phase recomputes the feature parameters θ (and user weights)
with bulk computation. For the factor models this is alternating least
squares: each iteration solves every user's ridge regression with item
factors fixed (a batch job grouped by uid), then every item's with user
factors fixed (grouped by item id) — exactly the structure a Spark ALS
takes. Biases are learned by augmenting each side's features with a
constant slot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ValidationError
from repro.common.rng import as_generator


@dataclass
class AlsResult:
    """Output of one ALS run."""

    user_factors: dict[int, np.ndarray]
    user_bias: dict[int, float]
    item_factors: np.ndarray
    item_bias: np.ndarray
    global_mean: float
    train_rmse: list[float] = field(default_factory=list)


def _solve_side(pairs, other_factors, other_bias, global_mean, rank, reg):
    """Ridge-solve one entity's factor+bias given the other side fixed.

    ``pairs`` is a list of (other_id, rating). Features are
    ``[other_factor, 1]``; the target is ``rating - mu - other_bias``,
    so the solved coefficient on the constant slot is this entity's bias.

    Regularization uses the ALS-WR weighting (Zhou et al.): the penalty
    scales with the entity's rating count, which prevents heavy raters
    from overfitting their factors — without it, ALS drives training
    error below the noise floor and generalizes poorly.
    """
    count = len(pairs)
    features = np.empty((count, rank + 1))
    targets = np.empty(count)
    for row, (other_id, rating) in enumerate(pairs):
        features[row, :rank] = other_factors[other_id]
        features[row, rank] = 1.0
        targets[row] = rating - global_mean - other_bias[other_id]
    gram = features.T @ features + reg * count * np.eye(rank + 1)
    solution = np.linalg.solve(gram, features.T @ targets)
    return solution[:rank], float(solution[rank])


def als_train(
    batch_context,
    ratings: list[tuple[int, int, float]],
    rank: int,
    num_items: int,
    num_iterations: int = 10,
    regularization: float = 0.1,
    seed: int = 11,
    num_partitions: int | None = None,
) -> AlsResult:
    """Alternating least squares over ``(uid, item_id, rating)`` triples.

    Runs as sparklite jobs: the ratings dataset is cached; each half-
    iteration is a ``group_by_key`` + per-entity ridge solve. Items that
    never appear keep their random initialization (bias 0), matching how
    a deployed recommender handles cold items.
    """
    if not ratings:
        raise ValidationError("als_train requires at least one rating")
    if rank < 1:
        raise ValidationError(f"rank must be >= 1, got {rank}")
    if num_iterations < 1:
        raise ValidationError(f"num_iterations must be >= 1, got {num_iterations}")
    if regularization < 0:
        raise ValidationError(f"regularization must be >= 0, got {regularization}")
    max_item = max(item for _u, item, _r in ratings)
    if max_item >= num_items:
        raise ValidationError(
            f"rating references item {max_item} but num_items={num_items}"
        )

    rng = as_generator(seed)
    global_mean = float(np.mean([r for _u, _i, r in ratings]))

    item_factors = rng.normal(0.0, 0.1, (num_items, rank))
    item_bias = np.zeros(num_items)
    user_ids = sorted({uid for uid, _i, _r in ratings})
    user_factors = {uid: rng.normal(0.0, 0.1, rank) for uid in user_ids}
    user_bias = {uid: 0.0 for uid in user_ids}

    n_parts = num_partitions or batch_context.default_parallelism
    dataset = batch_context.parallelize(ratings, n_parts).cache()
    by_user = (
        dataset.map(lambda t: (t[0], (t[1], t[2]))).group_by_key(n_parts).cache()
    )
    by_item = (
        dataset.map(lambda t: (t[1], (t[0], t[2]))).group_by_key(n_parts).cache()
    )

    train_rmse: list[float] = []
    for _iteration in range(num_iterations):
        # User step: solve each user's ridge with item factors fixed.
        # The frozen side ships to tasks as a broadcast, the Spark idiom
        # for large read-only state captured by closures.
        items_bc = batch_context.broadcast(
            (item_factors.copy(), item_bias.copy())
        )
        solved_users = by_user.map_values(
            lambda pairs: _solve_side(
                pairs, items_bc.value[0], items_bc.value[1],
                global_mean, rank, regularization,
            )
        ).collect_as_map()
        items_bc.unpersist()
        for uid, (factor, bias) in solved_users.items():
            user_factors[uid] = factor
            user_bias[uid] = bias

        # Item step: solve each item's ridge with user factors fixed.
        users_bc = batch_context.broadcast(
            (dict(user_factors), dict(user_bias))
        )
        solved_items = by_item.map_values(
            lambda pairs: _solve_side(
                pairs, users_bc.value[0], users_bc.value[1],
                global_mean, rank, regularization,
            )
        ).collect_as_map()
        users_bc.unpersist()
        for item_id, (factor, bias) in solved_items.items():
            item_factors[item_id] = factor
            item_bias[item_id] = bias

        # Training RMSE for convergence monitoring.
        def _sq_err(t):
            uid, item_id, rating = t
            predicted = (
                global_mean
                + user_bias[uid]
                + item_bias[item_id]
                + float(user_factors[uid] @ item_factors[item_id])
            )
            return (rating - predicted) ** 2

        mse = dataset.map(_sq_err).mean()
        train_rmse.append(float(np.sqrt(mse)))

    return AlsResult(
        user_factors=user_factors,
        user_bias=user_bias,
        item_factors=item_factors,
        item_bias=item_bias,
        global_mean=global_mean,
        train_rmse=train_rmse,
    )


def solve_user_weights(
    batch_context,
    observations,
    feature_fn,
    dimension: int,
    regularization: float = 0.1,
) -> dict[int, np.ndarray]:
    """Batch re-solve of every user's ridge regression in a feature space.

    The shared offline step for computed-feature models: whenever a
    retrain changes θ (and therefore the feature space), every user's
    weights must be re-estimated against the *new* features — carrying
    old weights across feature spaces produces garbage. One sparklite
    job, grouped by uid.
    """
    def solve_user(pairs: list) -> np.ndarray:
        """Ridge-solve one user's weights in this feature space."""
        f_matrix = np.vstack([feature_fn(x) for x, _y in pairs])
        labels = np.asarray([y for _x, y in pairs], dtype=float)
        gram = f_matrix.T @ f_matrix + regularization * np.eye(dimension)
        return np.linalg.solve(gram, f_matrix.T @ labels)

    return (
        batch_context.parallelize(
            [(ob.uid, (ob.item_data, ob.label)) for ob in observations]
        )
        .group_by_key()
        .map_values(solve_user)
        .collect_as_map()
    )


def predict_rating(result: AlsResult, uid: int, item_id: int) -> float:
    """Score a pair with an :class:`AlsResult` (cold users/items fall back
    to biases only)."""
    factor = result.user_factors.get(uid)
    bias = result.user_bias.get(uid, 0.0)
    base = result.global_mean + bias + result.item_bias[item_id]
    if factor is None:
        return float(base)
    return float(base + factor @ result.item_factors[item_id])

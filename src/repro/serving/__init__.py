"""Serving engine: request queues, adaptive batching, SLO-aware shedding.

The Clipper-style layer (Crankshaw et al., NSDI 2017 — the direct
successor to Velox) between the frontend and the model tier:

* :class:`RequestQueue` — bounded per-(model, node) FIFO queues,
* batching policies — :class:`NoBatchingPolicy` (baseline),
  :class:`FixedDelayPolicy`, and :class:`AdaptiveAimdPolicy` (AIMD batch
  sizing against a p99 latency SLO),
* :class:`ServingEngine` — a worker pool that forms batches and serves
  them through ``PredictionService.predict_batch``, with admission
  control and load shedding (:class:`~repro.common.errors.OverloadedError`)
  instead of unbounded latency under overload,
* per-queue metrics (:class:`~repro.metrics.QueueMetrics`): depth, wait
  time, batch-size histogram, shed counts, SLO attainment.
"""

from repro.serving.batching import (
    AdaptiveAimdPolicy,
    BatchFormer,
    BatchingPolicy,
    FixedDelayPolicy,
    NoBatchingPolicy,
    make_batching_policy,
)
from repro.serving.config import BATCHING_POLICIES, ServingConfig
from repro.serving.engine import ServingEngine
from repro.serving.queue import QueuedRequest, RequestQueue

__all__ = [
    "AdaptiveAimdPolicy",
    "BatchFormer",
    "BatchingPolicy",
    "BATCHING_POLICIES",
    "FixedDelayPolicy",
    "NoBatchingPolicy",
    "make_batching_policy",
    "QueuedRequest",
    "RequestQueue",
    "ServingConfig",
    "ServingEngine",
]

"""VeloxCluster: wiring, placement, charging, node lifecycle."""

import pytest

from repro.cluster import RandomRouter, VeloxCluster
from repro.common.errors import RoutingError


class TestConstruction:
    def test_default_wiring(self):
        cluster = VeloxCluster(num_nodes=3)
        assert cluster.num_nodes == 3
        assert cluster.store.default_partitions == 3
        # default router is user-aware: uid -> owning node
        assert cluster.router.route(7).node_id == 7 % 3

    def test_custom_router_factory(self):
        cluster = VeloxCluster(
            num_nodes=2, router_factory=lambda nodes: RandomRouter(nodes, rng=0)
        )
        assert isinstance(cluster.router, RandomRouter)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            VeloxCluster(num_nodes=0)


class TestPlacementAndCharging:
    def test_owner_queries(self):
        cluster = VeloxCluster(num_nodes=4)
        assert cluster.owner_of_user(9) == 1
        assert 0 <= cluster.owner_of_item("item-3") < 4

    def test_local_user_access_free_under_user_routing(self):
        cluster = VeloxCluster(num_nodes=4)
        for uid in range(20):
            node = cluster.router.route(uid)
            cost = cluster.charge_user_access(node.node_id, uid, 400)
        assert cluster.network.stats.remote_accesses == 0
        assert cost == 0.0

    def test_remote_user_access_charged(self):
        cluster = VeloxCluster(num_nodes=4)
        owner = cluster.owner_of_user(5)
        other = (owner + 1) % 4
        cost = cluster.charge_user_access(other, 5, 400)
        assert cost > 0
        assert cluster.network.stats.remote_accesses == 1

    def test_item_access_charging_follows_item_partitioner(self):
        cluster = VeloxCluster(num_nodes=2)
        item = 17
        owner = cluster.owner_of_item(item)
        assert cluster.charge_item_access(owner, item, 100) == 0.0
        assert cluster.charge_item_access(1 - owner, item, 100) > 0.0


class TestNodeLifecycle:
    def test_fail_and_restart_recovers_shards(self):
        cluster = VeloxCluster(num_nodes=2)
        table = cluster.store.create_table(
            "users", partitioner=cluster.user_partitioner
        )
        for uid in range(10):
            table.put(uid, f"w{uid}")
        cluster.fail_node(0)
        assert not cluster.nodes[0].alive
        # router fails over while node 0 is down
        assert cluster.router.route(0).node_id == 1
        replayed = cluster.restart_node(0)
        assert replayed == 5
        assert table.get(4) == "w4"
        assert cluster.nodes[0].alive

    def test_unknown_node_rejected(self):
        with pytest.raises(RoutingError):
            VeloxCluster(num_nodes=2).fail_node(9)


class TestRestartAccounting:
    """restart_node: fresh epoch, zeroed stats, router propagation."""

    def test_restart_begins_a_fresh_epoch_with_zeroed_stats(self):
        cluster = VeloxCluster(num_nodes=2)
        node = cluster.nodes[0]
        node.stats.requests_served = 41
        node.stats.observations_applied = 7
        assert node.epoch == 0
        cluster.fail_node(0)
        cluster.restart_node(0)
        assert node.epoch == 1
        assert node.alive
        assert node.stats.requests_served == 0
        assert node.stats.observations_applied == 0

    def test_epoch_counts_every_restart(self):
        cluster = VeloxCluster(num_nodes=2)
        for expected_epoch in (1, 2, 3):
            cluster.fail_node(1)
            cluster.restart_node(1)
            assert cluster.nodes[1].epoch == expected_epoch

    def test_router_sees_the_restarted_node_object(self):
        """The router and the cluster must share one Node instance, or
        post-restart counters would accumulate onto a stale entry."""
        cluster = VeloxCluster(num_nodes=2)
        cluster.fail_node(0)
        cluster.restart_node(0)
        assert cluster.router.nodes[0] is cluster.nodes[0]
        assert cluster.router.route(0).stats.requests_served == 0

    @staticmethod
    def _cluster_with_detached_router():
        """A router holding its own copy of the node list, so a stale
        entry can exist without also corrupting the cluster's list."""
        from repro.cluster import ModuloPartitioner, UserAwareRouter

        return VeloxCluster(
            num_nodes=2,
            router_factory=lambda nodes: UserAwareRouter(
                list(nodes), ModuloPartitioner(len(nodes))
            ),
        )

    def test_stale_router_entry_is_detected(self):
        from repro.cluster.node import Node

        cluster = self._cluster_with_detached_router()
        cluster.fail_node(0)
        cluster.router.nodes[0] = Node(0)  # a detached impostor
        with pytest.raises(RoutingError):
            cluster.restart_node(0)

    def test_mislabeled_router_entry_is_detected(self):
        cluster = self._cluster_with_detached_router()
        cluster.fail_node(0)
        cluster.router.nodes[0] = cluster.nodes[1]  # wrong node id
        with pytest.raises(RoutingError):
            cluster.restart_node(0)

"""RNG plumbing: determinism, spawning, stable hashing."""

import numpy as np
import pytest

from repro.common.rng import as_generator, spawn_generators, stable_hash


class TestAsGenerator:
    def test_seed_yields_deterministic_stream(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        assert np.array_equal(a, b)

    def test_none_is_deterministic_default(self):
        assert np.array_equal(as_generator(None).random(3), as_generator(None).random(3))

    def test_existing_generator_passed_through(self):
        gen = np.random.default_rng(1)
        assert as_generator(gen) is gen

    def test_different_seeds_differ(self):
        assert not np.array_equal(as_generator(1).random(5), as_generator(2).random(5))


class TestSpawnGenerators:
    def test_children_are_independent_and_deterministic(self):
        kids_a = spawn_generators(as_generator(9), 3)
        kids_b = spawn_generators(as_generator(9), 3)
        for a, b in zip(kids_a, kids_b):
            assert np.array_equal(a.random(4), b.random(4))
        draws = [tuple(k.random(4)) for k in spawn_generators(as_generator(9), 3)]
        assert len(set(draws)) == 3

    def test_zero_children(self):
        assert spawn_generators(as_generator(0), 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(as_generator(0), -1)


class TestStableHash:
    def test_stable_across_calls(self):
        assert stable_hash("user:17") == stable_hash("user:17")

    def test_distinct_inputs_differ(self):
        values = [stable_hash(i) for i in range(100)]
        assert len(set(values)) == 100

    def test_tuple_keys_supported(self):
        assert stable_hash(("a", 1)) != stable_hash(("a", 2))

    def test_result_fits_64_bits_nonnegative(self):
        for value in ("x", 123, ("y", 4)):
            h = stable_hash(value)
            assert 0 <= h < 2**64

"""The exception hierarchy: one base class, informative payloads."""

import pytest

from repro.common import errors


ALL_ERRORS = [
    errors.ConfigError,
    errors.ModelNotFoundError,
    errors.UserNotFoundError,
    errors.ItemNotFoundError,
    errors.StorageError,
    errors.KeyNotFoundError,
    errors.PartitionError,
    errors.VersionConflictError,
    errors.BatchExecutionError,
    errors.TaskFailedError,
    errors.RoutingError,
    errors.ReplicationError,
    errors.StaleModelError,
    errors.ValidationError,
]


class TestHierarchy:
    @pytest.mark.parametrize("error_cls", ALL_ERRORS)
    def test_everything_is_a_repro_error(self, error_cls):
        assert issubclass(error_cls, errors.ReproError)

    def test_storage_family(self):
        assert issubclass(errors.KeyNotFoundError, errors.StorageError)
        assert issubclass(errors.PartitionError, errors.StorageError)
        assert issubclass(errors.VersionConflictError, errors.StorageError)

    def test_key_not_found_is_also_key_error(self):
        assert issubclass(errors.KeyNotFoundError, KeyError)

    def test_task_failed_is_batch_error(self):
        assert issubclass(errors.TaskFailedError, errors.BatchExecutionError)


class TestPayloads:
    def test_model_not_found_messages(self):
        assert "ghost" in str(errors.ModelNotFoundError("ghost"))
        err = errors.ModelNotFoundError("m", version=3)
        assert err.version == 3
        assert "version 3" in str(err)

    def test_user_and_item_ids_carried(self):
        assert errors.UserNotFoundError(7).uid == 7
        assert errors.ItemNotFoundError(9).item_id == 9

    def test_key_not_found_str_is_readable(self):
        err = errors.KeyNotFoundError("users", 42)
        assert "users" in str(err) and "42" in str(err)

    def test_version_conflict_payload(self):
        err = errors.VersionConflictError("t", "k", expected=1, actual=3)
        assert (err.expected, err.actual) == (1, 3)

    def test_task_failed_carries_cause(self):
        cause = RuntimeError("oom")
        err = errors.TaskFailedError(stage=2, partition=5, attempts=4, cause=cause)
        assert err.cause is cause
        assert "partition 5" in str(err)

    def test_catch_all_via_base_class(self):
        """The documented pattern: one except clause for library errors."""
        try:
            raise errors.RoutingError("no nodes")
        except errors.ReproError as err:
            assert "no nodes" in str(err)

"""LRU cache: eviction order, statistics, invalidation, disabled mode."""

import pytest

from repro.store import LRUCache


class TestBasicOperations:
    def test_put_get_roundtrip(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1

    def test_get_missing_returns_default(self):
        cache = LRUCache(4)
        assert cache.get("nope") is None
        assert cache.get("nope", 7) == 7

    def test_overwrite_updates_value(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.put("a", 2)
        assert cache.get("a") == 2
        assert len(cache) == 1

    def test_len_and_contains(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert len(cache) == 1
        assert "a" in cache
        assert "b" not in cache

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)


class TestEviction:
    def test_evicts_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a"
        assert "a" not in cache
        assert cache.get("b") == 2
        assert cache.get("c") == 3

    def test_get_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # "b" is now LRU
        cache.put("c", 3)
        assert "b" not in cache
        assert "a" in cache

    def test_peek_does_not_refresh_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.peek("a")  # "a" stays LRU
        cache.put("c", 3)
        assert "a" not in cache

    def test_eviction_counted(self):
        cache = LRUCache(1)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.stats.evictions == 1

    def test_keys_in_lru_order(self):
        cache = LRUCache(3)
        for key in ("a", "b", "c"):
            cache.put(key, key)
        cache.get("a")
        assert cache.keys() == ["b", "c", "a"]


class TestStats:
    def test_hit_and_miss_counting(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("zz")
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_hit_rate_zero_when_unused(self):
        assert LRUCache(2).stats.hit_rate == 0.0

    def test_peek_and_contains_do_not_touch_stats(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.peek("a")
        __ = "a" in cache
        assert cache.stats.lookups == 0

    def test_reset(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.stats.reset()
        assert cache.stats.hits == 0


class TestInvalidation:
    def test_invalidate_present_key(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        assert cache.invalidate("a") is True
        assert "a" not in cache
        assert cache.stats.invalidations == 1

    def test_invalidate_absent_key(self):
        cache = LRUCache(2)
        assert cache.invalidate("a") is False
        assert cache.stats.invalidations == 0

    def test_invalidate_if_predicate(self):
        cache = LRUCache(10)
        for i in range(6):
            cache.put(("m", i), i)
        removed = cache.invalidate_if(lambda key: key[1] % 2 == 0)
        assert removed == 3
        assert len(cache) == 3

    def test_clear(self):
        cache = LRUCache(5)
        for i in range(3):
            cache.put(i, i)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.invalidations == 3


class TestDisabledCache:
    def test_zero_capacity_never_stores(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0
        assert cache.stats.misses == 1


class TestWarm:
    def test_warm_bulk_loads(self):
        cache = LRUCache(10)
        cache.warm([(i, i * i) for i in range(5)])
        assert cache.get(3) == 9
        assert len(cache) == 5


class TestConcurrency:
    def test_multithreaded_stress_keeps_invariants(self):
        """Concurrent get/put/invalidate_if from many threads: the cache
        never exceeds capacity and the stats counters stay consistent
        with each other (every lookup is a hit or a miss, every removal
        an eviction or an invalidation)."""
        import threading

        capacity = 64
        cache = LRUCache(capacity)
        num_threads = 8
        ops_per_thread = 3000
        errors = []
        barrier = threading.Barrier(num_threads)

        def worker(seed: int) -> None:
            rng = __import__("random").Random(seed)
            try:
                barrier.wait()
                for i in range(ops_per_thread):
                    key = rng.randrange(0, 256)
                    op = rng.random()
                    if op < 0.5:
                        value = cache.get(key)
                        assert value is None or value == key * 2
                    elif op < 0.9:
                        cache.put(key, key * 2)
                        assert len(cache) <= capacity
                    elif op < 0.97:
                        cache.invalidate(key)
                    else:
                        cache.invalidate_if(lambda k: k % 7 == seed % 7)
            except Exception as err:  # surfaced in the main thread
                errors.append(err)

        threads = [
            threading.Thread(target=worker, args=(seed,))
            for seed in range(num_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(cache) <= capacity
        stats = cache.stats
        assert stats.hits + stats.misses == stats.lookups
        assert stats.hits >= 0 and stats.misses >= 0
        # Everything ever inserted either remains, was evicted, or was
        # invalidated; removals can never exceed insertions.
        assert stats.evictions + stats.invalidations + len(cache) <= (
            num_threads * ops_per_thread
        )
        # the cache still works after the storm
        cache.put("after", 1)
        assert cache.get("after") == 1

"""Serving-tier metrics: per-queue counters, histograms, SLO attainment.

The serving engine (:mod:`repro.serving`) keeps one :class:`QueueMetrics`
per request queue. Everything here is thread-safe — queue workers and
the reporting layer read and write concurrently — and cheap enough to
update on every request.
"""

from __future__ import annotations

import threading
from collections import Counter

from repro.common.errors import ValidationError
from repro.metrics.latency import LatencyRecorder


class Histogram:
    """Integer-bucketed counts (e.g. batch sizes), thread-safe."""

    def __init__(self, name: str = "histogram"):
        self.name = name
        self._lock = threading.Lock()
        self._counts: Counter = Counter()

    def observe(self, value: int) -> None:
        """Count one occurrence of ``value``."""
        if value < 0:
            raise ValidationError(f"histogram value cannot be negative: {value}")
        with self._lock:
            self._counts[int(value)] += 1

    def counts(self) -> dict[int, int]:
        """A ``{value: count}`` snapshot, sorted by value."""
        with self._lock:
            return dict(sorted(self._counts.items()))

    def total(self) -> int:
        """Number of observations."""
        with self._lock:
            return sum(self._counts.values())

    def mean(self) -> float:
        """Mean observed value (0.0 when empty)."""
        with self._lock:
            total = sum(self._counts.values())
            if total == 0:
                return 0.0
            return sum(v * c for v, c in self._counts.items()) / total

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold another histogram's counts into this one; returns self."""
        incoming = other.counts()
        with self._lock:
            for value, count in incoming.items():
                self._counts[value] += count
        return self


class QueueMetrics:
    """Everything observable about one serving queue.

    Tracks queue wait time, batch service time, end-to-end latency, the
    batch-size distribution, shed counts (admission vs age), and SLO
    attainment — the Clipper-style dashboard for one (model, node) queue.
    """

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self.wait = LatencyRecorder(f"{name}:wait")
        self.service = LatencyRecorder(f"{name}:service")
        self.end_to_end = LatencyRecorder(f"{name}:end_to_end")
        self.batch_sizes = Histogram(f"{name}:batch_size")
        self._enqueued = 0
        self._completed = 0
        self._shed_admission = 0
        self._shed_age = 0
        self._degraded = 0
        self._slo_hits = 0
        self._slo_misses = 0

    # -- writers (called by the engine) -------------------------------------

    def on_enqueue(self) -> None:
        with self._lock:
            self._enqueued += 1

    def on_shed(self, *, at_admission: bool) -> None:
        with self._lock:
            if at_admission:
                self._shed_admission += 1
            else:
                self._shed_age += 1

    def on_degraded(self) -> None:
        with self._lock:
            self._degraded += 1

    def on_complete(self, *, slo_hit: bool | None = None) -> None:
        with self._lock:
            self._completed += 1
            if slo_hit is True:
                self._slo_hits += 1
            elif slo_hit is False:
                self._slo_misses += 1

    # -- readers -------------------------------------------------------------

    @property
    def enqueued(self) -> int:
        with self._lock:
            return self._enqueued

    @property
    def completed(self) -> int:
        with self._lock:
            return self._completed

    @property
    def shed_count(self) -> int:
        """Total requests shed (admission-control plus age-bound)."""
        with self._lock:
            return self._shed_admission + self._shed_age

    @property
    def degraded_count(self) -> int:
        with self._lock:
            return self._degraded

    def slo_attainment(self) -> float:
        """Fraction of SLO-judged completions within the SLO (1.0 if none)."""
        with self._lock:
            judged = self._slo_hits + self._slo_misses
            if judged == 0:
                return 1.0
            return self._slo_hits / judged

    def snapshot(self) -> dict:
        """A plain-dict snapshot for status endpoints and benchmarks."""
        with self._lock:
            counters = {
                "enqueued": self._enqueued,
                "completed": self._completed,
                "shed_admission": self._shed_admission,
                "shed_age": self._shed_age,
                "degraded": self._degraded,
                "slo_hits": self._slo_hits,
                "slo_misses": self._slo_misses,
            }
        counters["shed_total"] = (
            counters["shed_admission"] + counters["shed_age"]
        )
        counters["slo_attainment"] = self.slo_attainment()
        counters["batch_size_mean"] = self.batch_sizes.mean()
        counters["batch_size_counts"] = self.batch_sizes.counts()
        for recorder in (self.wait, self.service, self.end_to_end):
            key = recorder.name.rsplit(":", 1)[-1]
            if len(recorder):
                summary = recorder.summary()
                counters[f"{key}_mean_s"] = summary.mean
                counters[f"{key}_p99_s"] = summary.p99
            else:
                counters[f"{key}_mean_s"] = 0.0
                counters[f"{key}_p99_s"] = 0.0
        return counters

"""Contextual-bandit policies for topK serving (paper Section 5).

Model serving influences the data collected for future training; a
greedy topK can lock into a feedback loop (the "Top 40 forever"
problem). These policies implement the paper's escape hatch: rank items
by *potential* score — predicted score plus an uncertainty bonus — so
the system occasionally serves items whose value it is unsure about,
and each resulting observation shrinks that uncertainty the most.

The uncertainty is ``sqrt(f^T A_u^{-1} f)`` from the per-user covariance
that the Sherman–Morrison online learner already maintains — LinUCB's
confidence width falls out of the serving state for free.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.common.errors import ConfigError
from repro.common.rng import as_generator


class BanditPolicy(ABC):
    """Maps (predicted score, uncertainty) to a selection score.

    ``top_k`` ranks candidates by ``selection_score``; the true predicted
    score is always reported to the caller unchanged.
    """

    @abstractmethod
    def selection_score(self, score: float, uncertainty: float) -> float:
        """The ranking value for one candidate."""


class GreedyPolicy(BanditPolicy):
    """Pure exploitation: rank by predicted score (the baseline that
    falls into feedback loops)."""

    def selection_score(self, score: float, uncertainty: float) -> float:
        """Ranking value for one candidate (see BanditPolicy)."""
        return score


class LinUcbPolicy(BanditPolicy):
    """Optimism in the face of uncertainty: ``score + alpha * width``.

    This is the contextual-bandit form the paper cites [Li et al., WWW
    2010], with the confidence width supplied by the online learner's
    ``A^{-1}``.
    """

    def __init__(self, alpha: float = 0.5):
        if alpha < 0:
            raise ConfigError(f"alpha must be >= 0, got {alpha}")
        self.alpha = alpha

    def selection_score(self, score: float, uncertainty: float) -> float:
        """Ranking value for one candidate (see BanditPolicy)."""
        return score + self.alpha * uncertainty


class EpsilonGreedyPolicy(BanditPolicy):
    """With probability epsilon, randomize the ranking; otherwise greedy.

    Randomization is implemented by adding uniform noise large enough to
    shuffle the candidate order, which keeps the policy stateless with
    respect to the candidate set.
    """

    def __init__(self, epsilon: float = 0.1, rng=None, noise_scale: float = 100.0):
        if not 0.0 <= epsilon <= 1.0:
            raise ConfigError(f"epsilon must be in [0, 1], got {epsilon}")
        if noise_scale <= 0:
            raise ConfigError(f"noise_scale must be > 0, got {noise_scale}")
        self.epsilon = epsilon
        self.noise_scale = noise_scale
        self._rng = as_generator(rng)

    def selection_score(self, score: float, uncertainty: float) -> float:
        """Ranking value for one candidate (see BanditPolicy)."""
        if self._rng.random() < self.epsilon:
            return float(self._rng.uniform(0.0, self.noise_scale))
        return score


class ThompsonSamplingPolicy(BanditPolicy):
    """Posterior sampling: perturb the score by a draw from its
    (approximate) posterior, ``N(score, (scale * uncertainty)^2)``.

    With the ridge posterior ``w ~ N(w_hat, sigma^2 A^{-1})``, the
    predictive distribution of ``w^T f`` has standard deviation
    proportional to the LinUCB width — so sampling in score space is
    equivalent to sampling weights and scoring.
    """

    def __init__(self, scale: float = 1.0, rng=None):
        if scale < 0:
            raise ConfigError(f"scale must be >= 0, got {scale}")
        self.scale = scale
        self._rng = as_generator(rng)

    def selection_score(self, score: float, uncertainty: float) -> float:
        """Ranking value for one candidate (see BanditPolicy)."""
        if uncertainty == 0.0:
            return score
        return float(self._rng.normal(score, self.scale * uncertainty))


def make_policy(name: str, exploration: float = 0.5, rng=None) -> BanditPolicy:
    """Factory keyed by policy name (used by config/front-end layers)."""
    if name == "greedy":
        return GreedyPolicy()
    if name == "linucb":
        return LinUcbPolicy(alpha=exploration)
    if name == "epsilon_greedy":
        return EpsilonGreedyPolicy(epsilon=min(1.0, exploration), rng=rng)
    if name == "thompson":
        return ThompsonSamplingPolicy(scale=exploration, rng=rng)
    raise ConfigError(f"unknown bandit policy {name!r}")


def expected_uncertainty_reduction(a_inv: np.ndarray, features: np.ndarray) -> float:
    """How much total posterior variance an observation of ``features``
    would remove — the quantity bandit selection implicitly maximizes.

    Computed as ``trace(A^{-1}) - trace(A'^{-1})`` after a rank-one
    Sherman–Morrison update with ``features``.
    """
    a_inv_f = a_inv @ features
    denom = 1.0 + float(features @ a_inv_f)
    return float(a_inv_f @ a_inv_f) / denom

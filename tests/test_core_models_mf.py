"""MatrixFactorizationModel: feature layout, priors, packing, retrain."""

import numpy as np
import pytest

from repro.common.errors import ItemNotFoundError, ValidationError
from repro.core.models import MatrixFactorizationModel


@pytest.fixture
def model():
    factors = np.arange(12, dtype=float).reshape(4, 3)  # 4 items, rank 3
    bias = np.array([0.1, -0.2, 0.3, 0.0])
    return MatrixFactorizationModel("mf", factors, bias, global_mean=3.5)


class TestFeatureLayout:
    def test_dimension(self, model):
        assert model.rank == 3
        assert model.dimension == 5  # rank + bias slot + constant slot

    def test_features_contents(self, model):
        f = model.features(1)
        assert np.allclose(f[:3], [3.0, 4.0, 5.0])
        assert f[3] == pytest.approx(-0.2)  # item bias
        assert f[4] == 1.0

    def test_materialized_flag(self, model):
        assert model.materialized is True

    def test_unknown_item_rejected(self, model):
        with pytest.raises(ItemNotFoundError):
            model.features(99)
        with pytest.raises(ItemNotFoundError):
            model.features(-1)

    def test_non_integer_input_rejected(self, model):
        with pytest.raises(ValidationError):
            model.features("item-1")

    def test_numpy_integer_accepted(self, model):
        assert np.array_equal(model.features(np.int64(2)), model.features(2))


class TestPriorAndPacking:
    def test_prior_structure(self, model):
        prior = model.prior_mean()
        assert np.array_equal(prior[:3], np.zeros(3))
        assert prior[3] == 1.0  # item-bias multiplier
        assert prior[4] == 3.5  # global mean in the user-bias slot

    def test_prior_predicts_item_mean(self, model):
        # A brand-new user at the prior predicts mu + b_i.
        score = float(model.prior_mean() @ model.features(2))
        assert score == pytest.approx(3.5 + 0.3)

    def test_pack_unpack_roundtrip(self, model):
        latent = np.array([0.5, -1.0, 2.0])
        packed = model.pack_user_weights(latent, user_bias=0.7)
        unpacked_latent, unpacked_bias = model.unpack_user_weights(packed)
        assert np.allclose(unpacked_latent, latent)
        assert unpacked_bias == pytest.approx(0.7)

    def test_packed_weights_reproduce_factor_model(self, model):
        latent = np.array([1.0, 0.0, -1.0])
        packed = model.pack_user_weights(latent, user_bias=0.25)
        score = model.score(packed, 2)
        expected = 3.5 + 0.25 + 0.3 + latent @ model.item_factors[2]
        assert score == pytest.approx(expected)

    def test_pack_shape_checked(self, model):
        with pytest.raises(ValidationError):
            model.pack_user_weights(np.zeros(2), 0.0)

    def test_initial_user_weights_are_prior(self, model):
        assert np.array_equal(model.initial_user_weights(), model.prior_mean())


class TestConstruction:
    def test_bad_factor_shape(self):
        with pytest.raises(ValidationError):
            MatrixFactorizationModel("m", np.zeros(5))

    def test_bias_shape_mismatch(self):
        with pytest.raises(ValidationError):
            MatrixFactorizationModel("m", np.zeros((3, 2)), item_bias=np.zeros(4))

    def test_default_bias_zeros(self):
        model = MatrixFactorizationModel("m", np.ones((3, 2)))
        assert np.array_equal(model.item_bias, np.zeros(3))


class TestRetrain:
    def test_retrain_bumps_version_and_reshapes_weights(self, batch_ctx, small_split):
        from repro.store import Observation

        initial = MatrixFactorizationModel(
            "mf", np.zeros((120, 5)), global_mean=3.5
        )
        observations = [
            Observation(uid=r.uid, item_id=r.item_id, label=r.rating, item_data=r.item_id)
            for r in small_split.init
        ]
        new_model, new_weights = initial.retrain(batch_ctx, observations, {})
        assert new_model.version == 1
        assert new_model.num_items == 120
        assert len(new_weights) > 0
        for weights in new_weights.values():
            assert weights.shape == (new_model.dimension,)

    def test_retrain_empty_rejected(self, batch_ctx):
        model = MatrixFactorizationModel("mf", np.zeros((2, 2)))
        with pytest.raises(ValidationError):
            model.retrain(batch_ctx, [], {})

    def test_retrained_model_fits_training_data(self, batch_ctx, small_split):
        from repro.store import Observation
        from repro.metrics import rmse

        initial = MatrixFactorizationModel("mf", np.zeros((120, 5)), global_mean=3.0)
        observations = [
            Observation(uid=r.uid, item_id=r.item_id, label=r.rating, item_data=r.item_id)
            for r in small_split.init
        ]
        new_model, new_weights = initial.retrain(batch_ctx, observations, {})
        predictions = [
            new_model.score(new_weights[ob.uid], ob.item_id) for ob in observations
        ]
        truth = [ob.label for ob in observations]
        assert rmse(truth, predictions) < 0.35

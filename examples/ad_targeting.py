"""Targeted advertising: multiple models over the same user base.

The paper's model-lifecycle motivation (Section 2.1): "an advertising
service may run a series of ad campaigns, each with separate models over
the same set of users." This example deploys one Velox instance hosting
several campaign models side by side — each a *computed*-feature model
over ad-creative feature vectors rather than a materialized item table:

* campaign "spring_sale" uses a personalized linear model over raw
  creative features,
* campaign "brand_awareness" uses random-Fourier (RBF) features,
* campaign "winback" uses an ensemble-of-SVMs feature function
  (the Section 6 worked example).

Click-through feedback flows into per-campaign observation logs; each
campaign's health is tracked independently, underperformers are
retrained without touching the others, and a bad deploy is rolled back.

Run:  python examples/ad_targeting.py
"""

import numpy as np

from repro import Velox, VeloxConfig
from repro.core.models import (
    EnsembleSvmModel,
    PersonalizedLinearModel,
    RandomFourierModel,
)

NUM_USERS = 80
CREATIVE_DIM = 6


def make_environment(seed: int = 7):
    """Planted per-user click propensities for each campaign."""
    rng = np.random.default_rng(seed)
    campaign_user_tastes = {
        "spring_sale": rng.normal(0, 1, (NUM_USERS, CREATIVE_DIM)),
        "brand_awareness": rng.normal(0, 1, (NUM_USERS, CREATIVE_DIM)),
        "winback": rng.normal(0, 1, (NUM_USERS, CREATIVE_DIM)),
    }

    def click_score(campaign: str, uid: int, creative: np.ndarray) -> float:
        taste = campaign_user_tastes[campaign][uid]
        return float(np.tanh(taste @ creative) * 2 + 3)  # roughly [1, 5]

    return click_score


def main() -> None:
    rng = np.random.default_rng(0)
    click_score = make_environment()

    velox = Velox.deploy(VeloxConfig(num_nodes=4), auto_retrain=False)
    velox.add_model(PersonalizedLinearModel("spring_sale", CREATIVE_DIM))
    velox.add_model(
        RandomFourierModel("brand_awareness", CREATIVE_DIM, num_features=32, seed=1)
    )
    velox.add_model(
        EnsembleSvmModel.untrained("winback", CREATIVE_DIM, num_svms=8, seed=2)
    )
    print(f"deployed campaigns: {velox.registry.names()}")

    # -- phase 1: collect click feedback per campaign ------------------------
    print("\nsimulating 400 impressions per campaign ...")
    for campaign in velox.registry.names():
        for __ in range(400):
            uid = int(rng.integers(NUM_USERS))
            creative = rng.normal(0, 1, CREATIVE_DIM)
            label = click_score(campaign, uid, creative)
            velox.observe(uid=uid, x=creative, y=label, model_name=campaign)

    for campaign in velox.registry.names():
        health = velox.health(campaign)
        print(
            f"  {campaign:<16} observations={health.observations:<5d} "
            f"recent loss={health.recent.mean:.3f}"
        )

    # -- phase 2: choose the best creative per user (topK) -------------------
    uid = 11
    creatives = [rng.normal(0, 1, CREATIVE_DIM) for __ in range(8)]
    print(f"\nbest creatives for user {uid}:")
    for campaign in velox.registry.names():
        best = velox.top_k(campaign, uid, creatives, k=1)[0]
        print(f"  {campaign:<16} predicted engagement {best[1]:.3f}")

    # -- phase 3: retrain the underperformer only -----------------------------
    losses = {
        campaign: velox.health(campaign).recent.mean
        for campaign in velox.registry.names()
    }
    worst = max(losses, key=losses.get)
    print(f"\nretraining the weakest campaign: {worst!r} "
          f"(recent loss {losses[worst]:.3f})")
    event = velox.retrain(worst, reason="campaign underperforming")
    print(f"  {worst} now at v{event.new_version} "
          f"({event.observations_used} observations)")
    untouched = [c for c in velox.registry.names() if c != worst]
    print(f"  untouched campaigns remain at v0: "
          f"{[f'{c}=v{velox.model(c).version}' for c in untouched]}")

    # -- phase 4: roll the deploy back (maybe legal pulled the creatives) ----
    revived = velox.rollback(version=0, model_name=worst)
    print(f"\nrolled {worst!r} back to the v0 parameters "
          f"(now served as v{revived.version})")
    print("\nversion history for", worst)
    for record in velox.registry.history(worst):
        print(f"  v{record.version}: {record.note}")


if __name__ == "__main__":
    main()

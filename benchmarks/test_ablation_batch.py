"""Ablation: fork-based multicore batch tier + vectorized ALS solves.

PR 3 gave the sparklite scheduler a process-based (``os.fork``) executor
and removed the Python interpreter from the ALS inner loop. This
ablation records both effects on a synthlens-scale retrain workload:

* **Executor sweep** — seeded ``als_train`` wall-clock at 1/2/4 fork
  workers plus a 4-thread contrast (the GIL baseline the fork executor
  exists to beat), all over the same pinned partitioning.
* **Solver ablation** — vectorized (CSR gather + segment-summed Gram
  tensors + one stacked ``np.linalg.solve`` per partition) vs the
  scalar reference loop (one Python-level ridge solve per entity,
  features assembled per rating), at equal worker count. The headline
  number is marginal per-iteration cost — ``(T(1+N) - T(1)) / N`` —
  which isolates the solve stages from the one-time shuffle/pack setup
  both solvers share.

Shape assertions: the vectorized solver's per-iteration cost beats the
scalar loop >= 3x, and retrains are bit-identical across executors and
worker counts. The fork >= 2x scaling claim is asserted only when the
host actually has >= 4 cores (``os.cpu_count()`` is recorded in the
JSON artifact either way — a 1-core container cannot exhibit multicore
speedup and honest numbers beat fabricated ones).

Writes ``benchmarks/results/ablation_batch.txt`` and the
machine-readable ``BENCH_batch.json`` at the repo root.

Set ``BATCH_SMOKE=1`` for the fast CI configuration.
"""

from __future__ import annotations

import os
import pathlib
import time

import numpy as np

from repro.batch import BatchContext
from repro.core.offline import als_train
from repro.data.synthlens import SynthLensConfig, generate_synthlens
from repro.tools.bench_report import write_json_summary

from conftest import write_result

SMOKE = os.environ.get("BATCH_SMOKE", "") not in ("", "0")

NUM_USERS = 150 if SMOKE else 600
NUM_ITEMS = 200 if SMOKE else 800
RANK = 8
ITERATIONS = 3 if SMOKE else 10
NUM_PARTITIONS = 4
WORKER_SWEEP = [1, 2, 4]
REPEATS = 1 if SMOKE else 3

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def _ratings() -> list[tuple[int, int, float]]:
    data = generate_synthlens(
        SynthLensConfig(num_users=NUM_USERS, num_items=NUM_ITEMS, rank=6, seed=5)
    )
    return [(r.uid, r.item_id, r.rating) for r in data.ratings]


def _train(ratings, *, executor, workers, solver="vectorized",
           iterations=ITERATIONS):
    context = BatchContext(default_parallelism=workers, executor=executor)
    start = time.perf_counter()
    result = als_train(
        context,
        ratings,
        rank=RANK,
        num_items=NUM_ITEMS,
        num_iterations=iterations,
        num_partitions=NUM_PARTITIONS,
        solver=solver,
    )
    return time.perf_counter() - start, result


def _timed(ratings, **kwargs) -> tuple[float, object]:
    """Best-of-REPEATS wall clock (noise floor on shared runners)."""
    best, result = _train(ratings, **kwargs)
    for _ in range(REPEATS - 1):
        seconds, result = _train(ratings, **kwargs)
        best = min(best, seconds)
    return best, result


def _identical(a, b) -> bool:
    """Bit-exact equality of two AlsResults."""
    return (
        set(a.user_factors) == set(b.user_factors)
        and all(
            np.array_equal(a.user_factors[u], b.user_factors[u])
            for u in a.user_factors
        )
        and a.user_bias == b.user_bias
        and np.array_equal(a.item_factors, b.item_factors)
        and np.array_equal(a.item_bias, b.item_bias)
        and a.train_rmse == b.train_rmse
    )


def test_batch_summary(benchmark):
    ratings = _ratings()
    cpu_count = os.cpu_count() or 1

    # Warm caches / imports off the clock.
    _train(ratings, executor="thread", workers=1, iterations=1)

    # -- executor sweep ----------------------------------------------------
    sweep = []
    serial_result = None
    for workers in WORKER_SWEEP:
        seconds, result = _timed(ratings, executor="fork", workers=workers)
        if serial_result is None:
            serial_result = result
        sweep.append(
            {
                "executor": "fork",
                "workers": workers,
                "seconds": round(seconds, 4),
                "identical_to_serial": _identical(serial_result, result),
            }
        )
    thread_seconds, thread_result = _timed(
        ratings, executor="thread", workers=WORKER_SWEEP[-1]
    )
    sweep.append(
        {
            "executor": "thread",
            "workers": WORKER_SWEEP[-1],
            "seconds": round(thread_seconds, 4),
            "identical_to_serial": _identical(serial_result, thread_result),
        }
    )

    # -- solver ablation (equal worker count: serial) ----------------------
    solver_rows = {}
    for solver in ("vectorized", "scalar"):
        t_one = min(
            _train(ratings, executor="thread", workers=1, solver=solver,
                   iterations=1)[0]
            for _ in range(REPEATS)
        )
        t_full = min(
            _train(ratings, executor="thread", workers=1, solver=solver,
                   iterations=1 + ITERATIONS)[0]
            for _ in range(REPEATS)
        )
        solver_rows[solver] = {
            "setup_plus_one_iter_s": round(t_one, 4),
            "end_to_end_s": round(t_full, 4),
            "per_iteration_ms": round((t_full - t_one) / ITERATIONS * 1e3, 3),
        }
    per_iter_speedup = (
        solver_rows["scalar"]["per_iteration_ms"]
        / solver_rows["vectorized"]["per_iteration_ms"]
    )
    end_to_end_speedup = (
        solver_rows["scalar"]["end_to_end_s"]
        / solver_rows["vectorized"]["end_to_end_s"]
    )

    # -- report ------------------------------------------------------------
    fork_by_workers = {row["workers"]: row for row in sweep if row["executor"] == "fork"}
    fork_scaling = (
        fork_by_workers[1]["seconds"] / fork_by_workers[WORKER_SWEEP[-1]]["seconds"]
    )
    lines = [
        f"== ALS retrain wall-clock ({len(ratings)} ratings, rank {RANK}, "
        f"{ITERATIONS} iterations, {NUM_PARTITIONS} partitions, "
        f"cpu_count={cpu_count}) ==",
        "executor  workers  seconds  identical_to_serial",
    ]
    for row in sweep:
        lines.append(
            f"{row['executor']:<10}{row['workers']:<9d}{row['seconds']:<9.3f}"
            f"{row['identical_to_serial']}"
        )
    lines.append("")
    lines.append(
        f"fork scaling 1 -> {WORKER_SWEEP[-1]} workers: {fork_scaling:.2f}x"
    )
    lines.append("")
    lines.append("== solver ablation (serial, equal workers) ==")
    lines.append("solver      setup+1iter_s  end_to_end_s  per_iter_ms")
    for solver, row in solver_rows.items():
        lines.append(
            f"{solver:<12}{row['setup_plus_one_iter_s']:<15.3f}"
            f"{row['end_to_end_s']:<14.3f}{row['per_iteration_ms']:.2f}"
        )
    lines.append("")
    lines.append(
        f"vectorized vs scalar: {per_iter_speedup:.2f}x per-iteration, "
        f"{end_to_end_speedup:.2f}x end-to-end"
    )
    write_result("ablation_batch", lines)

    write_json_summary(
        REPO_ROOT / "BENCH_batch.json",
        "ablation_batch",
        {
            "smoke": SMOKE,
            "cpu_count": cpu_count,
            "workload": {
                "ratings": len(ratings),
                "rank": RANK,
                "iterations": ITERATIONS,
                "num_partitions": NUM_PARTITIONS,
            },
            "executor_sweep": sweep,
            "fork_scaling_1_to_4": round(fork_scaling, 3),
            "solver": {
                **solver_rows,
                "per_iteration_speedup": round(per_iter_speedup, 3),
                "end_to_end_speedup": round(end_to_end_speedup, 3),
            },
        },
    )

    # Determinism: the same seed and partitioning is bit-identical
    # across executors and worker counts.
    for row in sweep:
        assert row["identical_to_serial"], row
    # The tentpole claim: vectorized solves beat the scalar loop >= 3x
    # per iteration at equal worker count (smoke keeps a loose floor —
    # tiny workloads leave too little solve work to dominate).
    assert per_iter_speedup >= (1.2 if SMOKE else 3.0)
    # Fork actually scales only where cores exist to scale onto.
    if cpu_count >= WORKER_SWEEP[-1] and not SMOKE:
        assert fork_scaling >= 2.0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

"""Append-only journal: the durability/lineage mechanism of veloxstore.

Tachyon achieves fault tolerance through lineage rather than replication;
veloxstore models the same contract with a per-partition journal. Mutations
are appended before they are applied; recovery rebuilds a partition by
replaying its journal from the last snapshot offset.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator


class JournalOp(Enum):
    """The kinds of journaled mutation."""
    PUT = "put"
    DELETE = "delete"
    TRUNCATE = "truncate"
    #: One bulk columnar install: ``value`` is a
    #: :class:`~repro.store.slab.SlabSnapshot` whose entries merge in at
    #: their recorded versions. Lets a million-row retrain swap or
    #: checkpoint restore journal as a single record instead of a
    #: million PUTs.
    LOAD = "load"


@dataclass(frozen=True)
class JournalRecord:
    """One durable mutation.

    ``sequence`` is the dense per-journal offset; ``version`` is the
    per-key version the mutation produced (0 for deletes/truncates).
    """

    sequence: int
    op: JournalOp
    key: object
    value: object
    version: int


class Journal:
    """An append-only sequence of :class:`JournalRecord`.

    The journal is logically durable: :meth:`replay` must be able to
    reconstruct partition state after the in-memory dict is discarded.
    Snapshots mark a prefix as compactable via :meth:`compact`.
    """

    def __init__(self):
        self._records: list[JournalRecord] = []
        self._base_sequence = 0  # sequence of _records[0], after compaction

    def __len__(self) -> int:
        return self._base_sequence + len(self._records)

    @property
    def next_sequence(self) -> int:
        """The sequence the next appended record will get."""
        return len(self)

    def append(self, op: JournalOp, key: object, value: object, version: int) -> JournalRecord:
        """Durably record one mutation; returns the record."""
        record = JournalRecord(self.next_sequence, op, key, value, version)
        self._records.append(record)
        return record

    def replay(self, start: int = 0) -> Iterator[JournalRecord]:
        """Yield records with ``sequence >= start`` in order.

        Raises ``ValueError`` if ``start`` predates the compaction horizon,
        since those records no longer exist.
        """
        if start < self._base_sequence:
            raise ValueError(
                f"cannot replay from {start}: journal compacted up to "
                f"{self._base_sequence}"
            )
        offset = start - self._base_sequence
        yield from self._records[offset:]

    def compact(self, upto: int) -> int:
        """Discard records with ``sequence < upto``; return count dropped.

        Safe only once a snapshot covering ``upto`` exists — the table
        layer enforces that ordering.
        """
        if upto <= self._base_sequence:
            return 0
        if upto > self.next_sequence:
            raise ValueError(
                f"cannot compact beyond the journal end "
                f"({upto} > {self.next_sequence})"
            )
        dropped = upto - self._base_sequence
        self._records = self._records[dropped:]
        self._base_sequence = upto
        return dropped

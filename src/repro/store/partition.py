"""A single partition of a veloxstore table: hybrid state + journal + snapshot.

Partitions are the unit of placement (the cluster assigns partitions to
nodes) and the unit of failure/recovery. ``fail()`` drops the volatile
state, modeling a node losing its memory; ``recover()`` rebuilds it from
the last snapshot plus journal replay — the Tachyon lineage story.

Physical storage is a :class:`~repro.store.slab.HybridStore`: tables
that declare a :class:`~repro.store.slab.SlabPolicy` keep fixed-rank
vector values in one contiguous columnar array per partition (row
reads/writes, fancy-index gathers, O(bytes) snapshot copies) while
everything else stays in a plain dict. Policy-less tables behave exactly
like the historical dict-only partition, including the shape of
``export_state``.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.common.errors import PartitionError
from repro.store.journal import Journal, JournalOp
from repro.store.slab import (
    HybridStore,
    SlabPolicy,
    SlabRow,
    SlabSnapshot,
    WeightRead,
)


class Partition:
    """In-memory state for one shard of a table.

    Values are stored alongside a per-key integer version that starts at 1
    and increments on every overwrite. Deletes remove the key entirely;
    re-inserting restarts its version at 1 (versions are per-incarnation,
    like Tachyon block generations).
    """

    def __init__(self, index: int, value_policy: SlabPolicy | None = None):
        if index < 0:
            raise ValueError(f"partition index must be >= 0, got {index}")
        self.index = index
        self.value_policy = value_policy
        self._store = HybridStore(value_policy)
        self._journal = Journal()
        self._snapshot = None  # dict export or HybridExport
        self._snapshot_sequence = 0
        self._failed = False
        #: failover delegate (duck-typed like this partition's mapping
        #: surface, but trafficking in *raw* values — SlabRow wrappers
        #: for slab-resident entries). When set on a *failed* partition,
        #: reads and writes route through it instead of raising — the
        #: replication layer installs a promoted follower replica here
        #: so serving survives the owner node's loss.
        self.failover = None
        #: optional callable(partition) fired after every journaled
        #: mutation; the replication layer uses it to bound replica lag.
        self.on_mutate = None

    # -- basic state ---------------------------------------------------

    def __len__(self) -> int:
        delegate = self._delegate()
        if delegate is not None:
            return len(delegate)
        self._check_alive()
        return len(self._store)

    def __contains__(self, key: object) -> bool:
        delegate = self._delegate()
        if delegate is not None:
            return key in delegate
        self._check_alive()
        return key in self._store

    @property
    def failed(self) -> bool:
        """Whether this partition has lost its volatile state."""
        return self._failed

    @property
    def journal(self) -> Journal:
        """The durable journal (survives :meth:`fail`; the lineage tier)."""
        return self._journal

    @property
    def journal_length(self) -> int:
        """Total records ever appended to the journal."""
        return len(self._journal)

    def _delegate(self):
        """The failover target serving this partition, when failed."""
        if self._failed and self.failover is not None:
            return self.failover
        return None

    def _check_alive(self) -> None:
        if self._failed:
            raise PartitionError(
                f"partition {self.index} is failed; call recover() first"
            )

    def _mutated(self) -> None:
        if self.on_mutate is not None:
            self.on_mutate(self)

    # -- value routing ---------------------------------------------------

    def _encode(self, key: object, value: object) -> object:
        """Route a domain value: a SlabRow when the policy accepts it,
        the value itself otherwise."""
        if self.value_policy is not None:
            row = self.value_policy.encode(key, value)
            if row is not None:
                return SlabRow(row)
        return value

    def _present(self, entry):
        """Decode a raw ``(value, version)`` entry for callers."""
        if entry is None:
            return None
        value, version = entry
        if isinstance(value, SlabRow):
            return self.value_policy.decode(value.vector), version
        return entry

    def _present_value(self, value):
        if isinstance(value, SlabRow):
            return self.value_policy.decode(value.vector)
        return value

    # -- reads ----------------------------------------------------------

    def get(self, key: object) -> tuple[object, int] | None:
        """Return ``(value, version)`` or ``None`` when absent."""
        delegate = self._delegate()
        if delegate is not None:
            return self._present(delegate.get(key))
        self._check_alive()
        return self._present(self._store.get(key))

    def keys(self) -> Iterator[object]:
        """Snapshot of the partition's keys."""
        delegate = self._delegate()
        if delegate is not None:
            return delegate.keys()
        self._check_alive()
        return iter(self._store.keys())

    def items(self) -> Iterator[tuple[object, object]]:
        """Iterate ``(key, value)`` pairs (versions stripped).

        The pairs are a consistent snapshot: the slab side is copied
        columnar before anything is yielded, so concurrent mutation
        (including free-list reuse of deleted rows) cannot alter or
        reorder entries mid-iteration.
        """
        delegate = self._delegate()
        if delegate is not None:
            return iter(
                [(k, self._present_value(v)) for k, v in delegate.items()]
            )
        self._check_alive()
        return iter(
            [(k, self._present_value(v)) for k, v in self._store.items_raw()]
        )

    def read_serving(self, key: object) -> WeightRead | None:
        """Fast-path weight read: the raw row plus a state shim, with no
        per-read decode. Requires a value policy."""
        delegate = self._delegate()
        if delegate is not None:
            entry = delegate.get(key)
            if entry is None:
                return None
            value, _version = entry
            if isinstance(value, SlabRow):
                return WeightRead(value.vector, self.value_policy.serving_state())
            weights = self.value_policy.object_weights(value)
            if weights is None:
                return None
            codec = self.value_policy.codec
            return WeightRead(weights, value if codec is not None else None)
        self._check_alive()
        return self._store.read_weights(key)

    def read_serving_many(self, keys: list) -> dict:
        """Fast-path batch read: one fancy-index gather over the slab-
        resident subset of ``keys``."""
        delegate = self._delegate()
        if delegate is not None:
            out = {}
            for key in keys:
                read = self.read_serving(key)
                if read is not None:
                    out[key] = read
            return out
        self._check_alive()
        return self._store.read_weights_many(keys)

    def export_weights(self) -> tuple[np.ndarray, np.ndarray]:
        """``(keys, matrix)`` copies of every entry's weight row — the
        offline phase's bulk read. Requires a value policy."""
        delegate = self._delegate()
        if delegate is not None:
            keys, rows = [], []
            for key, value in delegate.items():
                value = self._present_value(value)
                weights = self.value_policy.object_weights(value)
                if weights is None:
                    continue
                keys.append(int(key))
                rows.append(np.asarray(weights, dtype=self.value_policy.dtype))
            if not keys:
                empty = SlabSnapshot.empty(
                    self.value_policy.rank, self.value_policy.dtype
                )
                return empty.keys, empty.rows
            return np.asarray(keys, dtype=np.int64), np.stack(rows)
        self._check_alive()
        return self._store.export_weights()

    def memory_bytes(self) -> int:
        """Approximate resident bytes of this partition's live state."""
        self._check_alive()
        return self._store.memory_bytes()

    # -- writes (journaled) ----------------------------------------------

    def put(self, key: object, value: object) -> int:
        """Insert or overwrite; returns the new per-key version."""
        delegate = self._delegate()
        if delegate is not None:
            return delegate.put(key, value)
        self._check_alive()
        stored = self._encode(key, value)
        version = self._store.version(key) + 1
        self._journal.append(JournalOp.PUT, key, stored, version)
        self._store.set(key, stored, version)
        self._mutated()
        return version

    def install(self, key: object, value: object, version: int) -> None:
        """Install an entry at an explicit version (checkpoint restore).

        Journaled as a single PUT carrying the version, so recovery
        replay reproduces it exactly without replaying the key's
        pre-checkpoint history.
        """
        if version < 1:
            raise ValueError(f"version must be >= 1, got {version}")
        delegate = self._delegate()
        if delegate is not None:
            delegate.install(key, value, version)
            return
        self._check_alive()
        stored = self._encode(key, value)
        self._journal.append(JournalOp.PUT, key, stored, version)
        self._store.set(key, stored, version)
        self._mutated()

    def load_rows(self, keys, matrix, live_rows: np.ndarray | None = None) -> None:
        """Bulk-install slab rows as ONE journal record.

        ``keys``/``matrix`` land at version ``current + 1`` per key
        (retrain swap semantics). When ``live_rows`` is given (the
        memory-mapped restore path) the partition must be empty: the
        journal keeps the read-only snapshot arrays while ``live_rows``
        — typically a copy-on-write ``np.load(mmap_mode="c")`` mapping
        of the same file — is adopted as the live slab without copying.
        """
        delegate = self._delegate()
        if delegate is not None:
            for key, row in zip(np.asarray(keys), np.asarray(matrix)):
                self.install(
                    int(key),
                    self.value_policy.decode(row),
                    self._store_version_via(delegate, int(key)) + 1,
                )
            return
        self._check_alive()
        snapshot = self._store.prepare_bulk(keys, matrix)
        self._journal.append(JournalOp.LOAD, None, snapshot, 0)
        if live_rows is not None and len(self._store) == 0:
            self._store.slab.adopt(snapshot.keys, live_rows, snapshot.versions)
        else:
            self._store.bulk_install(snapshot)
        self._mutated()

    @staticmethod
    def _store_version_via(delegate, key: object) -> int:
        entry = delegate.get(key)
        return 0 if entry is None else entry[1]

    def restore_slab(self, keys, rows, versions,
                     live_rows: np.ndarray | None = None) -> None:
        """Bulk-install slab rows at explicit versions (checkpoint restore).

        Journaled as one LOAD record. With ``live_rows`` (a second,
        copy-on-write mapping of the same data) and an empty partition,
        the arrays are adopted as the live slab without copying — the
        memory-mapped load-not-parse path; the journal keeps the
        read-only ``rows`` mapping for replay.
        """
        self._check_alive()
        snapshot = SlabSnapshot(
            keys=np.asarray(keys, dtype=np.int64),
            rows=rows,
            versions=np.asarray(versions, dtype=np.int64),
        )
        self._journal.append(JournalOp.LOAD, None, snapshot, 0)
        if live_rows is not None and len(self._store) == 0:
            self._store.slab.adopt(snapshot.keys, live_rows, snapshot.versions)
        else:
            self._store.bulk_install(snapshot)
        self._mutated()

    def delete(self, key: object) -> bool:
        """Remove a key; returns whether it existed."""
        delegate = self._delegate()
        if delegate is not None:
            return delegate.delete(key)
        self._check_alive()
        if key not in self._store:
            return False
        self._journal.append(JournalOp.DELETE, key, None, 0)
        self._store.delete(key)
        self._mutated()
        return True

    def truncate(self) -> None:
        """Remove every key (journaled as a single record)."""
        delegate = self._delegate()
        if delegate is not None:
            delegate.truncate()
            return
        self._check_alive()
        self._journal.append(JournalOp.TRUNCATE, None, None, 0)
        self._store.clear()
        self._mutated()

    # -- durability & recovery -------------------------------------------

    def snapshot(self) -> None:
        """Checkpoint current state; compacts the journal prefix it covers."""
        self._check_alive()
        self._snapshot = self._store.export_state()
        self._snapshot_sequence = self._journal.next_sequence
        self._journal.compact(self._snapshot_sequence)

    def fail(self) -> None:
        """Simulate loss of volatile memory. Journal and snapshot survive
        (they model durable/lineage state)."""
        self._store = HybridStore(self.value_policy)
        self._failed = True

    def _rebuild_from_journal(self) -> tuple[HybridStore, int]:
        """Reconstruct ``(store, records_replayed)`` from snapshot + journal."""
        store = HybridStore(self.value_policy)
        if self._snapshot is not None:
            store.load_export(self._snapshot, copy_objects=True)
        replayed = 0
        for record in self._journal.replay(self._snapshot_sequence):
            replayed += 1
            if record.op is JournalOp.PUT:
                store.set(record.key, record.value, record.version)
            elif record.op is JournalOp.DELETE:
                store.delete(record.key)
            elif record.op is JournalOp.TRUNCATE:
                store.clear()
            elif record.op is JournalOp.LOAD:
                store.bulk_install(record.value)
        return store, replayed

    def recover(self) -> int:
        """Rebuild state from snapshot + journal replay.

        Returns the number of journal records replayed. Idempotent on a
        healthy partition (replaying a journal over its own snapshot-plus-
        suffix state reproduces the same store).
        """
        self._store, replayed = self._rebuild_from_journal()
        self._failed = False
        return replayed

    def export_state(self):
        """A ``(state, sequence)`` copy for replica snapshot transfer.

        Policy-less partitions export the classic deep-copied
        ``{key: (value, version)}`` dict; slab-backed partitions export
        a :class:`~repro.store.slab.HybridExport` whose columnar side is
        an O(bytes) array copy (and whose arrays the receiver may adopt
        outright — every buffer is owned by the export).

        Valid even while failed: the durable snapshot + journal are
        replayed without reviving the partition, so a follower that fell
        behind the compaction horizon can still be caught up.
        """
        if not self._failed:
            return self._store.export_state(), self._journal.next_sequence
        store, _ = self._rebuild_from_journal()
        return store.export_state(), self._journal.next_sequence

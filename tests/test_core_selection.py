"""Dynamic model selection: Hedge, EXP3, epsilon-greedy, ensemble router."""

import numpy as np
import pytest

from repro.common.errors import ConfigError, ValidationError
from repro.core.selection import (
    EnsembleRouter,
    EpsilonGreedySelector,
    Exp3Selector,
    HedgeSelector,
    SelectorScope,
)


class TestHedgeSelector:
    def test_uniform_initially(self):
        selector = HedgeSelector(["a", "b", "c"])
        weights = selector.weights()
        assert all(w == pytest.approx(1 / 3) for w in weights.values())

    def test_weight_shifts_to_lower_loss_model(self):
        selector = HedgeSelector(["good", "bad"], eta=0.5)
        for __ in range(50):
            selector.update({"good": 0.1, "bad": 1.0})
        weights = selector.weights()
        assert weights["good"] > 0.95
        assert selector.choose() == "good"

    def test_weights_always_normalized(self):
        selector = HedgeSelector(["a", "b"], eta=1.0)
        for i in range(200):
            selector.update({"a": float(i % 3), "b": float((i + 1) % 3)})
        assert sum(selector.weights().values()) == pytest.approx(1.0)

    def test_numerically_stable_under_huge_losses(self):
        selector = HedgeSelector(["a", "b"], eta=1.0)
        for __ in range(10_000):
            selector.update({"a": 0.0, "b": 10.0})
        weights = selector.weights()
        assert np.isfinite(weights["a"]) and weights["a"] > 0.99

    def test_regret_vanishes_vs_best_fixed_model(self):
        """Hedge's expected loss approaches the best single model's."""
        rng = np.random.default_rng(1)
        selector = HedgeSelector(["a", "b"], eta=0.3)
        hedge_loss, best_loss = 0.0, 0.0
        total_a, total_b = 0.0, 0.0
        for __ in range(2000):
            losses = {"a": float(rng.uniform(0, 0.4)), "b": float(rng.uniform(0.2, 1))}
            weights = selector.weights()
            hedge_loss += sum(weights[m] * losses[m] for m in losses)
            total_a += losses["a"]
            total_b += losses["b"]
            selector.update(losses)
        best_loss = min(total_a, total_b)
        assert hedge_loss < best_loss * 1.1

    def test_validation(self):
        with pytest.raises(ConfigError):
            HedgeSelector(["a"], eta=0.0)
        with pytest.raises(ValidationError):
            HedgeSelector([])
        with pytest.raises(ValidationError):
            HedgeSelector(["a", "a"])
        selector = HedgeSelector(["a"])
        with pytest.raises(ValidationError):
            selector.update({"ghost": 0.5})
        with pytest.raises(ValidationError):
            selector.update({"a": -1.0})


class TestExp3Selector:
    def test_explores_all_models(self):
        selector = Exp3Selector(["a", "b", "c"], gamma=0.3, rng=2)
        chosen = {selector.choose() for __ in range(100)}
        assert chosen == {"a", "b", "c"}

    def test_converges_with_bandit_feedback(self):
        rng = np.random.default_rng(3)
        selector = Exp3Selector(["good", "bad"], gamma=0.1, eta=0.2, rng=4)
        for __ in range(800):
            served = selector.choose()
            loss = 0.1 if served == "good" else 1.0
            loss += float(rng.normal(0, 0.02))
            selector.update({served: max(loss, 0.0)}, served=served)
        assert selector.weights()["good"] > 0.6

    def test_requires_served_model(self):
        selector = Exp3Selector(["a", "b"])
        with pytest.raises(ValidationError):
            selector.update({"a": 0.5})
        with pytest.raises(ValidationError):
            selector.update({"a": 0.5}, served="b")

    def test_gamma_floor_on_weights(self):
        selector = Exp3Selector(["a", "b"], gamma=0.2)
        for __ in range(200):
            selector.update({"b": 1.0}, served="b")
        # b keeps at least gamma/2 probability mass.
        assert selector.weights()["b"] >= 0.1 - 1e-9


class TestEpsilonGreedySelector:
    def test_greedy_picks_lowest_mean_loss(self):
        selector = EpsilonGreedySelector(["a", "b"], epsilon=0.0, rng=1)
        selector.update({"a": 1.0, "b": 0.2})
        selector.update({"a": 0.9, "b": 0.3})
        assert selector.choose() == "b"

    def test_untried_models_are_optimistic(self):
        selector = EpsilonGreedySelector(["tried", "fresh"], epsilon=0.0, rng=1)
        selector.update({"tried": 0.5}, served="tried")
        assert selector.choose() == "fresh"  # mean 0.0 beats 0.5

    def test_epsilon_explores(self):
        selector = EpsilonGreedySelector(["a", "b"], epsilon=1.0, rng=5)
        chosen = {selector.choose() for __ in range(50)}
        assert chosen == {"a", "b"}

    def test_weights_sum_to_one(self):
        selector = EpsilonGreedySelector(["a", "b", "c"], epsilon=0.3, rng=1)
        assert sum(selector.weights().values()) == pytest.approx(1.0)


class TestSelectorScope:
    def test_global_scope_shares_one_selector(self):
        scope = SelectorScope(lambda: HedgeSelector(["a", "b"]), per_user=False)
        assert scope.for_user(1) is scope.for_user(2)

    def test_per_user_scope_isolates(self):
        scope = SelectorScope(lambda: HedgeSelector(["a", "b"]), per_user=True)
        scope.for_user(1).update({"a": 0.0, "b": 5.0})
        assert scope.for_user(1).weights()["a"] > 0.6
        assert scope.for_user(2).weights()["a"] == pytest.approx(0.5)


class TestEnsembleRouter:
    @pytest.fixture
    def two_model_velox(self, deployed_velox, rng):
        from repro.core.models import PersonalizedLinearModel

        deployed_velox.add_model(PersonalizedLinearModel("aux", input_dimension=3))
        return deployed_velox

    def test_blended_score_is_weighted_average(self, two_model_velox, rng):
        scope = SelectorScope(
            lambda: HedgeSelector(["songs", "aux"]), per_user=False
        )
        router = EnsembleRouter(two_model_velox, ["songs", "aux"], scope)
        inputs = {"songs": 4, "aux": rng.normal(size=3)}
        result = router.predict(uid=1, inputs=inputs)
        expected = 0.5 * result.per_model["songs"] + 0.5 * result.per_model["aux"]
        assert result.score == pytest.approx(expected)
        assert result.chosen_model in ("songs", "aux")

    def test_observe_updates_selector_toward_better_model(self, two_model_velox, rng):
        scope = SelectorScope(
            lambda: HedgeSelector(["songs", "aux"], eta=0.5), per_user=False
        )
        router = EnsembleRouter(two_model_velox, ["songs", "aux"], scope)
        # Labels follow the MF model's own predictions, so its loss is
        # near zero while the fresh aux model's is large.
        for item in range(20):
            target = two_model_velox.predict("songs", 1, item % 10)[1]
            inputs = {"songs": item % 10, "aux": rng.normal(size=3)}
            router.observe(uid=1, inputs=inputs, label=target)
        assert scope.for_user(1).weights()["songs"] > 0.8

    def test_missing_inputs_rejected(self, two_model_velox):
        scope = SelectorScope(lambda: HedgeSelector(["songs", "aux"]))
        router = EnsembleRouter(two_model_velox, ["songs", "aux"], scope)
        with pytest.raises(ValidationError):
            router.predict(uid=1, inputs={"songs": 3})

    def test_undeployed_model_rejected(self, deployed_velox):
        scope = SelectorScope(lambda: HedgeSelector(["songs", "ghost"]))
        with pytest.raises(ValidationError):
            EnsembleRouter(deployed_velox, ["songs", "ghost"], scope)

"""Second wave of hypothesis property tests: sampling, streaming,
persistence, selection, and top-K engine equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.selection import EpsilonGreedySelector, Exp3Selector, HedgeSelector
from repro.core.topk import BlockedMatrixTopK, NaiveTopK, ThresholdTopK
from repro.sampling import StratifiedSampler, sample_observations
from repro.store import Observation
from repro.streaming import CollectSink, Filter, IterableSource, Map, StreamPipeline


class TestSamplingProperties:
    @given(
        counts=st.lists(st.integers(1, 40), min_size=1, max_size=8),
        fraction=st.floats(0.05, 1.0),
        floor=st.integers(0, 5),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_stratified_respects_floor_and_bounds(self, counts, fraction, floor, seed):
        items = [
            (stratum, i) for stratum, n in enumerate(counts) for i in range(n)
        ]
        sampler = StratifiedSampler(fraction, floor=floor, rng=seed)
        sampled = sampler.sample(items, key_fn=lambda t: t[0])
        per_stratum: dict[int, int] = {}
        for stratum, __ in sampled:
            per_stratum[stratum] = per_stratum.get(stratum, 0) + 1
        for stratum, n in enumerate(counts):
            kept = per_stratum.get(stratum, 0)
            expected = min(n, max(floor, int(round(fraction * n))))
            assert kept == expected
        # No fabricated items: sample is a sub-multiset of the input.
        assert set(sampled) <= set(items)

    @given(
        per_user=st.integers(1, 20),
        users=st.integers(1, 8),
        fraction=st.floats(0.1, 0.99),
        seed=st.integers(0, 500),
    )
    @settings(max_examples=40, deadline=None)
    def test_every_user_survives_observation_sampling(
        self, per_user, users, fraction, seed
    ):
        observations = [
            Observation(uid=u, item_id=i, label=1.0)
            for u in range(users)
            for i in range(per_user)
        ]
        sampled = sample_observations(
            observations, fraction, min_per_user=2, rng=seed
        )
        assert {ob.uid for ob in sampled} == set(range(users))


class TestStreamingProperties:
    @given(
        data=st.lists(st.integers(-100, 100), max_size=120),
        batch_size=st.integers(1, 17),
        threshold=st.integers(-50, 50),
    )
    @settings(max_examples=50, deadline=None)
    def test_pipeline_equals_list_pipeline(self, data, batch_size, threshold):
        """Micro-batching is invisible: the pipeline computes exactly the
        list-comprehension equivalent regardless of batch size."""
        sink = CollectSink()
        StreamPipeline(
            source=IterableSource(data, batch_size=batch_size),
            operators=[
                Filter(lambda x: x > threshold),
                Map(lambda x: x * 2 + 1),
            ],
            sinks=[sink],
        ).run()
        assert sink.records == [x * 2 + 1 for x in data if x > threshold]


class TestPersistenceProperty:
    @given(
        entries=st.dictionaries(
            st.integers(0, 50),
            st.lists(st.floats(-10, 10, allow_nan=False), min_size=1, max_size=4),
            max_size=20,
        ),
        partitions=st.integers(1, 4),
    )
    @settings(max_examples=30, deadline=None)
    def test_checkpoint_restore_identity(self, entries, partitions, tmp_path_factory):
        from repro.store import VeloxStore, checkpoint_store, restore_store

        directory = tmp_path_factory.mktemp("ckpt")
        store = VeloxStore(default_partitions=partitions)
        table = store.create_table("t")
        for key, value in entries.items():
            table.put(key, value)
        checkpoint_store(store, directory)
        restored = restore_store(directory)
        assert dict(restored.table("t").items()) == entries


class TestSelectionProperties:
    selector_factories = [
        lambda names, seed: HedgeSelector(names, eta=0.3),
        lambda names, seed: HedgeSelector(names, eta=0.5, decay=0.9),
        lambda names, seed: Exp3Selector(names, gamma=0.2, rng=seed),
        lambda names, seed: EpsilonGreedySelector(names, epsilon=0.2, rng=seed),
    ]

    @given(
        num_models=st.integers(1, 5),
        losses=st.lists(
            st.lists(st.floats(0, 10, allow_nan=False), min_size=1, max_size=5),
            max_size=30,
        ),
        factory_index=st.integers(0, 3),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=60, deadline=None)
    def test_weights_are_a_distribution(self, num_models, losses, factory_index, seed):
        names = [f"m{i}" for i in range(num_models)]
        selector = self.selector_factories[factory_index](names, seed)
        for row in losses:
            padded = {
                name: row[i % len(row)] for i, name in enumerate(names)
            }
            served = names[0]
            try:
                selector.update(padded, served=served)
            except Exception:
                # Exp3 requires served in losses; padded always has it.
                raise
        weights = selector.weights()
        assert set(weights) == set(names)
        assert all(w >= 0 for w in weights.values())
        assert sum(weights.values()) == pytest.approx(1.0)
        assert selector.choose() in names


class TestTopKEngineProperty:
    @given(
        num_items=st.integers(1, 60),
        dimension=st.integers(1, 8),
        k=st.integers(1, 10),
        seed=st.integers(0, 10_000),
        sparse=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_engines_agree_with_brute_force(
        self, num_items, dimension, k, seed, sparse
    ):
        rng = np.random.default_rng(seed)
        matrix = rng.normal(size=(num_items, dimension))
        weights = rng.normal(size=dimension)
        if sparse and dimension > 1:
            weights[rng.integers(0, dimension)] = 0.0
        scores = matrix @ weights
        expected = np.lexsort((np.arange(num_items), -scores))[
            : min(k, num_items)
        ].tolist()
        for engine_cls in (NaiveTopK, BlockedMatrixTopK, ThresholdTopK):
            result = engine_cls(matrix).top_k(weights, k)
            assert [item for item, __ in result] == expected, engine_cls.__name__

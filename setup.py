"""Setuptools shim enabling legacy editable installs (offline environments
without the ``wheel`` package cannot use PEP 660 editable builds)."""

from setuptools import setup

setup()

"""Replication over slab-backed tables.

The journal-shipping and snapshot-transfer paths must reproduce the
primary's *physical* layout on followers: slab rows land in the
follower's own columnar arrays (bit-identical to the primary's export),
snapshot transfers move O(bytes) array copies the follower adopts, and
a promoted follower serves correct vector reads from whatever prefix
was shipped before the failure.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import VeloxCluster
from repro.common.clock import SimulatedClock
from repro.common.errors import KeyNotFoundError
from repro.replication import ReplicationManager
from repro.store import SlabPolicy


NUM_NODES = 4
TABLE = "user_state:slab"
RANK = 4


def vec(seed: float) -> np.ndarray:
    return np.arange(RANK, dtype=np.float64) * 0.5 + seed


def make_cluster() -> VeloxCluster:
    cluster = VeloxCluster(num_nodes=NUM_NODES)
    cluster.store.create_table(
        TABLE,
        num_partitions=NUM_NODES,
        partitioner=cluster.user_partitioner,
        value_policy=SlabPolicy(RANK),
    )
    return cluster


def make_manager(cluster: VeloxCluster) -> tuple[ReplicationManager, SimulatedClock]:
    clock = SimulatedClock()
    manager = ReplicationManager(
        cluster, replication_factor=2, heartbeat_timeout=1.0, clock=clock
    )
    cluster.attach_replication(manager)
    return manager, clock


@pytest.fixture
def cluster():
    return make_cluster()


def primary_slab_export(cluster, index):
    return cluster.store.table(TABLE).partition(index)._store.slab.export()


class TestSlabShipping:
    def test_shipped_rows_land_in_follower_slab(self, cluster):
        manager, _ = make_manager(cluster)
        table = cluster.store.table(TABLE)
        uid = 1
        table.put(uid, vec(1.0))
        table.put(uid, vec(2.0))  # overwrite: version 2
        table.put(uid + NUM_NODES, vec(3.0))  # same partition
        assert manager.ship() == 3
        [replica] = manager._replicas[(TABLE, 1)]
        assert len(replica.store.objects) == 0  # columnar, not boxed
        assert replica.store.slab.export().equals(primary_slab_export(cluster, 1))

    def test_snapshot_transfer_is_bit_identical(self, cluster):
        """A follower behind the compaction horizon receives the full
        HybridExport; its adopted slab matches the primary's bitwise."""
        manager, _ = make_manager(cluster)
        table = cluster.store.table(TABLE)
        uid = 2
        table.put(uid, vec(4.0))
        table.put(uid + NUM_NODES, vec(5.0))
        rich_uid = uid + 2 * NUM_NODES
        table.put(rich_uid, {"rich": True})  # dict-path remainder
        partition = table.partition(table.partition_index(uid))
        index = partition.index
        partition.snapshot()  # compacts the journal past the replica's ack
        manager.ship()
        [replica] = manager._replicas[(TABLE, index)]
        assert replica.snapshot_transfers == 1
        assert replica.store.slab.export().equals(primary_slab_export(cluster, index))
        assert replica.get(rich_uid)[0] == {"rich": True}

    def test_bulk_load_record_ships_to_follower(self, cluster):
        """One LOAD journal record reproduces the whole bulk install on
        the follower's slab."""
        manager, _ = make_manager(cluster)
        table = cluster.store.table(TABLE)
        keys = np.arange(0, 40, NUM_NODES, dtype=np.int64)  # one partition
        matrix = np.stack([vec(float(k)) for k in keys])
        table.load_weight_rows(keys, matrix)
        manager.ship()
        index = table.partition_index(int(keys[0]))
        [replica] = manager._replicas[(TABLE, index)]
        assert replica.store.slab.export().equals(primary_slab_export(cluster, index))
        assert len(replica.store.slab) == len(keys)


class TestSlabPromotion:
    def test_promoted_follower_serves_shipped_prefix(self, cluster):
        manager, clock = make_manager(cluster)
        table = cluster.store.table(TABLE)
        uid = 1
        index = table.partition_index(uid)
        primary = manager.primary_node(index)
        table.put(uid, vec(10.0))
        manager.ship()
        unshipped = uid + NUM_NODES
        table.put(unshipped, vec(11.0))  # journaled but never shipped
        cluster.fail_node(primary)
        clock.advance(2.0)
        assert primary in manager.tick()
        [replica] = manager._replicas[(TABLE, index)]
        assert replica.promoted and replica.promotion_lag == 1
        np.testing.assert_array_equal(table.get(uid), vec(10.0))
        with pytest.raises(KeyNotFoundError):
            table.get(unshipped)  # behind the shipped prefix

    def test_failover_writes_land_in_follower_slab(self, cluster):
        """Writes during failover route through the storage policy, so
        they live in the promoted replica's slab and journal as slab
        rows — recovery replays them back into the primary's slab."""
        manager, clock = make_manager(cluster)
        table = cluster.store.table(TABLE)
        uid = 3
        index = table.partition_index(uid)
        primary = manager.primary_node(index)
        table.put(uid, vec(20.0))
        manager.ship()
        cluster.fail_node(primary)
        clock.advance(2.0)
        manager.tick()
        failover_uid = uid + NUM_NODES
        table.put(failover_uid, vec(21.0))
        [replica] = manager._replicas[(TABLE, index)]
        assert failover_uid in replica.store.slab
        assert len(replica.store.objects) == 0
        # The real node recovers: journal replay reconverges its slab
        # with everything the promotee served, including failover writes.
        cluster.restart_node(primary)
        partition = table.partition(index)
        assert not partition.failed
        np.testing.assert_array_equal(table.get(uid), vec(20.0))
        np.testing.assert_array_equal(table.get(failover_uid), vec(21.0))
        assert partition._store.slab.export().equals(replica.store.slab.export())

"""Ablation: replicated user-weight partitions under node loss.

The replication subsystem (``repro/replication``) claims that with
``replication_factor=2`` a deployment survives losing a node: the
failure detector (heartbeat + read-failure fast path) promotes a
follower automatically, reads keep succeeding (flagged stale at most
until the owner returns), and the error dip is confined to the moment
of failure. This experiment kills a node under live load — nothing
calls ``fail_over`` by hand — and records:

* **failover time** — wall-clock from ``fail_node`` to the first
  successful read for a user owned by the dead node,
* **availability** — per-phase success/error/stale counts from the load
  threads (before the kill, during failover, after promotion),
* **replication cost** — healthy-path throughput of rf=2 vs the rf=1
  baseline (journal shipping + on_mutate hooks are the only overhead),
* **replication lag & shipping volume** — the manager's own metrics.

Writes ``benchmarks/results/ablation_replication.txt`` and the
machine-readable ``BENCH_replication.json`` at the repo root.

Set ``CHAOS_SMOKE=1`` for the fast CI configuration.
"""

from __future__ import annotations

import os
import pathlib
import threading
import time

import numpy as np

from repro import Velox, VeloxConfig
from repro.core.models import MatrixFactorizationModel
from repro.tools.bench_report import write_json_summary

from conftest import write_result

SMOKE = os.environ.get("CHAOS_SMOKE", "") not in ("", "0")

NUM_NODES = 4
VICTIM = 1  # the node the chaos phase kills
NUM_USERS = 64 if SMOKE else 256
NUM_ITEMS = 400 if SMOKE else 2000
RANK = 8
LOAD_THREADS = 2 if SMOKE else 4
WARM_SECONDS = 0.3 if SMOKE else 1.0
CHAOS_SECONDS = 0.8 if SMOKE else 2.5
MEASURE_SECONDS = 0.5 if SMOKE else 1.5
OBSERVE_EVERY = 7  # one online update per this many predictions

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def build_deployment(replication_factor: int, seed: int = 0) -> Velox:
    rng = np.random.default_rng(seed)
    model = MatrixFactorizationModel(
        "bench",
        item_factors=rng.normal(0, 0.1, (NUM_ITEMS, RANK)),
        item_bias=rng.normal(0, 0.1, NUM_ITEMS),
        global_mean=3.5,
    )
    weights = {
        uid: model.pack_user_weights(rng.normal(0, 0.1, RANK), 0.0)
        for uid in range(NUM_USERS)
    }
    velox = Velox.deploy(
        VeloxConfig(
            num_nodes=NUM_NODES,
            replication_factor=replication_factor,
            # Cached predictions would mask the user-weight reads this
            # experiment is about; keep every request on the weight path.
            prediction_cache_capacity=0,
        ),
        auto_retrain=False,
    )
    velox.add_model(model, initial_user_weights=weights)
    return velox


class LoadRecorder:
    """Thread-safe (timestamp, outcome) timeline from the load threads."""

    OK, STALE, ERROR = "ok", "ok_stale", "error"

    def __init__(self):
        self._lock = threading.Lock()
        self.events: list[tuple[float, str]] = []

    def record(self, outcome: str) -> None:
        with self._lock:
            self.events.append((time.perf_counter(), outcome))

    def counts_between(self, start: float, end: float) -> dict[str, int]:
        with self._lock:
            window = [o for (t, o) in self.events if start <= t < end]
        return {
            key: sum(1 for o in window if o == key)
            for key in (self.OK, self.STALE, self.ERROR)
        }


def run_load(velox: Velox, recorder: LoadRecorder, stop: threading.Event,
             seed: int) -> threading.Thread:
    """One load thread: random predicts with interleaved observes."""

    def loop() -> None:
        rng = np.random.default_rng(seed)
        i = 0
        while not stop.is_set():
            uid = int(rng.integers(NUM_USERS))
            item = int(rng.integers(NUM_ITEMS))
            try:
                result = velox.service.predict("bench", uid, item)
                recorder.record(
                    LoadRecorder.STALE if result.stale else LoadRecorder.OK
                )
                i += 1
                if i % OBSERVE_EVERY == 0:
                    velox.observe(uid=uid, x=item, y=float(rng.normal(3.5, 1.0)))
            except Exception:
                recorder.record(LoadRecorder.ERROR)

    thread = threading.Thread(target=loop, daemon=True)
    thread.start()
    return thread


def measure_throughput(velox: Velox, seconds: float) -> float:
    """Healthy-path single-thread predict ops/s (uncached weight reads)."""
    rng = np.random.default_rng(7)
    pairs = [
        (int(rng.integers(NUM_USERS)), int(rng.integers(NUM_ITEMS)))
        for _ in range(4096)
    ]
    count = 0
    deadline = time.perf_counter() + seconds
    start = time.perf_counter()
    while time.perf_counter() < deadline:
        uid, item = pairs[count % len(pairs)]
        velox.service.predict("bench", uid, item)
        count += 1
    return count / (time.perf_counter() - start)


def probe_failover(velox: Velox) -> tuple[float, int]:
    """Kill VICTIM and probe its users until a read succeeds.

    Returns ``(failover_seconds, probe_errors)``. Nothing calls
    ``fail_over`` by hand — promotion must come from the read-failure
    fast path or the heartbeat loop.
    """
    affected = [uid for uid in range(NUM_USERS) if uid % NUM_NODES == VICTIM]
    errors = 0
    killed_at = time.perf_counter()
    velox.cluster.fail_node(VICTIM)
    deadline = killed_at + 10.0
    while time.perf_counter() < deadline:
        try:
            velox.service.predict("bench", affected[errors % len(affected)], 3)
            return time.perf_counter() - killed_at, errors
        except Exception:
            errors += 1
    raise AssertionError("no successful read within 10s of the kill")


def test_replication_failover_summary(benchmark):
    # -- healthy-path cost: rf=1 baseline vs rf=2 ---------------------------
    baseline = build_deployment(replication_factor=1)
    baseline_ops = measure_throughput(baseline, MEASURE_SECONDS)

    replicated = build_deployment(replication_factor=2)
    try:
        replicated_ops = measure_throughput(replicated, MEASURE_SECONDS)

        # -- chaos phase: kill a node under live load -----------------------
        recorder = LoadRecorder()
        stop = threading.Event()
        threads = [
            run_load(replicated, recorder, stop, seed=100 + i)
            for i in range(LOAD_THREADS)
        ]
        warm_start = time.perf_counter()
        time.sleep(WARM_SECONDS)
        lag_before_kill = replicated.replication.max_lag()
        failover_seconds, probe_errors = probe_failover(replicated)
        kill_time = time.perf_counter() - failover_seconds
        time.sleep(CHAOS_SECONDS)
        stop.set()
        for thread in threads:
            thread.join(timeout=10)
        end_time = time.perf_counter()

        before = recorder.counts_between(warm_start, kill_time)
        # Give the fast path one second to settle, then demand clean air.
        settle = min(1.0, CHAOS_SECONDS / 2)
        during = recorder.counts_between(kill_time, kill_time + settle)
        after = recorder.counts_between(kill_time + settle, end_time)

        restart_replayed = replicated.cluster.restart_node(VICTIM)
        post_restart = replicated.service.predict("bench", VICTIM, 3)
        metrics = replicated.replication.metrics.snapshot()
    finally:
        replicated.shutdown()

    # -- report --------------------------------------------------------------
    def fmt(window: dict) -> str:
        total = sum(window.values()) or 1
        return (
            f"ok={window['ok']:<7d} stale={window['ok_stale']:<6d} "
            f"errors={window['error']:<5d} "
            f"error_rate={window['error'] / total:.3%}"
        )

    lines = [
        f"== replication & failover ({NUM_NODES} nodes, rf=2 vs rf=1, "
        f"{NUM_USERS} users, {LOAD_THREADS} load threads, smoke={SMOKE}) ==",
        f"throughput rf=1 (baseline): {baseline_ops:,.0f} ops/s",
        f"throughput rf=2 (healthy):  {replicated_ops:,.0f} ops/s "
        f"({replicated_ops / baseline_ops:.2f}x of baseline)",
        "",
        f"failover: node {VICTIM} killed under load, promotion automatic",
        f"  time to first successful read: {failover_seconds * 1e3:.1f} ms "
        f"({probe_errors} probe errors)",
        f"  replication lag at kill: {lag_before_kill} records",
        f"  promotions={metrics['promotions']} failovers={metrics['failovers']} "
        f"stale_reads={metrics['stale_reads']}",
        f"  records_shipped={metrics['records_shipped']} "
        f"snapshot_transfers={metrics['snapshot_transfers']} "
        f"mean_ship_lag={metrics['lag_mean_records']:.1f} records",
        "",
        "availability windows (load threads):",
        f"  before kill:      {fmt(before)}",
        f"  failover window:  {fmt(during)}",
        f"  after promotion:  {fmt(after)}",
        "",
        f"restart: {restart_replayed} journal records replayed "
        f"(includes failover-era writes); "
        f"post-restart read stale={post_restart.stale}",
    ]
    write_result("ablation_replication", lines)

    write_json_summary(
        REPO_ROOT / "BENCH_replication.json",
        "ablation_replication",
        {
            "smoke": SMOKE,
            "workload": {
                "num_nodes": NUM_NODES,
                "num_users": NUM_USERS,
                "num_items": NUM_ITEMS,
                "load_threads": LOAD_THREADS,
                "observe_every": OBSERVE_EVERY,
            },
            "throughput_ops_s": {
                "rf1_baseline": round(baseline_ops, 1),
                "rf2_healthy": round(replicated_ops, 1),
                "rf2_vs_rf1": round(replicated_ops / baseline_ops, 4),
            },
            "failover": {
                "time_to_first_success_ms": round(failover_seconds * 1e3, 2),
                "probe_errors": probe_errors,
                "lag_at_kill_records": lag_before_kill,
                "promotion_mean_s": metrics["promotion_mean_s"],
                "promotion_max_s": metrics["promotion_max_s"],
            },
            "availability": {
                "before_kill": before,
                "failover_window": during,
                "after_promotion": after,
            },
            "replication_metrics": {
                "records_shipped": metrics["records_shipped"],
                "snapshot_transfers": metrics["snapshot_transfers"],
                "failovers": metrics["failovers"],
                "promotions": metrics["promotions"],
                "demotions": metrics["demotions"],
                "stale_reads": metrics["stale_reads"],
                "failure_reports": metrics["failure_reports"],
                "lag_mean_records": metrics["lag_mean_records"],
            },
            "restart": {
                "journal_records_replayed": restart_replayed,
                "post_restart_stale": post_restart.stale,
            },
        },
    )

    # -- shape assertions ------------------------------------------------------
    # Promotion happened automatically: nothing in this file calls
    # fail_over, yet the victim's partitions got served by followers.
    assert metrics["failovers"] >= 1
    assert metrics["promotions"] >= 1
    # Reads kept succeeding: the read-failure fast path bounds failover
    # by one serving round-trip, not the heartbeat timeout.
    assert failover_seconds < 2.0
    # The error dip is confined to the kill instant: once the settle
    # window passes, the load threads see zero errors.
    assert after["error"] == 0
    assert after["ok"] + after["ok_stale"] > 0
    # Before the kill nothing fails either (replication is not lossy on
    # the healthy path).
    assert before["error"] == 0 and before["ok_stale"] == 0
    # Restart reconverges: the journal replayed (failover-era writes
    # included) and the owner serves fresh, unflagged reads again.
    assert restart_replayed > 0
    assert post_restart.stale is False
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

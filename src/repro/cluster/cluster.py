"""VeloxCluster: wires nodes, storage, routing, and the network model.

One cluster owns a :class:`~repro.store.VeloxStore` sharded across its
nodes, a router, and a :class:`NetworkModel`. The serving tier asks the
cluster two questions: *which node serves this uid* (routing) and *what
does it cost this node to read that key* (locality accounting).
"""

from __future__ import annotations

from repro.common.errors import RoutingError
from repro.cluster.network import NetworkModel
from repro.cluster.node import Node, NodeStats
from repro.cluster.partitioner import HashPartitioner, ModuloPartitioner, Partitioner
from repro.cluster.router import Router, UserAwareRouter
from repro.store import VeloxStore


class VeloxCluster:
    """A simulated deployment of ``num_nodes`` co-located worker pairs."""

    def __init__(
        self,
        num_nodes: int = 4,
        router_factory=None,
        network: NetworkModel | None = None,
    ):
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        self.nodes = [Node(i) for i in range(num_nodes)]
        self.store = VeloxStore(default_partitions=num_nodes)
        self.user_partitioner: Partitioner = ModuloPartitioner(num_nodes)
        self.item_partitioner: Partitioner = HashPartitioner(num_nodes)
        if router_factory is None:
            self.router: Router = UserAwareRouter(self.nodes, self.user_partitioner)
        else:
            self.router = router_factory(self.nodes)
        self.network = network if network is not None else NetworkModel()
        #: the ReplicationManager when replication is enabled (attached
        #: by :meth:`attach_replication`); None for single-copy clusters.
        self.replication = None

    def attach_replication(self, replication) -> None:
        """Enable replication: wire the manager into router and store.

        The manager has already registered the store's tables; this hook
        makes the cluster's routing and restart paths replication-aware.
        """
        self.replication = replication
        self.router.attach_replication(replication)

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the cluster."""
        return len(self.nodes)

    # -- placement queries ---------------------------------------------------

    def owner_of_user(self, uid: int) -> int:
        """The node/partition owning this uid's weights."""
        return self.user_partitioner.partition(uid)

    def owner_of_item(self, item_id: object) -> int:
        """The node/partition owning this item's features."""
        return self.item_partitioner.partition(item_id)

    # -- access accounting -----------------------------------------------------

    def charge_user_access(self, serving_node: int, uid: int, size_bytes: int) -> float:
        """Record a user-weight read/write from ``serving_node``; returns
        modeled latency (0 when the serving node owns the user)."""
        return self.network.access(serving_node, self.owner_of_user(uid), size_bytes)

    def charge_item_access(
        self, serving_node: int, item_id: object, size_bytes: int
    ) -> float:
        """Record an item-feature read from ``serving_node``."""
        return self.network.access(serving_node, self.owner_of_item(item_id), size_bytes)

    # -- failure hooks ------------------------------------------------------------

    def fail_node(self, node_id: int) -> None:
        """Take a node down: marks it dead and drops its volatile shards."""
        self._node(node_id).fail()
        self.store.fail_node(node_id)

    def restart_node(self, node_id: int) -> int:
        """Bring a node back: recovers its shards from journals; returns
        the number of journal records replayed.

        The restarted node begins a fresh epoch with zeroed
        :class:`NodeStats`, and the router must observe exactly the
        restarted node object — otherwise post-restart serving counters
        would silently accumulate onto a stale pre-failure entry.
        """
        node = self._node(node_id)
        replayed = self.store.recover_node(node_id)
        previous_epoch = node.epoch
        node.restart()
        node.stats = NodeStats()  # defensive: never carry counters across epochs
        router_view = self.router.nodes[node_id]
        if router_view is not node or router_view.node_id != node_id:
            raise RoutingError(
                f"restarted node {node_id} did not propagate to the router "
                f"(router sees node {router_view.node_id})"
            )
        if node.epoch != previous_epoch + 1 or not router_view.alive:
            raise RoutingError(
                f"restarted node {node_id} is not in a fresh alive epoch"
            )
        if self.replication is not None:
            self.replication.on_node_restart(node_id)
        return replayed

    def _node(self, node_id: int) -> Node:
        if not 0 <= node_id < len(self.nodes):
            raise RoutingError(f"no node {node_id} in a {len(self.nodes)}-node cluster")
        return self.nodes[node_id]

"""Heartbeat failure detector: timeouts, one-shot verdicts, reports."""

from __future__ import annotations

import pytest

from repro.common.clock import SimulatedClock
from repro.common.errors import ReplicationError
from repro.replication import FailureDetector


@pytest.fixture
def clock():
    return SimulatedClock()


@pytest.fixture
def detector(clock):
    return FailureDetector([0, 1, 2], timeout=1.0, clock=clock)


class TestVerdicts:
    def test_rejects_nonpositive_timeout(self, clock):
        with pytest.raises(ReplicationError):
            FailureDetector([0], timeout=0.0, clock=clock)

    def test_fresh_nodes_are_alive(self, detector):
        assert detector.check() == []
        assert detector.dead_nodes() == []

    def test_grace_period_is_one_timeout(self, clock, detector):
        clock.advance(0.9)
        assert detector.check() == []
        clock.advance(0.2)
        assert detector.check() == [0, 1, 2]

    def test_heartbeat_keeps_node_alive(self, clock, detector):
        clock.advance(0.9)
        detector.heartbeat(1)
        clock.advance(0.5)
        assert detector.check() == [0, 2]
        assert detector.is_dead(0) and not detector.is_dead(1)

    def test_death_reported_exactly_once(self, clock, detector):
        clock.advance(2.0)
        assert detector.check() == [0, 1, 2]
        assert detector.check() == []
        assert detector.dead_nodes() == [0, 1, 2]

    def test_heartbeat_revives(self, clock, detector):
        clock.advance(2.0)
        detector.check()
        detector.heartbeat(1)
        assert not detector.is_dead(1)
        assert detector.dead_nodes() == [0, 2]
        # ...and a revived node can die again (a second one-shot verdict).
        clock.advance(2.0)
        assert detector.check() == [1]


class TestFailureReports:
    def test_report_makes_next_check_declare_dead(self, detector):
        """Direct read-failure evidence beats the heartbeat timeout —
        no clock advancement is needed for the verdict."""
        assert detector.report_failure(2) is True
        assert detector.check() == [2]

    def test_report_on_already_dead_node_is_old_news(self, clock, detector):
        clock.advance(2.0)
        detector.check()
        assert detector.report_failure(0) is False


class TestEdgeCases:
    """The corners the chaos ablation leans on: boundary timing, late
    heartbeats against standing verdicts, and concurrent reporters."""

    def test_check_at_exact_timeout_boundary_is_alive(self, clock, detector):
        """Staleness is strict: a heartbeat aged *exactly* ``timeout``
        seconds has not yet expired; one tick past it has."""
        detector.heartbeat(0, now=clock.now())
        assert detector.check(now=clock.now() + 1.0) == []
        assert detector.check(now=clock.now() + 1.0 + 1e-9) == [0, 1, 2]

    def test_heartbeat_after_verdict_clears_it_without_a_new_death(
        self, clock, detector
    ):
        """A heartbeat that arrives *after* the one-shot death verdict
        revives the node: it leaves ``dead_nodes`` immediately and does
        not re-enter a newly-dead list until a full new timeout lapses."""
        clock.advance(2.0)
        assert detector.check() == [0, 1, 2]
        detector.heartbeat(0)  # late heartbeat against a standing verdict
        assert not detector.is_dead(0)
        assert detector.dead_nodes() == [1, 2]
        # No new verdict within the fresh grace period...
        clock.advance(0.9)
        assert detector.check() == []
        # ...and a second one-shot verdict only after it lapses.
        clock.advance(0.2)
        assert detector.check() == [0]

    def test_heartbeat_after_verdict_then_report_is_new_evidence(
        self, clock, detector
    ):
        """Revival resets the report path too: after a late heartbeat,
        a read failure is *new* evidence again, not old news."""
        clock.advance(2.0)
        detector.check()
        assert detector.report_failure(1) is False  # already dead
        detector.heartbeat(1)
        assert detector.report_failure(1) is True  # revived: fresh evidence
        assert detector.check() == [1]

    def test_concurrent_reporters_yield_one_verdict(self, detector):
        """Many threads reporting the same node race harmlessly: the
        next check declares the node dead exactly once, and the death
        never appears in two newly-dead lists."""
        import threading

        barrier = threading.Barrier(8)
        results: list[bool] = []
        lock = threading.Lock()

        def reporter() -> None:
            barrier.wait()
            outcome = detector.report_failure(2)
            with lock:
                results.append(outcome)

        threads = [threading.Thread(target=reporter) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Before any check the node was never in ``_dead``, so every
        # pre-verdict report counts as evidence...
        assert all(results)
        # ...but the verdict itself is still one-shot.
        assert detector.check() == [2]
        assert detector.check() == []
        # Post-verdict reporters see old news.
        assert detector.report_failure(2) is False

    def test_reports_interleaved_with_checks_stay_idempotent(
        self, clock, detector
    ):
        """report -> check -> report -> check settles: one verdict, no
        flapping, regardless of how many reports land in between."""
        assert detector.report_failure(0) is True
        assert detector.check() == [0]
        for _ in range(5):
            assert detector.report_failure(0) is False
        assert detector.check() == []
        assert detector.dead_nodes() == [0]

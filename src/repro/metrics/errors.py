"""Prediction-error measures and confidence intervals."""

from __future__ import annotations

import math

import numpy as np

from repro.common.errors import ValidationError


def squared_error(y_true: float, y_pred: float) -> float:
    """Per-observation squared error — the loss Velox's prototype uses."""
    diff = y_true - y_pred
    return diff * diff


def absolute_error(y_true: float, y_pred: float) -> float:
    """Per-observation absolute error."""
    return abs(y_true - y_pred)


def _paired(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    true_arr = np.asarray(y_true, dtype=float)
    pred_arr = np.asarray(y_pred, dtype=float)
    if true_arr.shape != pred_arr.shape:
        raise ValidationError(
            f"y_true and y_pred must have the same shape, "
            f"got {true_arr.shape} vs {pred_arr.shape}"
        )
    if true_arr.size == 0:
        raise ValidationError("error metrics need at least one observation")
    return true_arr, pred_arr


def rmse(y_true, y_pred) -> float:
    """Root-mean-squared error over paired arrays."""
    true_arr, pred_arr = _paired(y_true, y_pred)
    return float(np.sqrt(np.mean((true_arr - pred_arr) ** 2)))


def mae(y_true, y_pred) -> float:
    """Mean absolute error over paired arrays."""
    true_arr, pred_arr = _paired(y_true, y_pred)
    return float(np.mean(np.abs(true_arr - pred_arr)))


def precision_at_k(relevant: set, ranked_items: list, k: int) -> float:
    """Fraction of the top-k ranked items that are relevant."""
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    if not ranked_items:
        return 0.0
    top = ranked_items[:k]
    return sum(1 for item in top if item in relevant) / len(top)


def ndcg_at_k(relevance_by_item: dict, ranked_items: list, k: int) -> float:
    """Normalized discounted cumulative gain at k.

    ``relevance_by_item`` maps item -> graded relevance (e.g. the true
    rating); items absent from the map count as relevance 0. Returns
    DCG@k normalized by the ideal ordering's DCG@k, in [0, 1]; an empty
    ranking (or all-zero relevance) scores 0.
    """
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    top = ranked_items[:k]
    dcg = sum(
        relevance_by_item.get(item, 0.0) / math.log2(position + 2)
        for position, item in enumerate(top)
    )
    ideal = sorted(relevance_by_item.values(), reverse=True)[:k]
    ideal_dcg = sum(
        value / math.log2(position + 2) for position, value in enumerate(ideal)
    )
    if ideal_dcg == 0.0:
        return 0.0
    return dcg / ideal_dcg


def mean_confidence_interval(samples, confidence: float = 0.95) -> tuple[float, float]:
    """(mean, half-width) of a normal-approximation confidence interval.

    Matches the error bars in the paper's Figures 3 and 4 (95% CIs over
    repeated trials). Uses the z-quantile, adequate for the thousands of
    trials the benchmarks run; a single sample yields half-width 0.
    """
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValidationError("confidence interval needs at least one sample")
    if not 0.0 < confidence < 1.0:
        raise ValidationError(f"confidence must be in (0, 1), got {confidence}")
    mean = float(arr.mean())
    if arr.size == 1:
        return mean, 0.0
    # Inverse normal CDF via Acklam's rational approximation (avoids a
    # scipy dependency in the core library).
    z = _normal_quantile(0.5 + confidence / 2.0)
    half_width = z * float(arr.std(ddof=1)) / math.sqrt(arr.size)
    return mean, half_width


def _normal_quantile(p: float) -> float:
    """Peter Acklam's inverse-normal-CDF approximation (|rel err| < 1.2e-9)."""
    if not 0.0 < p < 1.0:
        raise ValidationError(f"quantile probability must be in (0, 1), got {p}")
    a = (-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00)
    b = (-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    if p <= 1 - p_low:
        q = p - 0.5
        r = q * q
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
            ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1
        )
    q = math.sqrt(-2 * math.log(1 - p))
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
        (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
    )

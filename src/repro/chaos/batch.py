"""Batch-tier worker-kill injection driven by a seeded fault schedule.

The batch scheduler's :class:`~repro.batch.scheduler.FailureInjector`
predates the chaos layer and enumerates faults explicitly (exact
partitions to kill). :class:`ScheduledFailureInjector` keeps that class'
entire API — the scheduler and its tests do not change — but sources
worker kills from a :class:`~repro.chaos.schedule.FaultSchedule` rule on
the ``"batch.worker_kill"`` point, keyed by partition index.

Keyed draws matter here: fork workers consult the injector in a child
process, after ``os.fork``, so nothing mutable can be shared back. A
decision that is a pure function of ``(seed, rule_index, partition)``
answers identically in the child and in the driver, which is what keeps
the driver's :meth:`consume_worker_kill` bookkeeping consistent with the
kill the child actually performed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.batch.scheduler import FailureInjector
from repro.chaos.schedule import FaultSchedule

WORKER_KILL_POINT = "batch.worker_kill"


def scheduled_worker_kills(schedule: FaultSchedule, partitions: int) -> set:
    """The partition indices a schedule kills, resolved eagerly.

    Evaluates every ``batch.worker_kill`` rule against each partition in
    ``range(partitions)`` with the partition index as the decision key.
    Rule fault budgets (``max_faults``) are honoured in partition order;
    time windows are ignored (batch kills are placement decisions, not
    wall-clock events).
    """
    kills: set = set()
    for rule_index, rule in schedule.rules_for(WORKER_KILL_POINT):
        budget = rule.max_faults if rule.max_faults is not None else partitions
        fired = 0
        for partition in range(partitions):
            if fired >= budget:
                break
            uniform, _ = schedule.draw(rule_index, partition)
            if uniform < rule.probability:
                kills.add(partition)
                fired += 1
    return kills


@dataclass
class ScheduledFailureInjector(FailureInjector):
    """A :class:`FailureInjector` whose worker kills come from a schedule.

    Construct with ``from_schedule`` so the kill set is materialized from
    the schedule's deterministic draws::

        injector = ScheduledFailureInjector.from_schedule(
            schedule, partitions=8
        )
        ctx = BatchContext(..., injector=injector)

    Everything else (map/result failures, lost outputs, the consuming
    driver-side APIs) behaves exactly like the base class; the schedule
    is kept only for provenance.
    """

    schedule: FaultSchedule | None = field(default=None, repr=False)

    @classmethod
    def from_schedule(
        cls, schedule: FaultSchedule, partitions: int
    ) -> "ScheduledFailureInjector":
        """Build an injector whose kill set the schedule determines."""
        return cls(
            worker_kills=scheduled_worker_kills(schedule, partitions),
            schedule=schedule,
        )

"""Follower-side partition replicas and the promoted failover view.

A :class:`PartitionReplica` is one follower's copy of one (table,
partition): a :class:`~repro.store.slab.HybridStore` (the same physical
layout the primary uses — columnar slab rows plus a dict for object
values) plus the journal sequence it has applied through. Followers
learn mutations exclusively by **journal shipping** — the primary's
journal records from ``applied_sequence`` onward, applied in order
(object values deep-copied, modeling serialization across the wire, so
a replica never aliases primary state; slab rows are copied into the
follower's own arrays by the install itself). When the primary has
compacted past a replica's ack point the records are gone and catch-up
falls back to a **snapshot transfer**: the primary's full state replaces
the replica wholesale — for slab-backed tables an O(bytes) columnar copy
whose arrays the follower adopts outright.

On primary failure the replica can be **promoted**: it serves reads from
whatever prefix was shipped before the failure (bounded staleness —
``promotion_lag`` records were in the journal but never shipped) and
accepts writes, which it applies locally *and* appends to the durable
journal, keeping the journal the single source of truth. When the
failed node restarts, replaying the full journal reproduces both the
unshipped tail and every failover-era write, in order, so primary and
replicas reconverge.
"""

from __future__ import annotations

import copy
from typing import Iterator

from repro.common.errors import ReplicationError
from repro.store.journal import JournalOp, JournalRecord
from repro.store.slab import HybridExport, HybridStore, SlabRow, SlabSnapshot


def _wire_copy(value: object) -> object:
    """Model serialization of a shipped value across the wire.

    Slab payloads (rows and snapshots) are immutable read-only arrays
    and are *copied by the install that applies them*, so they ship
    as-is; everything else is deep-copied so replicas never alias
    primary state.
    """
    if isinstance(value, (SlabRow, SlabSnapshot)):
        return value
    return copy.deepcopy(value)


class PartitionReplica:
    """One follower's copy of one table partition."""

    def __init__(
        self,
        table_name: str,
        partition_index: int,
        node_id: int,
        value_policy=None,
    ):
        self.table_name = table_name
        self.partition_index = partition_index
        #: the physical node hosting this replica.
        self.node_id = node_id
        #: storage policy shared with the primary partition, so shipped
        #: SlabRow values land in a follower-local slab.
        self.value_policy = value_policy
        self._store = HybridStore(value_policy)
        #: journal records applied so far (next expected sequence).
        self.applied_sequence = 0
        self.promoted = False
        #: records the primary had journaled but never shipped, frozen
        #: at promotion time — the staleness bound for follower reads.
        self.promotion_lag = 0
        self.snapshot_transfers = 0

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: object) -> bool:
        return key in self._store

    @property
    def store(self) -> HybridStore:
        """The replica's physical store (tests compare slabs through it)."""
        return self._store

    # -- journal shipping ----------------------------------------------------

    def apply(self, record: JournalRecord) -> None:
        """Apply one shipped journal record, enforcing sequence order."""
        if record.sequence != self.applied_sequence:
            raise ReplicationError(
                f"replica of {self.table_name}[{self.partition_index}] at "
                f"sequence {self.applied_sequence} got record "
                f"{record.sequence}; journal shipping must be gapless"
            )
        self._apply_op(record.op, record.key, _wire_copy(record.value),
                       record.version)
        self.applied_sequence = record.sequence + 1

    def _apply_op(self, op: JournalOp, key, value, version: int) -> None:
        if op is JournalOp.PUT:
            self._store.set(key, value, version)
        elif op is JournalOp.DELETE:
            self._store.delete(key)
        elif op is JournalOp.TRUNCATE:
            self._store.clear()
        elif op is JournalOp.LOAD:
            self._store.bulk_install(value)

    def install_snapshot(self, state, sequence: int) -> None:
        """Replace the replica wholesale (catch-up past compaction).

        Dict exports are deep-copied as before; slab exports
        (:class:`~repro.store.slab.HybridExport`) carry owned arrays the
        replica adopts outright — the O(bytes) transfer path.
        """
        self._store = HybridStore(self.value_policy)
        if isinstance(state, HybridExport):
            self._store.load_export(state, copy_objects=False)
        else:
            self._store.load_export(state, copy_objects=True)
        self.applied_sequence = sequence
        self.snapshot_transfers += 1

    def lag(self, journal_head: int) -> int:
        """Records the primary has journaled that this replica lacks."""
        return max(0, journal_head - self.applied_sequence)

    def reset(self) -> None:
        """Drop all replica state (the hosting node lost its memory).

        The replica restarts from sequence 0; the next shipping round
        either replays the whole journal or, when the journal has been
        compacted past 0, falls back to a snapshot transfer.
        """
        self._store = HybridStore(self.value_policy)
        self.applied_sequence = 0

    # -- promoted serving ----------------------------------------------------

    def promote(self, journal_head: int) -> int:
        """Become the serving copy; returns the frozen staleness bound."""
        self.promotion_lag = self.lag(journal_head)
        self.promoted = True
        return self.promotion_lag

    def demote(self) -> None:
        """Stop serving (the real primary recovered)."""
        self.promoted = False
        self.promotion_lag = 0

    # -- mapping reads (used by the failover view) ---------------------------

    def get(self, key: object) -> tuple[object, int] | None:
        """``(raw value, version)`` or None — the shipped view of the
        key (slab-resident entries come back as SlabRow wrappers; the
        partition in front decodes them)."""
        return self._store.get(key)

    def keys(self) -> Iterator[object]:
        return iter(self._store.keys())

    def items(self) -> Iterator[tuple[object, object]]:
        return iter(self._store.items_raw())

    def local_put(self, key: object, raw: object) -> int:
        """Apply a failover-era write locally; returns the new version."""
        version = self._store.version(key) + 1
        self._store.set(key, raw, version)
        return version

    def local_install(self, key: object, raw: object, version: int) -> None:
        """Apply a failover-era install at an explicit version."""
        self._store.set(key, raw, version)

    def local_delete(self, key: object) -> bool:
        """Apply a failover-era delete locally."""
        return self._store.delete(key)

    def local_truncate(self) -> None:
        """Apply a failover-era truncate locally."""
        self._store.clear()


class PromotedPartitionView:
    """The failover delegate a failed :class:`~repro.store.Partition`
    routes its operations through.

    Reads serve the promoted replica's shipped state. Writes journal to
    the *durable* journal first (it survives node loss — the Tachyon
    lineage tier), then apply to the replica, so a later ``recover()``
    of the real partition replays failover-era writes after the
    unshipped tail and every copy reconverges. Domain values are routed
    through the table's storage policy exactly as the primary would, so
    journal records written during failover replay identically.
    """

    def __init__(self, replica: PartitionReplica, journal, on_write=None,
                 value_policy=None):
        if not replica.promoted:
            raise ReplicationError(
                f"replica of {replica.table_name}[{replica.partition_index}] "
                "must be promoted before serving"
            )
        self.replica = replica
        self._journal = journal
        self.value_policy = (
            value_policy if value_policy is not None else replica.value_policy
        )
        #: callable(replica) fired after each failover-era mutation.
        self._on_write = on_write

    def _encode(self, key: object, value: object) -> object:
        if self.value_policy is not None:
            row = self.value_policy.encode(key, value)
            if row is not None:
                return SlabRow(row)
        return value

    def get(self, key: object) -> tuple[object, int] | None:
        return self.replica.get(key)

    def __contains__(self, key: object) -> bool:
        return key in self.replica

    def __len__(self) -> int:
        return len(self.replica)

    def keys(self) -> Iterator[object]:
        return self.replica.keys()

    def items(self) -> Iterator[tuple[object, object]]:
        return self.replica.items()

    def put(self, key: object, value: object) -> int:
        stored = self._encode(key, value)
        version = self.replica.local_put(key, stored)
        self._journal.append(JournalOp.PUT, key, _wire_copy(stored), version)
        if self._on_write is not None:
            self._on_write(self.replica)
        return version

    def install(self, key: object, value: object, version: int) -> None:
        if version < 1:
            raise ValueError(f"version must be >= 1, got {version}")
        stored = self._encode(key, value)
        self.replica.local_install(key, _wire_copy(stored), version)
        self._journal.append(JournalOp.PUT, key, _wire_copy(stored), version)
        if self._on_write is not None:
            self._on_write(self.replica)

    def delete(self, key: object) -> bool:
        existed = self.replica.local_delete(key)
        if existed:
            self._journal.append(JournalOp.DELETE, key, None, 0)
            if self._on_write is not None:
                self._on_write(self.replica)
        return existed

    def truncate(self) -> None:
        self.replica.local_truncate()
        self._journal.append(JournalOp.TRUNCATE, None, None, 0)
        if self._on_write is not None:
            self._on_write(self.replica)

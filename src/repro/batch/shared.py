"""Driver-shared state for sparklite jobs: broadcasts and accumulators.

Spark programs ship large read-only values to tasks as *broadcast
variables* and aggregate side-channel statistics through *accumulators*;
the ALS driver uses both patterns (frozen factor matrices per
half-iteration; solver diagnostics). In-process these are thin wrappers,
but they make the intent explicit, catch use-after-unpersist bugs, and
keep job closures free of accidental mutable capture.

Process execution changes the contract. Under the fork executor a task
runs in a forked child, so any mutation it makes to driver objects —
``Accumulator.add``, shuffle-store writes, failure-injector bookkeeping
— lands in the child's copy-on-write memory and would silently vanish
at ``_exit``. The :class:`TaskEffects` capture below closes that hole:
inside a forked worker every such mutation is *also* recorded as a
delta, shipped back to the driver with the task result, and replayed
there (:func:`replay_effects`) in deterministic partition order.

The resulting semantics, which both executors honor:

* **Accumulators** — contributions from forked tasks are collected as
  deltas and merged at the driver after the owning stage completes, in
  partition order. ``merge_fn`` must therefore be associative and
  commutative (the documented Spark contract); driver reads during a
  stage may observe partial totals under the thread executor and
  *no* contributions from still-running forked workers.
* **Broadcasts** — a forked task sees a snapshot of the broadcast value
  as of ``fork()``. Driver-side ``unpersist()`` therefore cannot poison
  in-flight forked tasks (they keep their snapshot); it only affects
  tasks started afterwards. Under the thread executor ``unpersist()``
  is immediately visible, so the driver must only call it between jobs
  — exactly how the ALS loop uses it. A task-side ``unpersist()`` in a
  forked worker is local to that child and never leaks to the driver.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from itertools import count
from threading import RLock

from repro.common.errors import BatchExecutionError


@dataclass
class TaskEffects:
    """Driver-state mutations recorded by one task in a forked worker.

    Shipped back through the result pipe and replayed on the driver by
    :func:`replay_effects`. Every payload must be picklable.
    """

    #: (registry_id, amount) per ``Accumulator.add`` call, in call order.
    accumulator_adds: list = field(default_factory=list)
    #: (shuffle_id, map_partition, buckets) per shuffle-store write.
    shuffle_writes: list = field(default_factory=list)
    #: (shuffle_id, map_partition) per shuffle-store drop.
    shuffle_drops: list = field(default_factory=list)
    #: ("map" | "result" | "lost_output", key) per consumed injector
    #: entry, so retry budgets stay in sync with the driver's injector.
    injector_events: list = field(default_factory=list)


#: Active capture for the *current* task. Only ever set inside a forked
#: worker (which is single-threaded), so a plain module global is safe.
_ACTIVE_EFFECTS: TaskEffects | None = None

#: Driver-side registry used to resolve shipped accumulator deltas back
#: to their live instances. Keyed by a process-global registry id (the
#: per-context ``accumulator_id`` is only unique within one context).
_LIVE_ACCUMULATORS: "weakref.WeakValueDictionary[int, Accumulator]" = (
    weakref.WeakValueDictionary()
)
_REGISTRY_IDS = count()


def begin_effect_capture() -> TaskEffects:
    """Start recording task side effects (called in forked workers)."""
    global _ACTIVE_EFFECTS
    _ACTIVE_EFFECTS = TaskEffects()
    return _ACTIVE_EFFECTS


def end_effect_capture() -> TaskEffects:
    """Stop recording and return what was captured."""
    global _ACTIVE_EFFECTS
    effects, _ACTIVE_EFFECTS = _ACTIVE_EFFECTS, None
    if effects is None:
        raise BatchExecutionError("end_effect_capture without begin")
    return effects


def active_effects() -> TaskEffects | None:
    """The capture for the current task, or None outside forked workers."""
    return _ACTIVE_EFFECTS


def replay_effects(effects: TaskEffects, shuffle_store, injector=None) -> None:
    """Apply one task's captured side effects to driver state.

    Called by the scheduler once per completed forked task, in partition
    order, so accumulator merge order is deterministic (it matches what
    inline execution would have produced).
    """
    for registry_id, amount in effects.accumulator_adds:
        accumulator = _LIVE_ACCUMULATORS.get(registry_id)
        if accumulator is not None:
            accumulator.add(amount)
    for shuffle_id, map_partition, buckets in effects.shuffle_writes:
        shuffle_store.write(shuffle_id, map_partition, buckets)
    for shuffle_id, map_partition in effects.shuffle_drops:
        shuffle_store.drop(shuffle_id, map_partition)
    if injector is not None:
        injector.apply_consumed_events(effects.injector_events)


class Broadcast:
    """A read-only value shared with every task.

    ``unpersist()`` releases the value; any later access raises, which
    surfaces the classic use-after-free of broadcast handles eagerly.
    Forked tasks read a fork-time snapshot (see the module docstring for
    the full executor contract).
    """

    _MISSING = object()

    def __init__(self, broadcast_id: int, value: object):
        self.broadcast_id = broadcast_id
        self._value = value

    @property
    def value(self) -> object:
        """The broadcast value / current accumulator total."""
        if self._value is Broadcast._MISSING:
            raise BatchExecutionError(
                f"broadcast {self.broadcast_id} was unpersisted"
            )
        return self._value

    def unpersist(self) -> None:
        """Release the value; later access raises."""
        self._value = Broadcast._MISSING


class Accumulator:
    """A write-only-from-tasks, read-from-driver aggregate.

    Tasks call ``add``; only the driver should read ``value``. Additions
    are serialized under the threaded scheduler; under the fork executor
    each ``add`` is captured as a delta and merged at the driver when
    the stage's results land (module docstring has the full contract).
    ``merge_fn`` defaults to ``+`` (sums), but any associative,
    commutative function works.
    """

    def __init__(self, accumulator_id: int, zero, merge_fn=None):
        self.accumulator_id = accumulator_id
        self._value = zero
        self._merge = merge_fn if merge_fn is not None else (lambda a, b: a + b)
        self._lock = RLock()
        self._registry_id = next(_REGISTRY_IDS)
        _LIVE_ACCUMULATORS[self._registry_id] = self

    def add(self, amount) -> None:
        """Merge one contribution (called from tasks)."""
        effects = _ACTIVE_EFFECTS
        if effects is not None:
            effects.accumulator_adds.append((self._registry_id, amount))
        with self._lock:
            self._value = self._merge(self._value, amount)

    @property
    def value(self):
        """The broadcast value / current accumulator total."""
        with self._lock:
            return self._value

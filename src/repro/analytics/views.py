"""Incrementally-maintained rollups over the observation stream.

Each view keeps one ``{key: (count, label_sum)}`` accumulator — enough
to answer every supported aggregate (count/sum/mean) exactly — plus a
**high-watermark offset**: a view at watermark W has folded in precisely
the log prefix ``[0, W)``, because maintenance runs inline from
``ObservationLog.append`` in offset order. That is what makes integrity
checking an equality test rather than a tolerance test: replaying the
same prefix through the same fold produces bit-identical floats.

Three concrete views mirror the dimensions the query model can filter
or group on:

* :class:`UserRollup` — keyed by ``uid``,
* :class:`ItemRollup` — keyed by ``item_id``,
* :class:`WindowRollup` — keyed by tumbling time bucket
  ``int(timestamp // width)``, maintained through the streaming layer's
  :class:`~repro.streaming.operators.TumblingWindowAggregate` (closed
  windows merge into a compact dict; the open tail window is read from
  the operator at query time, so live queries see every record).

Views also self-describe to the planner: ``covers(query)`` says whether
this view can answer a query *exactly*, and ``cost(query)`` estimates
how many materialized entries the answer touches — the numbers the
cost-based router compares against a log scan.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod

from repro.analytics.query import AnalyticsQuery, finalize
from repro.common.errors import ValidationError
from repro.streaming.operators import TumblingWindowAggregate


class RollupView(ABC):
    """One incrementally-maintained (count, sum) rollup."""

    #: the query dimension this view is keyed by ("uid"/"item"/"window").
    dimension: str

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self.high_watermark = 0

    # -- maintenance ---------------------------------------------------------

    def apply(self, offset: int, observation) -> None:
        """Fold one appended record in; advances the watermark to
        ``offset + 1``. Called inline from the log's append listener."""
        with self._lock:
            self._fold(observation)
            self.high_watermark = offset + 1

    @abstractmethod
    def _fold(self, observation) -> None:
        """Accumulate one record (lock held)."""

    @abstractmethod
    def key_of(self, observation):
        """The group key this view files an observation under (the
        integrity checker rebuilds reference state through this)."""

    @abstractmethod
    def _state(self) -> dict:
        """The full ``{key: (count, sum)}`` view state (lock held)."""

    # -- introspection -------------------------------------------------------

    def snapshot(self) -> tuple[dict, int]:
        """A consistent ``(state, high_watermark)`` copy for integrity
        replay: the state is exactly the fold of ``log[0:watermark)``."""
        with self._lock:
            return dict(self._state()), self.high_watermark

    @property
    def key_count(self) -> int:
        """Distinct keys currently materialized."""
        with self._lock:
            return len(self._state())

    # -- planner interface ---------------------------------------------------

    @abstractmethod
    def covers(self, query: AnalyticsQuery) -> bool:
        """Whether this view answers the query exactly."""

    @abstractmethod
    def cost(self, query: AnalyticsQuery) -> float:
        """Estimated materialized entries touched (valid when covered)."""

    # -- answering -----------------------------------------------------------

    def answer(self, query: AnalyticsQuery):
        """Execute a covered query; returns ``(value, groups)``."""
        if not self.covers(query):
            raise ValidationError(
                f"view {self.name!r} does not cover query {query!r}"
            )
        with self._lock:
            entries = self._select(query)
            if query.group_by is not None:
                groups = {
                    key: finalize(query.agg, count, total)
                    for key, (count, total) in entries
                }
                return None, groups
            count = 0
            total = 0.0
            for _key, (c, t) in entries:
                count += c
                total += t
            return finalize(query.agg, count, total), {}

    def _select(self, query: AnalyticsQuery):
        """The (key, (count, sum)) entries the query touches (lock held)."""
        return list(self._state().items())


class _KeyedRollup(RollupView):
    """Shared machinery for views keyed directly by a record field."""

    def __init__(self, name: str, dimension: str):
        super().__init__(name)
        self.dimension = dimension
        self._acc: dict[int, tuple[int, float]] = {}

    def _fold(self, observation) -> None:
        key = self.key_of(observation)
        count, total = self._acc.get(key, (0, 0.0))
        self._acc[key] = (count + 1, total + observation.label)

    def _state(self) -> dict:
        return self._acc

    def _filter_key(self, query: AnalyticsQuery):
        """The exact-key filter value this view understands, if set."""
        return query.uid if self.dimension == "uid" else query.item_id

    def covers(self, query: AnalyticsQuery) -> bool:
        other_filter = query.item_id if self.dimension == "uid" else query.uid
        return (
            other_filter is None
            and not query.time_filtered
            and query.group_by in (None, self.dimension)
        )

    def cost(self, query: AnalyticsQuery) -> float:
        if self._filter_key(query) is not None:
            return 1.0
        return float(max(1, self.key_count))

    def _select(self, query: AnalyticsQuery):
        key = self._filter_key(query)
        if key is not None:
            entry = self._acc.get(key)
            return [(key, entry)] if entry is not None else []
        return list(self._acc.items())


class UserRollup(_KeyedRollup):
    """Per-user count/sum/mean over labels."""

    def __init__(self, name: str = "user"):
        super().__init__(name, "uid")

    def key_of(self, observation) -> int:
        return observation.uid


class ItemRollup(_KeyedRollup):
    """Per-item count/sum/mean over labels."""

    def __init__(self, name: str = "item"):
        super().__init__(name, "item")

    def key_of(self, observation) -> int:
        return observation.item_id


class WindowRollup(RollupView):
    """Per-time-window rollup over tumbling buckets of width ``width``.

    Maintenance runs through the streaming layer's
    :class:`TumblingWindowAggregate`: each appended record is processed
    as a one-record micro-batch; windows that close (a bucket reaching
    ``width`` records — exactly one bucket's worth under the canonical
    ``timestamp = offset`` stamping) merge into the compact ``_closed``
    dict. Queries read ``_closed`` plus the operator's still-open
    windows, so the partially-filled tail bucket is always visible. A
    key that re-opens after closing (out-of-order timestamps) merges
    additively, so per-bucket aggregates stay exact regardless of
    arrival order.
    """

    dimension = "window"

    def __init__(self, width: int, name: str = "window"):
        if width < 1:
            raise ValidationError(f"window width must be >= 1, got {width}")
        super().__init__(name)
        self.width = int(width)
        self._closed: dict[int, tuple[int, float]] = {}
        self._op = TumblingWindowAggregate(
            key_fn=self.key_of,
            zero=(0, 0.0),
            add=lambda acc, obs: (acc[0] + 1, acc[1] + obs.label),
            window_size=self.width,
        )

    def key_of(self, observation) -> int:
        return int(observation.timestamp // self.width)

    def _fold(self, observation) -> None:
        for key, (count, total) in self._op.process([observation]):
            have_count, have_total = self._closed.get(key, (0, 0.0))
            self._closed[key] = (have_count + count, have_total + total)

    def _state(self) -> dict:
        merged = dict(self._closed)
        for key, ((count, total), _n) in self._op.open_windows().items():
            have_count, have_total = merged.get(key, (0, 0.0))
            merged[key] = (have_count + count, have_total + total)
        return merged

    def _bucket_range(self, query: AnalyticsQuery) -> tuple[int | None, int | None]:
        lo = None if query.time_start is None else int(query.time_start // self.width)
        hi = None if query.time_end is None else int(query.time_end // self.width)
        return lo, hi

    def covers(self, query: AnalyticsQuery) -> bool:
        if query.uid is not None or query.item_id is not None:
            return False
        if query.group_by not in (None, "window"):
            return False
        aligned = (
            query.time_start is None or query.time_start % self.width == 0
        ) and (query.time_end is None or query.time_end % self.width == 0)
        return aligned

    def cost(self, query: AnalyticsQuery) -> float:
        lo, hi = self._bucket_range(query)
        if lo is not None and hi is not None:
            return float(max(1, hi - lo))
        return float(max(1, self.key_count))

    def _select(self, query: AnalyticsQuery):
        lo, hi = self._bucket_range(query)
        return [
            (key, entry)
            for key, entry in self._state().items()
            if (lo is None or key >= lo) and (hi is None or key < hi)
        ]

"""Partitioners: range validity, determinism, equality."""

import pytest

from repro.cluster import HashPartitioner, ModuloPartitioner, RangePartitioner
from repro.common.errors import PartitionError


class TestHashPartitioner:
    def test_in_range(self):
        part = HashPartitioner(5)
        for key in list(range(100)) + ["a", "b", ("t", 1)]:
            assert 0 <= part.partition(key) < 5

    def test_deterministic(self):
        a, b = HashPartitioner(7), HashPartitioner(7)
        assert all(a.partition(k) == b.partition(k) for k in range(50))

    def test_roughly_balanced(self):
        part = HashPartitioner(4)
        counts = [0] * 4
        for key in range(1000):
            counts[part.partition(key)] += 1
        assert min(counts) > 150

    def test_callable(self):
        part = HashPartitioner(3)
        assert part("k") == part.partition("k")

    def test_invalid_count(self):
        with pytest.raises(PartitionError):
            HashPartitioner(0)


class TestModuloPartitioner:
    def test_transparent_placement(self):
        part = ModuloPartitioner(4)
        assert part.partition(17) == 1
        assert part.partition(4) == 0

    def test_rejects_non_integers(self):
        with pytest.raises(PartitionError):
            ModuloPartitioner(4).partition("user-1")

    def test_equality(self):
        assert ModuloPartitioner(4) == ModuloPartitioner(4)
        assert ModuloPartitioner(4) != ModuloPartitioner(5)
        assert ModuloPartitioner(4) != HashPartitioner(4)


class TestRangePartitioner:
    def test_bucket_assignment(self):
        part = RangePartitioner([10, 20])
        assert part.num_partitions == 3
        assert part.partition(5) == 0
        assert part.partition(10) == 0
        assert part.partition(15) == 1
        assert part.partition(20) == 1
        assert part.partition(99) == 2

    def test_unsorted_boundaries_rejected(self):
        with pytest.raises(PartitionError):
            RangePartitioner([20, 10])

    def test_empty_boundaries_single_bucket(self):
        part = RangePartitioner([])
        assert part.num_partitions == 1
        assert part.partition(123) == 0

"""Matrix factorization as a Velox model (the paper's running example).

The latent-factor model of Section 2 is expressed in the generalized
linear family by materializing each item's feature vector:

    f(i, θ) = [ x_i , b_i , 1.0 ]

where ``x_i`` is item i's latent factor and ``b_i`` its bias. A user's
weight vector has the shape ``w_u = [ latent weights , item-bias
multiplier ~ 1 , (mu + b_u) ]`` so ``w_u^T f(i)`` reproduces
``mu + b_u + b_i + w_u . x_i``. The global mean ``mu`` rides in the
user-bias slot's prior rather than in the features: keeping the feature
entries zero-centered keeps the per-user online ridge well conditioned
(a ``mu + b_i`` feature would be nearly collinear with the constant
slot), and the prior pins the bias-multiplier at 1 so L2 regularization
does not fight the structure.

``features`` is a **materialized** lookup (θ is the item-feature table);
retraining recomputes θ and the user weights with ALS on the batch
substrate (paper Section 4.2's offline phase).
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ItemNotFoundError, ValidationError
from repro.core.model import VeloxModel


class MatrixFactorizationModel(VeloxModel):
    """Personalized latent-factor model with materialized item features.

    Args:
        name: Registry name.
        item_factors: ``(num_items, rank)`` latent factor matrix.
        item_bias: ``(num_items,)`` per-item bias.
        global_mean: The corpus mean rating ``mu``.
        version: Model version (bumped by retraining).

    The feature dimension is ``rank + 2`` (factors, intercept slot,
    user-bias slot).
    """

    materialized = True

    def __init__(
        self,
        name: str,
        item_factors: np.ndarray,
        item_bias: np.ndarray | None = None,
        global_mean: float = 0.0,
        version: int = 0,
    ):
        factors = np.asarray(item_factors, dtype=float)
        if factors.ndim != 2:
            raise ValidationError(
                f"item_factors must be 2-D (num_items, rank), got {factors.shape}"
            )
        num_items, rank = factors.shape
        bias = (
            np.zeros(num_items) if item_bias is None else np.asarray(item_bias, float)
        )
        if bias.shape != (num_items,):
            raise ValidationError(
                f"item_bias must have shape ({num_items},), got {bias.shape}"
            )
        super().__init__(name, dimension=rank + 2, version=version)
        self.item_factors = factors
        self.item_bias = bias
        self.global_mean = float(global_mean)
        self.rank = rank
        self.num_items = num_items

    # -- feature function ---------------------------------------------------

    def features(self, x: object) -> np.ndarray:
        """Materialized lookup: ``x`` is an item id."""
        item_id = self._check_item(x)
        return np.concatenate(
            [
                self.item_factors[item_id],
                [self.item_bias[item_id]],
                [1.0],
            ]
        )

    def _check_item(self, x: object) -> int:
        if not isinstance(x, (int, np.integer)):
            raise ValidationError(
                f"materialized model {self.name!r} expects item ids, got {x!r}"
            )
        item_id = int(x)
        if not 0 <= item_id < self.num_items:
            raise ItemNotFoundError(item_id)
        return item_id

    # -- priors ---------------------------------------------------------------

    def prior_mean(self) -> np.ndarray:
        """Pin the item-bias multiplier at 1 and the user-bias slot at
        the global mean; latent weights default to 0."""
        prior = np.zeros(self.dimension)
        prior[self.rank] = 1.0
        prior[self.rank + 1] = self.global_mean
        return prior

    def initial_user_weights(self) -> np.ndarray:
        """New users start at the prior: predict the global/item mean."""
        return self.prior_mean()

    # -- retraining -------------------------------------------------------------

    def retrain(self, batch_context, observations, user_weights: dict):
        """Full offline retrain with ALS on the batch substrate.

        Returns ``(new_model, new_user_weights)`` where the new model has
        ``version + 1`` and new user weights are in this model's weight
        layout (latent weights, intercept multiplier, user bias).
        """
        from repro.core.offline import als_train

        ratings = [(ob.uid, ob.item_id, ob.label) for ob in observations]
        if not ratings:
            raise ValidationError(
                f"cannot retrain model {self.name!r} with no observations"
            )
        result = als_train(
            batch_context,
            ratings,
            rank=self.rank,
            num_items=self.num_items,
        )
        new_model = MatrixFactorizationModel(
            name=self.name,
            item_factors=result.item_factors,
            item_bias=result.item_bias,
            global_mean=result.global_mean,
            version=self.version + 1,
        )
        # Pack every user's serving vector [latent, 1, mu + bias] in one
        # vectorized concatenate; the ArrayMapping keeps dict-style
        # access while the manager's swap consumes the matrix directly.
        from repro.store.slab import ArrayMapping

        ids, latents = result.user_factors.arrays()
        _bias_ids, biases = result.user_bias.arrays()
        n = len(ids)
        matrix = np.concatenate(
            [
                np.asarray(latents, dtype=float),
                np.ones((n, 1)),
                new_model.global_mean + np.asarray(biases, dtype=float)[:, None],
            ],
            axis=1,
        )
        return new_model, ArrayMapping(ids, matrix)

    # -- weight layout helpers ------------------------------------------------

    def pack_user_weights(self, latent: np.ndarray, user_bias: float) -> np.ndarray:
        """Assemble a serving weight vector from ALS outputs."""
        latent = np.asarray(latent, dtype=float)
        if latent.shape != (self.rank,):
            raise ValidationError(
                f"latent weights must have shape ({self.rank},), got {latent.shape}"
            )
        return np.concatenate(
            [latent, [1.0], [self.global_mean + float(user_bias)]]
        )

    def unpack_user_weights(self, weights: np.ndarray) -> tuple[np.ndarray, float]:
        """Split a serving weight vector into (latent factors, user bias)."""
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (self.dimension,):
            raise ValidationError(
                f"weights must have shape ({self.dimension},), got {weights.shape}"
            )
        return weights[: self.rank].copy(), float(weights[-1] - self.global_mean)

    def score(self, weights: np.ndarray, item_id: int) -> float:
        """Convenience: ``w^T f(item)``."""
        return float(np.asarray(weights, float) @ self.features(item_id))

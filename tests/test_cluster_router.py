"""Routers: locality, failover, baselines."""

import pytest

from repro.cluster import (
    ModuloPartitioner,
    Node,
    RandomRouter,
    RoundRobinRouter,
    UserAwareRouter,
)
from repro.common.errors import RoutingError


def make_nodes(n: int) -> list[Node]:
    return [Node(i) for i in range(n)]


class TestUserAwareRouter:
    def test_routes_to_owner(self):
        nodes = make_nodes(4)
        router = UserAwareRouter(nodes, ModuloPartitioner(4))
        for uid in range(40):
            assert router.route(uid).node_id == uid % 4

    def test_failover_to_alive_node(self):
        nodes = make_nodes(3)
        router = UserAwareRouter(nodes, ModuloPartitioner(3))
        nodes[1].fail()
        chosen = router.route(1)
        assert chosen.alive
        assert chosen.node_id != 1

    def test_all_dead_raises(self):
        nodes = make_nodes(2)
        router = UserAwareRouter(nodes, ModuloPartitioner(2))
        for node in nodes:
            node.fail()
        with pytest.raises(RoutingError):
            router.route(0)

    def test_partitioner_node_mismatch_rejected(self):
        with pytest.raises(RoutingError):
            UserAwareRouter(make_nodes(3), ModuloPartitioner(4))

    def test_empty_nodes_rejected(self):
        with pytest.raises(RoutingError):
            UserAwareRouter([], ModuloPartitioner(1))


class TestRandomRouter:
    def test_covers_all_nodes(self):
        router = RandomRouter(make_nodes(4), rng=1)
        seen = {router.route(0).node_id for _ in range(200)}
        assert seen == {0, 1, 2, 3}

    def test_skips_dead_nodes(self):
        nodes = make_nodes(3)
        nodes[0].fail()
        router = RandomRouter(nodes, rng=2)
        for _ in range(50):
            assert router.route(0).node_id != 0

    def test_deterministic_given_seed(self):
        a = [RandomRouter(make_nodes(4), rng=7).route(0).node_id for _ in range(1)]
        b = [RandomRouter(make_nodes(4), rng=7).route(0).node_id for _ in range(1)]
        assert a == b


class TestRoundRobinRouter:
    def test_cycles(self):
        router = RoundRobinRouter(make_nodes(3))
        ids = [router.route(99).node_id for _ in range(6)]
        assert ids == [0, 1, 2, 0, 1, 2]

    def test_skips_dead(self):
        nodes = make_nodes(2)
        nodes[0].fail()
        router = RoundRobinRouter(nodes)
        assert all(router.route(0).node_id == 1 for _ in range(4))


class TestNode:
    def test_restart_resets_stats(self):
        node = Node(0)
        node.stats.requests_served = 5
        node.fail()
        assert not node.alive
        node.restart()
        assert node.alive
        assert node.stats.requests_served == 0

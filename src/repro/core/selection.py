"""Dynamic model selection: multiple models, adaptively weighted.

The paper's abstract promises "lightweight online model maintenance and
selection (i.e., dynamic weighting)", and Section 8 names "multi-armed
bandit (i.e., multiple model) techniques ... including their dynamic
updates" as the next step. This module implements that layer:

* :class:`HedgeSelector` — full-information exponential weighting: every
  observation scores *all* candidate models (each one's loss is
  computable from the shared label), and weights decay exponentially in
  cumulative loss. The right tool when per-model predictions are cheap.
* :class:`Exp3Selector` — adversarial bandit weighting: only the model
  that actually served the request is charged, with importance
  weighting. The right tool when scoring every model is too expensive.
* :class:`EpsilonGreedySelector` — pick the empirically-best model,
  explore uniformly with probability epsilon.

Selectors can be **global** (one weight vector for the whole service) or
**per-user** (each uid learns its own mixture) via
:class:`SelectorScope`.

:class:`EnsembleRouter` binds a selector to a set of deployed models:
``predict`` serves either the weighted-average score (Hedge) or the
sampled model's score (Exp3/epsilon), and ``record_feedback`` closes the
loop from ``observe``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigError, ValidationError
from repro.common.rng import as_generator


class ModelSelector(ABC):
    """Maintains a probability distribution over ``model_names``."""

    def __init__(self, model_names: list[str]):
        if not model_names:
            raise ValidationError("selector needs at least one model")
        if len(set(model_names)) != len(model_names):
            raise ValidationError(f"duplicate model names: {model_names}")
        self.model_names = list(model_names)

    @abstractmethod
    def weights(self) -> dict[str, float]:
        """Current normalized model weights (sum to 1)."""

    @abstractmethod
    def choose(self) -> str:
        """Sample/select one model to serve the next request."""

    @abstractmethod
    def update(self, losses: dict[str, float], served: str | None = None) -> None:
        """Incorporate observed per-model losses.

        ``losses`` maps model name to that model's loss on the latest
        observation. Full-information selectors use every entry;
        bandit selectors use only ``losses[served]``.
        """

    def _check_losses(self, losses: dict[str, float]) -> None:
        for name, loss in losses.items():
            if name not in self.model_names:
                raise ValidationError(f"unknown model {name!r} in losses")
            if not np.isfinite(loss) or loss < 0:
                raise ValidationError(
                    f"loss for {name!r} must be finite and >= 0, got {loss}"
                )


class HedgeSelector(ModelSelector):
    """Multiplicative-weights (Hedge / exponential weighting).

    ``w_m ∝ exp(-eta * discounted_loss_m)``. Losses are squashed through
    ``loss_scale`` so the learning rate is interpretable across label
    scales. With ``decay = 1`` this is classic Hedge (vanishing regret
    against the best fixed model); ``decay < 1`` exponentially forgets
    old losses so the selector tracks a *changing* best model — the
    "dynamic updates" the paper's Section 8 asks for.
    """

    def __init__(
        self,
        model_names: list[str],
        eta: float = 0.2,
        loss_scale: float = 1.0,
        decay: float = 1.0,
    ):
        super().__init__(model_names)
        if eta <= 0:
            raise ConfigError(f"eta must be > 0, got {eta}")
        if loss_scale <= 0:
            raise ConfigError(f"loss_scale must be > 0, got {loss_scale}")
        if not 0.0 < decay <= 1.0:
            raise ConfigError(f"decay must be in (0, 1], got {decay}")
        self.eta = eta
        self.loss_scale = loss_scale
        self.decay = decay
        self._log_weights = {name: 0.0 for name in model_names}

    def weights(self) -> dict[str, float]:
        """Current normalized model weights (sum to 1)."""
        logs = np.array([self._log_weights[n] for n in self.model_names])
        logs -= logs.max()  # stabilize
        raw = np.exp(logs)
        normalized = raw / raw.sum()
        return dict(zip(self.model_names, normalized.tolist()))

    def choose(self) -> str:
        """Select one model to serve the next request."""
        weights = self.weights()
        return max(weights, key=weights.get)

    def update(self, losses: dict[str, float], served: str | None = None) -> None:
        """Incorporate observed per-model losses."""
        self._check_losses(losses)
        if self.decay < 1.0:
            for name in self._log_weights:
                self._log_weights[name] *= self.decay
        for name, loss in losses.items():
            self._log_weights[name] -= self.eta * loss / self.loss_scale


class Exp3Selector(ModelSelector):
    """EXP3: bandit-feedback exponential weighting.

    Only the served model's loss is observed; it is importance-weighted
    by the probability with which that model was chosen, keeping the
    weight updates unbiased. ``gamma`` mixes in uniform exploration.
    """

    def __init__(
        self,
        model_names: list[str],
        gamma: float = 0.1,
        eta: float = 0.1,
        loss_scale: float = 1.0,
        decay: float = 1.0,
        rng=None,
    ):
        super().__init__(model_names)
        if not 0.0 < gamma <= 1.0:
            raise ConfigError(f"gamma must be in (0, 1], got {gamma}")
        if eta <= 0:
            raise ConfigError(f"eta must be > 0, got {eta}")
        if loss_scale <= 0:
            raise ConfigError(f"loss_scale must be > 0, got {loss_scale}")
        if not 0.0 < decay <= 1.0:
            raise ConfigError(f"decay must be in (0, 1], got {decay}")
        self.gamma = gamma
        self.eta = eta
        self.loss_scale = loss_scale
        self.decay = decay
        self._log_weights = {name: 0.0 for name in model_names}
        self._rng = as_generator(rng)

    def weights(self) -> dict[str, float]:
        """Current normalized model weights (sum to 1)."""
        logs = np.array([self._log_weights[n] for n in self.model_names])
        logs -= logs.max()
        raw = np.exp(logs)
        exp_weights = raw / raw.sum()
        uniform = 1.0 / len(self.model_names)
        mixed = (1 - self.gamma) * exp_weights + self.gamma * uniform
        return dict(zip(self.model_names, mixed.tolist()))

    def choose(self) -> str:
        """Select one model to serve the next request."""
        weights = self.weights()
        names = self.model_names
        probs = np.array([weights[n] for n in names])
        return names[int(self._rng.choice(len(names), p=probs / probs.sum()))]

    def update(self, losses: dict[str, float], served: str | None = None) -> None:
        """Incorporate observed per-model losses."""
        self._check_losses(losses)
        if served is None:
            raise ValidationError("Exp3 requires the served model name")
        if served not in self.model_names:
            raise ValidationError(f"unknown served model {served!r}")
        if served not in losses:
            raise ValidationError(f"losses must include the served model {served!r}")
        if self.decay < 1.0:
            for name in self._log_weights:
                self._log_weights[name] *= self.decay
        probability = self.weights()[served]
        estimate = (losses[served] / self.loss_scale) / max(probability, 1e-12)
        self._log_weights[served] -= self.eta * estimate


class EpsilonGreedySelector(ModelSelector):
    """Track mean loss per model; serve the best, explore with prob. eps."""

    def __init__(self, model_names: list[str], epsilon: float = 0.1, rng=None):
        super().__init__(model_names)
        if not 0.0 <= epsilon <= 1.0:
            raise ConfigError(f"epsilon must be in [0, 1], got {epsilon}")
        self.epsilon = epsilon
        self._rng = as_generator(rng)
        self._loss_sums = {name: 0.0 for name in model_names}
        self._counts = {name: 0 for name in model_names}

    def mean_loss(self, name: str) -> float:
        """Empirical mean loss of one model (0 when untried)."""
        if self._counts[name] == 0:
            return 0.0  # optimistic: untried models look attractive
        return self._loss_sums[name] / self._counts[name]

    def weights(self) -> dict[str, float]:
        """Current normalized model weights (sum to 1)."""
        best = self.choose_greedy()
        uniform = self.epsilon / len(self.model_names)
        return {
            name: (1 - self.epsilon) * (1.0 if name == best else 0.0) + uniform
            for name in self.model_names
        }

    def choose_greedy(self) -> str:
        """The model with the lowest empirical mean loss."""
        return min(self.model_names, key=self.mean_loss)

    def choose(self) -> str:
        """Select one model to serve the next request."""
        if self._rng.random() < self.epsilon:
            return self.model_names[int(self._rng.integers(len(self.model_names)))]
        return self.choose_greedy()

    def update(self, losses: dict[str, float], served: str | None = None) -> None:
        """Incorporate observed per-model losses."""
        self._check_losses(losses)
        targets = losses if served is None else {served: losses[served]}
        for name, loss in targets.items():
            self._loss_sums[name] += loss
            self._counts[name] += 1


@dataclass(frozen=True)
class EnsemblePrediction:
    """A multi-model prediction: the blended score, the per-model scores,
    and the model that would serve a single-model request."""

    score: float
    per_model: dict[str, float]
    chosen_model: str
    weights: dict[str, float]


class SelectorScope:
    """Per-user or global selector instances behind one interface."""

    def __init__(self, factory, per_user: bool = False):
        self._factory = factory
        self.per_user = per_user
        self._global = factory() if not per_user else None
        self._per_user: dict[int, ModelSelector] = {}

    def for_user(self, uid: int) -> ModelSelector:
        """The selector instance scoped to this uid."""
        if not self.per_user:
            return self._global
        selector = self._per_user.get(uid)
        if selector is None:
            selector = self._factory()
            self._per_user[uid] = selector
        return selector


class EnsembleRouter:
    """Serves predictions from a dynamically weighted set of models.

    Wraps a deployed :class:`~repro.core.velox.Velox` (or anything with
    its ``predict_detailed`` / ``observe`` surface) and a selector.
    ``predict`` blends per-model scores by the current weights;
    ``observe`` forwards feedback to every model's online learner and to
    the selector.
    """

    def __init__(self, velox, model_names: list[str], scope: SelectorScope):
        for name in model_names:
            if name not in velox.registry:
                raise ValidationError(f"model {name!r} is not deployed")
        self.velox = velox
        self.model_names = list(model_names)
        self.scope = scope

    def predict(self, uid: int, inputs: dict[str, object]) -> EnsemblePrediction:
        """Blend predictions for one logical item.

        ``inputs`` maps model name to that model's input representation
        (models may featurize the same item differently — e.g. an item
        id for the MF model, a raw vector for the linear model).
        """
        missing = [n for n in self.model_names if n not in inputs]
        if missing:
            raise ValidationError(f"inputs missing for models {missing}")
        selector = self.scope.for_user(uid)
        weights = selector.weights()
        per_model = {
            name: self.velox.predict_detailed(name, uid, inputs[name]).score
            for name in self.model_names
        }
        blended = sum(weights[name] * per_model[name] for name in self.model_names)
        return EnsemblePrediction(
            score=float(blended),
            per_model=per_model,
            chosen_model=selector.choose(),
            weights=weights,
        )

    def observe(
        self, uid: int, inputs: dict[str, object], label: float, served: str | None = None
    ) -> dict[str, float]:
        """Feed one labelled observation to every model and the selector.

        Returns per-model losses (pre-update). With ``served`` given, a
        bandit selector is charged only for that model.
        """
        losses: dict[str, float] = {}
        for name in self.model_names:
            result = self.velox.observe(
                uid=uid, x=inputs[name], y=label, model_name=name
            )
            losses[name] = result.loss
        self.scope.for_user(uid).update(losses, served=served)
        return losses

"""Shuffle machinery for sparklite.

A shuffle moves key-value records from the M partitions of a map-side
dataset into the R partitions of a reduce-side dataset. Map tasks write
one bucket per reduce partition into the :class:`ShuffleStore`; reduce
tasks fetch their bucket from every map output. A missing map output at
fetch time raises :class:`ShuffleFetchError`, which the DAG scheduler
handles by recomputing the lost map task — sparklite's version of
Spark's lineage-based fault tolerance.
"""

from __future__ import annotations

from threading import RLock

from repro.common.errors import BatchExecutionError
from repro.common.rng import stable_hash
from repro.batch.shared import active_effects


class ShuffleFetchError(BatchExecutionError):
    """A reduce task could not find a map task's shuffle output."""

    def __init__(self, shuffle_id: int, map_partition: int):
        self.shuffle_id = shuffle_id
        self.map_partition = map_partition
        super().__init__(
            f"shuffle {shuffle_id}: output of map partition "
            f"{map_partition} is missing"
        )


def hash_partitioner(num_partitions: int):
    """Default shuffle partitioner: stable hash of the key."""
    if num_partitions < 1:
        raise ValueError(f"num_partitions must be >= 1, got {num_partitions}")

    def partition_for(key: object) -> int:
        return stable_hash(key) % num_partitions

    return partition_for


class ShuffleStore:
    """In-memory shuffle output storage, keyed by (shuffle_id, map_partition).

    Each entry is a list of R buckets, bucket r holding the (key, value)
    records destined for reduce partition r.
    """

    def __init__(self):
        self._outputs: dict[tuple[int, int], list[list]] = {}
        self._lock = RLock()
        self.records_written = 0

    def write(self, shuffle_id: int, map_partition: int, buckets: list[list]) -> None:
        """Store one map task's buckets.

        Inside a forked worker the write also lands in the task's effect
        capture, so the driver can replay it into *its* store — a map
        output written only to a child's copy-on-write memory would
        otherwise vanish when the worker exits.
        """
        effects = active_effects()
        if effects is not None:
            effects.shuffle_writes.append((shuffle_id, map_partition, buckets))
        with self._lock:
            self._outputs[(shuffle_id, map_partition)] = buckets
            self.records_written += sum(len(b) for b in buckets)

    def has_output(self, shuffle_id: int, map_partition: int) -> bool:
        """Whether a map task's output is present."""
        with self._lock:
            return (shuffle_id, map_partition) in self._outputs

    def fetch(self, shuffle_id: int, map_partition: int, reduce_partition: int) -> list:
        """One reduce partition's bucket from one map output."""
        with self._lock:
            try:
                buckets = self._outputs[(shuffle_id, map_partition)]
            except KeyError:
                raise ShuffleFetchError(shuffle_id, map_partition) from None
            return buckets[reduce_partition]

    def drop(self, shuffle_id: int, map_partition: int) -> bool:
        """Discard one map output (used by fault-injection tests)."""
        effects = active_effects()
        if effects is not None:
            effects.shuffle_drops.append((shuffle_id, map_partition))
        with self._lock:
            return self._outputs.pop((shuffle_id, map_partition), None) is not None

    def drop_shuffle(self, shuffle_id: int) -> int:
        """Discard every output of one shuffle; returns count dropped."""
        with self._lock:
            doomed = [k for k in self._outputs if k[0] == shuffle_id]
            for k in doomed:
                del self._outputs[k]
            return len(doomed)

    def clear(self) -> None:
        """Drop every shuffle output."""
        with self._lock:
            self._outputs.clear()

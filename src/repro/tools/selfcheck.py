"""Install self-check: run the whole lifecycle on a tiny corpus.

``python -m repro.tools.selfcheck`` builds a small deployment, drives
one full train → serve → observe → retrain → rollback loop across every
subsystem, validates the invariants along the way, and prints the
deployment report. Exit code 0 means the installation works end to end.
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro import Velox, VeloxConfig
from repro.batch import BatchContext
from repro.core import reporting
from repro.core.models import MatrixFactorizationModel
from repro.core.offline import als_train
from repro.data import SynthLensConfig, generate_synthlens, paper_protocol_split
from repro.metrics import rmse
from repro.store import Observation


def run_selfcheck(verbose: bool = True) -> dict:
    """Execute the lifecycle; returns the measured summary dict.

    Raises on any invariant violation — callers treat completion as a
    healthy install.
    """
    started = time.perf_counter()

    def say(message: str) -> None:
        """Print progress when verbose."""
        if verbose:
            print(message)

    say("1/6 generating corpus ...")
    lens = generate_synthlens(
        SynthLensConfig(
            num_users=80, num_items=120, rank=5, ratings_per_user_mean=25,
            min_ratings_per_user=18, seed=1,
        )
    )
    split = paper_protocol_split(lens.ratings)

    say("2/6 offline training on the batch substrate ...")
    als = als_train(
        BatchContext(default_parallelism=2),
        [(r.uid, r.item_id, r.rating) for r in split.init],
        rank=5,
        num_items=lens.num_items,
        num_iterations=5,
    )
    if als.train_rmse[-1] >= als.train_rmse[0]:
        raise AssertionError("ALS failed to reduce training error")

    say("3/6 deploying to a simulated cluster ...")
    model = MatrixFactorizationModel(
        "selfcheck", als.item_factors, als.item_bias, als.global_mean
    )
    weights = {
        uid: model.pack_user_weights(als.user_factors[uid], als.user_bias[uid])
        for uid in als.user_factors
    }
    velox = Velox.deploy(VeloxConfig(num_nodes=2), auto_retrain=False)
    velox.add_model(
        model,
        initial_user_weights=weights,
        seed_observations=[
            Observation(r.uid, r.item_id, r.rating, item_data=r.item_id)
            for r in split.init
        ],
    )

    say("4/6 serving + online learning ...")
    truth = [r.rating for r in split.holdout]

    def holdout_rmse() -> float:
        """Serving-path RMSE over the holdout set."""
        return rmse(
            truth,
            [velox.predict(None, r.uid, r.item_id)[1] for r in split.holdout],
        )

    baseline = holdout_rmse()
    for r in split.stream:
        velox.observe(uid=r.uid, x=r.item_id, y=r.rating)
    online = holdout_rmse()
    if not np.isfinite(online):
        raise AssertionError("online serving produced non-finite error")
    if online >= baseline:
        raise AssertionError(
            f"online updates did not improve accuracy "
            f"({baseline:.4f} -> {online:.4f})"
        )

    say("5/6 retraining, rollback, and fault recovery ...")
    event = velox.retrain(reason="selfcheck")
    retrained = holdout_rmse()
    if retrained >= baseline:
        raise AssertionError("offline retraining did not improve accuracy")
    velox.rollback(version=0)
    if velox.model().version != event.new_version + 1:
        raise AssertionError("rollback did not create a forward version")
    velox.cluster.fail_node(0)
    velox.cluster.restart_node(0)
    post_recovery = velox.predict(None, 0, 1)[1]
    if not np.isfinite(post_recovery):
        raise AssertionError("serving broken after node recovery")

    say("6/6 indexed top-K and catalog query ...")
    top = velox.top_k_catalog(None, uid=1, k=5)
    if len(top) != 5:
        raise AssertionError("indexed top-K returned the wrong count")

    elapsed = time.perf_counter() - started
    summary = {
        "baseline_rmse": baseline,
        "online_rmse": online,
        "retrained_rmse": retrained,
        "retrain_version": event.new_version,
        "elapsed_seconds": elapsed,
    }
    if verbose:
        print()
        print(reporting.report(velox))
        print()
        print(
            f"selfcheck OK in {elapsed:.1f}s — "
            f"rmse {baseline:.4f} -> {online:.4f} (online) "
            f"-> {retrained:.4f} (retrain)"
        )
    return summary


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = argv if argv is not None else sys.argv[1:]
    verbose = "--quiet" not in args
    try:
        run_selfcheck(verbose=verbose)
    except Exception as err:  # pragma: no cover - exercised via exit code
        print(f"selfcheck FAILED: {err}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

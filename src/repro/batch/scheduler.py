"""The sparklite DAG scheduler.

Given a target dataset and a per-partition result function, the scheduler:

1. walks the lineage graph and finds every :class:`ShuffleDependency`
   reachable through narrow edges (each is a shuffle-map *stage*),
2. materializes shuffles bottom-up — map tasks compute parent partitions,
   bucket records by the shuffle's partitioner (with optional map-side
   combining), and write buckets to the shuffle store,
3. runs result tasks for the requested partitions.

Two executors run a stage's tasks. ``"thread"`` uses a thread pool —
cheap, shares driver memory, but the GIL serializes CPU-bound tasks.
``"fork"`` (POSIX only, see :mod:`repro.batch.forkexec`) forks worker
processes per stage: closures need no pickling, CPU-bound tasks scale
across cores, and task side effects (accumulators, shuffle writes)
are captured in the worker and replayed at the driver. Jobs that exist
to mutate driver state (``foreach``/``save_to_table``) always run on
the local thread path regardless of the configured executor.

Fault tolerance mirrors Spark's lineage model: a failed task is retried
up to ``max_task_attempts`` times, recomputing its inputs; a reduce task
that hits a missing map output (:class:`ShuffleFetchError`) triggers
recomputation of just that map task before the retry; a fork worker that
dies mid-stage loses only its unreported partitions, which are re-forked
and recomputed via lineage. A :class:`FailureInjector` deterministically
provokes all three failure modes for the fault-tolerance tests.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from threading import RLock
from typing import Callable, Iterator

from repro.common.errors import TaskFailedError
from repro.batch.dataset import (
    Dataset,
    ShuffleDependency,
    TaskContext,
)
from repro.batch import forkexec
from repro.batch.shared import active_effects
from repro.batch.shuffle import ShuffleFetchError, ShuffleStore

EXECUTORS = ("thread", "fork")


@dataclass
class StageProfile:
    """Wall-clock accounting for one executed stage.

    ``busy_seconds`` sums per-task compute time, so
    ``utilization`` ≈ 1.0 means every worker stayed busy for the whole
    stage and ≈ 1/workers means the stage was effectively serial.
    """

    stage: int  # shuffle_id for map stages, -1 for result stages
    kind: str  # "map" | "result"
    executor: str  # "inline" | "thread" | "fork"
    workers: int
    tasks: int
    wall_seconds: float
    busy_seconds: float

    @property
    def utilization(self) -> float:
        """Fraction of worker-seconds spent computing tasks."""
        denominator = self.wall_seconds * max(1, self.workers)
        if denominator <= 0.0:
            return 0.0
        return self.busy_seconds / denominator


@dataclass
class JobMetrics:
    """Counters for one scheduler lifetime (reset with ``reset()``)."""

    jobs: int = 0
    stages: int = 0
    map_tasks: int = 0
    result_tasks: int = 0
    task_retries: int = 0
    fetch_failures: int = 0
    injected_failures: int = 0
    stage_profiles: list[StageProfile] = field(default_factory=list)

    _COUNTER_FIELDS = (
        "jobs",
        "stages",
        "map_tasks",
        "result_tasks",
        "task_retries",
        "fetch_failures",
        "injected_failures",
    )

    def reset(self) -> None:
        """Zero every counter and drop recorded stage profiles."""
        for name in self._COUNTER_FIELDS:
            setattr(self, name, 0)
        self.stage_profiles.clear()

    def counters(self) -> dict[str, int]:
        """Snapshot of the integer counters (used to compute the deltas
        a forked worker ships back)."""
        return {name: getattr(self, name) for name in self._COUNTER_FIELDS}

    def merge_counters(self, delta: dict[str, int]) -> None:
        """Fold a forked worker's counter deltas into the driver copy."""
        for name, amount in delta.items():
            if name in self._COUNTER_FIELDS:
                setattr(self, name, getattr(self, name) + amount)

    def stage_wall_seconds(self) -> float:
        """Total recorded stage wall clock (retrain instrumentation)."""
        return sum(profile.wall_seconds for profile in self.stage_profiles)


class InjectedFailure(RuntimeError):
    """Raised by a :class:`FailureInjector` inside a task."""


@dataclass
class FailureInjector:
    """Deterministic fault injection for scheduler tests.

    ``map_failures`` maps ``(shuffle_id, partition)`` to how many times
    that map task should fail before succeeding; ``result_failures`` maps
    result-task partition index similarly. ``lost_outputs`` lists
    ``(shuffle_id, map_partition)`` outputs to silently drop after they
    are first written, forcing a fetch failure downstream.
    ``worker_kills`` lists partition indices whose fork worker dies
    (``os._exit``) just before running them — the process-level failure
    mode the thread executor cannot express.

    Consumed entries are recorded in the active task-effect capture, so
    a forked worker's consumption replays onto the driver's injector and
    retry budgets stay exact across process boundaries.
    """

    map_failures: dict = field(default_factory=dict)
    result_failures: dict = field(default_factory=dict)
    lost_outputs: set = field(default_factory=set)
    worker_kills: set = field(default_factory=set)
    _lock: RLock = field(default_factory=RLock, repr=False)

    def maybe_fail_map(self, shuffle_id: int, partition: int) -> None:
        """Raise an injected failure if one is configured."""
        with self._lock:
            key = (shuffle_id, partition)
            remaining = self.map_failures.get(key, 0)
            if remaining > 0:
                self.map_failures[key] = remaining - 1
                self._record_consumed("map", key)
                raise InjectedFailure(f"injected map failure at {key}")

    def maybe_fail_result(self, partition: int) -> None:
        """Raise an injected failure if one is configured."""
        with self._lock:
            remaining = self.result_failures.get(partition, 0)
            if remaining > 0:
                self.result_failures[partition] = remaining - 1
                self._record_consumed("result", partition)
                raise InjectedFailure(
                    f"injected result failure at partition {partition}"
                )

    def consume_lost_output(self, shuffle_id: int, map_partition: int) -> bool:
        """True exactly once per configured lost output."""
        with self._lock:
            key = (shuffle_id, map_partition)
            if key in self.lost_outputs:
                self.lost_outputs.discard(key)
                self._record_consumed("lost_output", key)
                return True
            return False

    def should_kill_worker(self, partition: int) -> bool:
        """Whether a fork worker about to run ``partition`` should die.

        Deliberately non-consuming: the worker dies before it can report
        anything, so the *driver* consumes the kill when it notices the
        lost partition (:meth:`consume_worker_kill`)."""
        with self._lock:
            return partition in self.worker_kills

    def consume_worker_kill(self, partition: int) -> bool:
        """Clear a configured worker kill; True if one was pending."""
        with self._lock:
            if partition in self.worker_kills:
                self.worker_kills.discard(partition)
                return True
            return False

    def apply_consumed_events(self, events: list) -> None:
        """Replay a forked worker's consumption onto this injector."""
        with self._lock:
            for kind, key in events:
                if kind == "map" and self.map_failures.get(key, 0) > 0:
                    self.map_failures[key] -= 1
                elif kind == "result" and self.result_failures.get(key, 0) > 0:
                    self.result_failures[key] -= 1
                elif kind == "lost_output":
                    self.lost_outputs.discard(key)

    def _record_consumed(self, kind: str, key) -> None:
        effects = active_effects()
        if effects is not None:
            effects.injector_events.append((kind, key))


class DAGScheduler:
    """Executes dataset lineage graphs.

    ``parallelism`` > 1 runs the tasks of each stage on a worker pool;
    1 runs them inline (deterministic, easiest to debug, and what the
    latency benchmarks use). ``executor`` picks the pool: ``"thread"``
    (default) or ``"fork"`` (process-based; falls back to threads when
    ``fork`` is unavailable on the platform).
    """

    def __init__(
        self,
        parallelism: int = 1,
        max_task_attempts: int = 4,
        injector: FailureInjector | None = None,
        executor: str = "thread",
    ):
        if parallelism < 1:
            raise ValueError(f"parallelism must be >= 1, got {parallelism}")
        if max_task_attempts < 1:
            raise ValueError(
                f"max_task_attempts must be >= 1, got {max_task_attempts}"
            )
        if executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}, got {executor!r}"
            )
        self.parallelism = parallelism
        self.max_task_attempts = max_task_attempts
        self.injector = injector
        self.executor = executor
        self.shuffle_store = ShuffleStore()
        self.metrics = JobMetrics()
        self._materialized_shuffles: set[int] = set()
        self._shuffle_registry: dict[int, ShuffleDependency] = {}

    # -- public API -------------------------------------------------------

    def run_job(
        self,
        dataset: Dataset,
        result_fn: Callable[[Iterator], object],
        partitions: list[int] | None = None,
        local_only: bool = False,
    ) -> list:
        """Compute ``result_fn(iter(partition))`` for each requested
        partition of ``dataset``; returns results in partition order.

        ``local_only`` pins every stage of this job to the in-process
        (inline/thread) path — required when ``result_fn`` exists to
        mutate driver state (``foreach``, ``save_to_table``), which a
        forked worker could not make visible.
        """
        self.metrics.jobs += 1
        self._ensure_shuffles(dataset, local_only=local_only)
        targets = list(range(dataset.num_partitions)) if partitions is None else partitions
        ctx = TaskContext(self.shuffle_store, self.metrics)
        self.metrics.stages += 1

        def result_task(split: int):
            """Run one result task with retry."""
            return self._run_with_retry(
                lambda: self._execute_result(dataset, split, result_fn, ctx),
                stage=-1,
                partition=split,
                is_map=False,
            )

        return self._run_tasks(
            result_task, targets, stage=-1, kind="result", local_only=local_only
        )

    def invalidate_shuffle(self, shuffle_id: int) -> None:
        """Forget a materialized shuffle (tests / memory reclamation)."""
        self._materialized_shuffles.discard(shuffle_id)
        self.shuffle_store.drop_shuffle(shuffle_id)

    # -- stage construction --------------------------------------------------

    def _collect_shuffle_deps(self, dataset: Dataset) -> list[ShuffleDependency]:
        """Shuffle dependencies directly upstream of ``dataset`` (crossing
        only narrow edges)."""
        found: list[ShuffleDependency] = []
        seen: set[int] = set()
        stack = [dataset]
        while stack:
            current = stack.pop()
            if current.dataset_id in seen:
                continue
            seen.add(current.dataset_id)
            for dep in current.dependencies:
                if isinstance(dep, ShuffleDependency):
                    found.append(dep)
                else:
                    stack.append(dep.parent)
        return found

    def _ensure_shuffles(self, dataset: Dataset, local_only: bool = False) -> None:
        """Materialize every shuffle upstream of ``dataset``, bottom-up."""
        for dep in self._collect_shuffle_deps(dataset):
            if dep.shuffle_id in self._materialized_shuffles:
                continue
            self._ensure_shuffles(dep.parent, local_only=local_only)
            self._run_shuffle_map_stage(dep, local_only=local_only)
            self._materialized_shuffles.add(dep.shuffle_id)

    def _run_shuffle_map_stage(
        self, dep: ShuffleDependency, local_only: bool = False
    ) -> None:
        self.metrics.stages += 1
        ctx = TaskContext(self.shuffle_store, self.metrics)

        def map_task(split: int):
            """Run one shuffle-map task with retry."""
            return self._run_with_retry(
                lambda: self._execute_map(dep, split, ctx),
                stage=dep.shuffle_id,
                partition=split,
                is_map=True,
            )

        self._run_tasks(
            map_task,
            list(range(dep.parent.num_partitions)),
            stage=dep.shuffle_id,
            kind="map",
            local_only=local_only,
        )

    # -- task execution ----------------------------------------------------------

    def _run_tasks(
        self,
        task: Callable[[int], object],
        partitions: list[int],
        stage: int = -1,
        kind: str = "result",
        local_only: bool = False,
    ) -> list:
        start = time.perf_counter()
        workers = 1
        executor_used = "inline"
        busy = 0.0
        if self.parallelism == 1 or len(partitions) <= 1:
            results = []
            for partition in partitions:
                task_start = time.perf_counter()
                results.append(task(partition))
                busy += time.perf_counter() - task_start
        elif (
            self.executor == "fork"
            and not local_only
            and forkexec.fork_available()
        ):
            workers = min(self.parallelism, len(partitions))
            executor_used = "fork"
            results, busy = forkexec.run_forked(
                task,
                partitions,
                workers,
                metrics=self.metrics,
                shuffle_store=self.shuffle_store,
                injector=self.injector,
                max_attempts=self.max_task_attempts,
            )
        else:
            workers = min(self.parallelism, len(partitions))
            executor_used = "thread"
            timings: list[float] = []

            def timed(partition: int):
                """One task, with its wall clock recorded."""
                task_start = time.perf_counter()
                try:
                    return task(partition)
                finally:
                    timings.append(time.perf_counter() - task_start)

            with ThreadPoolExecutor(max_workers=workers) as pool:
                results = list(pool.map(timed, partitions))
            busy = sum(timings)
        self.metrics.stage_profiles.append(
            StageProfile(
                stage=stage,
                kind=kind,
                executor=executor_used,
                workers=workers,
                tasks=len(partitions),
                wall_seconds=time.perf_counter() - start,
                busy_seconds=busy,
            )
        )
        return results

    def _run_with_retry(
        self, body: Callable[[], object], stage: int, partition: int, is_map: bool
    ) -> object:
        last_error: BaseException | None = None
        for attempt in range(1, self.max_task_attempts + 1):
            try:
                return body()
            except ShuffleFetchError as err:
                # Lost map output: recompute just that map task, then retry.
                self.metrics.fetch_failures += 1
                self.metrics.task_retries += 1
                last_error = err
                self._recompute_map_output(err.shuffle_id, err.map_partition)
            except InjectedFailure as err:
                self.metrics.injected_failures += 1
                self.metrics.task_retries += 1
                last_error = err
            except Exception as err:  # genuine task failure: retry via lineage
                self.metrics.task_retries += 1
                last_error = err
        raise TaskFailedError(stage, partition, self.max_task_attempts, last_error)

    def _recompute_map_output(self, shuffle_id: int, map_partition: int) -> None:
        dep = self._find_dependency(shuffle_id)
        ctx = TaskContext(self.shuffle_store, self.metrics)
        self._execute_map(dep, map_partition, ctx, allow_loss=False)

    def _find_dependency(self, shuffle_id: int) -> ShuffleDependency:
        dep = self._shuffle_registry.get(shuffle_id)
        if dep is None:
            raise TaskFailedError(
                shuffle_id,
                -1,
                0,
                RuntimeError(f"unknown shuffle {shuffle_id} during recovery"),
            )
        return dep

    def _execute_map(
        self,
        dep: ShuffleDependency,
        split: int,
        ctx: TaskContext,
        allow_loss: bool = True,
    ) -> None:
        self._shuffle_registry[dep.shuffle_id] = dep
        self.metrics.map_tasks += 1
        if self.injector is not None:
            self.injector.maybe_fail_map(dep.shuffle_id, split)
        buckets: list[list] = [[] for _ in range(dep.num_partitions)]
        records = dep.parent.iterator(split, ctx)
        if dep.aggregator is None:
            for key, value in records:
                buckets[dep.partition_for(key)].append((key, value))
        else:
            agg = dep.aggregator
            # Map-side combine: merge values per key before writing.
            combined: dict = {}
            for key, value in records:
                if key in combined:
                    combined[key] = agg.merge_value(combined[key], value)
                else:
                    combined[key] = agg.create_combiner(value)
            for key, combiner in combined.items():
                buckets[dep.partition_for(key)].append((key, combiner))
        self.shuffle_store.write(dep.shuffle_id, split, buckets)
        if (
            allow_loss
            and self.injector is not None
            and self.injector.consume_lost_output(dep.shuffle_id, split)
        ):
            self.shuffle_store.drop(dep.shuffle_id, split)

    def _execute_result(
        self,
        dataset: Dataset,
        split: int,
        result_fn: Callable[[Iterator], object],
        ctx: TaskContext,
    ) -> object:
        self.metrics.result_tasks += 1
        if self.injector is not None:
            self.injector.maybe_fail_result(split)
        return result_fn(iter(dataset.iterator(split, ctx)))

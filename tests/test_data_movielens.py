"""GroupLens ratings-file loader (ML-1M/10M .dat and ML-20M .csv)."""

import pytest

from repro.common.errors import ValidationError
from repro.data import load_movielens


DAT_CONTENT = """\
1::122::5::838985046
1::185::3.5::838983525
2::231::3::868245644
2::292::4::868244340
2::316::2::868244600
3::122::4::878887765
"""

CSV_CONTENT = """\
userId,movieId,rating,timestamp
1,122,5,838985046
1,185,3.5,838983525
2,231,3,868245644
"""


@pytest.fixture
def dat_file(tmp_path):
    path = tmp_path / "ratings.dat"
    path.write_text(DAT_CONTENT)
    return path


@pytest.fixture
def csv_file(tmp_path):
    path = tmp_path / "ratings.csv"
    path.write_text(CSV_CONTENT)
    return path


class TestDatFormat:
    def test_counts_and_dense_ids(self, dat_file):
        corpus = load_movielens(dat_file)
        assert len(corpus.ratings) == 6
        assert corpus.num_users == 3
        assert corpus.num_items == 5
        assert all(0 <= r.uid < 3 for r in corpus.ratings)
        assert all(0 <= r.item_id < 5 for r in corpus.ratings)

    def test_shared_movie_maps_to_same_dense_id(self, dat_file):
        corpus = load_movielens(dat_file)
        assert corpus.movie_ids[122] == corpus.movie_ids[122]
        dense_122 = corpus.movie_ids[122]
        raters = {r.uid for r in corpus.ratings if r.item_id == dense_122}
        assert len(raters) == 2  # GroupLens users 1 and 3

    def test_ratings_ordered_by_timestamp(self, dat_file):
        corpus = load_movielens(dat_file)
        stamps = [r.timestamp for r in corpus.ratings]
        assert stamps == sorted(stamps)
        # The oldest raw timestamp (user 1, movie 185) must come first.
        first = corpus.ratings[0]
        assert corpus.user_ids[1] == first.uid
        assert corpus.movie_ids[185] == first.item_id

    def test_half_star_ratings_preserved(self, dat_file):
        corpus = load_movielens(dat_file)
        assert any(r.rating == 3.5 for r in corpus.ratings)

    def test_max_ratings_cap(self, dat_file):
        corpus = load_movielens(dat_file, max_ratings=3)
        assert len(corpus.ratings) == 3

    def test_min_ratings_per_user_filter(self, dat_file):
        corpus = load_movielens(dat_file, min_ratings_per_user=2)
        # GroupLens user 3 has one rating and is dropped.
        assert corpus.num_users == 2
        assert len(corpus.ratings) == 5


class TestCsvFormat:
    def test_header_skipped(self, csv_file):
        corpus = load_movielens(csv_file)
        assert len(corpus.ratings) == 3
        assert corpus.num_users == 2


class TestValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ValidationError):
            load_movielens(tmp_path / "nope.dat")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "ratings.dat"
        path.write_text("")
        with pytest.raises(ValidationError):
            load_movielens(path)

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "ratings.dat"
        path.write_text("1::2\n")
        with pytest.raises(ValidationError):
            load_movielens(path)

    def test_out_of_scale_rating(self, tmp_path):
        path = tmp_path / "ratings.dat"
        path.write_text("1::2::9::100\n")
        with pytest.raises(ValidationError):
            load_movielens(path)

    def test_over_filtering_rejected(self, tmp_path):
        path = tmp_path / "ratings.dat"
        path.write_text("1::2::3::100\n")
        with pytest.raises(ValidationError):
            load_movielens(path, min_ratings_per_user=5)


class TestEndToEnd:
    def test_loader_feeds_the_paper_protocol(self, dat_file):
        """The loaded corpus splits and trains like SynthLens does."""
        from repro.batch import BatchContext
        from repro.core.offline import als_train
        from repro.data import split_per_user

        corpus = load_movielens(dat_file)
        split = split_per_user(corpus.ratings, 0.7)
        result = als_train(
            BatchContext(2),
            [(r.uid, r.item_id, r.rating) for r in split.train],
            rank=2,
            num_items=corpus.num_items,
            num_iterations=2,
        )
        assert result.item_factors.shape == (5, 2)

"""Table: partition addressing, mapping API, CAS, failure handling."""

import pytest

from repro.common.errors import (
    KeyNotFoundError,
    PartitionError,
    VersionConflictError,
)
from repro.store import Table


class TestConstruction:
    def test_requires_name(self):
        with pytest.raises(ValueError):
            Table("")

    def test_requires_positive_partitions(self):
        with pytest.raises(ValueError):
            Table("t", num_partitions=0)


class TestPartitionAddressing:
    def test_partition_index_stable(self):
        table = Table("t", num_partitions=4)
        assert table.partition_index("k") == table.partition_index("k")

    def test_partition_index_in_range(self):
        table = Table("t", num_partitions=4)
        for key in range(100):
            assert 0 <= table.partition_index(key) < 4

    def test_custom_partitioner_used(self):
        table = Table("t", num_partitions=4, partitioner=lambda uid: uid % 4)
        assert table.partition_index(7) == 3

    def test_custom_partitioner_out_of_range_rejected(self):
        table = Table("t", num_partitions=2, partitioner=lambda _k: 5)
        with pytest.raises(PartitionError):
            table.put("k", "v")

    def test_keys_spread_over_partitions(self):
        table = Table("t", num_partitions=4)
        for i in range(200):
            table.put(i, i)
        sizes = [len(table.partition(i)) for i in range(4)]
        assert all(size > 20 for size in sizes)

    def test_unknown_partition_rejected(self):
        with pytest.raises(PartitionError):
            Table("t", num_partitions=2).partition(9)


class TestMappingApi:
    def test_get_put_roundtrip(self):
        table = Table("t", num_partitions=3)
        table.put("k", [1, 2])
        assert table.get("k") == [1, 2]
        assert table["k"] == [1, 2]

    def test_setitem(self):
        table = Table("t")
        table["k"] = 5
        assert table["k"] == 5

    def test_get_missing_raises_key_not_found(self):
        table = Table("t")
        with pytest.raises(KeyNotFoundError):
            table.get("missing")

    def test_key_not_found_is_a_key_error(self):
        table = Table("t")
        with pytest.raises(KeyError):
            table["missing"]

    def test_get_or_default(self):
        table = Table("t")
        assert table.get_or_default("k", 42) == 42

    def test_contains_len_keys_items(self):
        table = Table("t", num_partitions=2)
        table.put("a", 1)
        table.put("b", 2)
        assert "a" in table and "c" not in table
        assert len(table) == 2
        assert sorted(table.keys()) == ["a", "b"]
        assert dict(table.items()) == {"a": 1, "b": 2}

    def test_put_many(self):
        table = Table("t", num_partitions=3)
        count = table.put_many((i, i * 2) for i in range(10))
        assert count == 10
        assert table.get(7) == 14

    def test_delete(self):
        table = Table("t")
        table.put("k", 1)
        assert table.delete("k") is True
        assert table.delete("k") is False

    def test_truncate(self):
        table = Table("t", num_partitions=3)
        for i in range(9):
            table.put(i, i)
        table.truncate()
        assert len(table) == 0

    def test_scan_partition(self):
        table = Table("t", num_partitions=2, partitioner=lambda k: k % 2)
        for i in range(6):
            table.put(i, i * 10)
        evens = dict(table.scan_partition(0))
        assert evens == {0: 0, 2: 20, 4: 40}


class TestVersioning:
    def test_get_versioned(self):
        table = Table("t")
        table.put("k", "v")
        table.put("k", "v2")
        versioned = table.get_versioned("k")
        assert versioned.value == "v2"
        assert versioned.version == 2

    def test_cas_success_path(self):
        table = Table("t")
        version = table.put("k", "v")
        new_version = table.compare_and_set("k", "v2", version)
        assert new_version == version + 1
        assert table.get("k") == "v2"

    def test_cas_absent_key_with_zero(self):
        table = Table("t")
        assert table.compare_and_set("k", "v", 0) == 1

    def test_cas_conflict(self):
        table = Table("t")
        table.put("k", "v")
        table.put("k", "v2")
        with pytest.raises(VersionConflictError) as exc:
            table.compare_and_set("k", "v3", 1)
        assert exc.value.expected == 1
        assert exc.value.actual == 2


class TestFailureHandling:
    def test_fail_and_recover_one_partition(self):
        table = Table("t", num_partitions=2, partitioner=lambda k: k % 2)
        for i in range(10):
            table.put(i, i)
        table.fail_partition(0)
        with pytest.raises(PartitionError):
            table.get(2)
        assert table.get(3) == 3  # other partition unaffected
        table.recover_partition(0)
        assert table.get(2) == 2

    def test_recover_all(self):
        table = Table("t", num_partitions=3)
        for i in range(12):
            table.put(i, i)
        table.fail_partition(0)
        table.fail_partition(2)
        replayed = table.recover_all()
        assert replayed > 0
        assert len(table) == 12

"""Front-end interface: the RESTful surface of the paper's prototype.

The prototype "exposes a RESTful client interface"; this subpackage
provides the equivalent for the reproduction:

* :mod:`repro.frontend.api` — typed request/response objects and a JSON
  wire codec (one JSON object per line),
* :class:`VeloxClient` — an in-process client binding the API objects
  to a deployed :class:`~repro.core.velox.Velox` instance,
* :class:`VeloxServer` / :class:`RemoteClient` — a threaded TCP
  JSON-lines server and matching socket client used by the examples.
"""

from repro.frontend.api import (
    PredictApiRequest,
    TopKApiRequest,
    ObserveApiRequest,
    HealthApiRequest,
    RetrainApiRequest,
    TopKCatalogApiRequest,
    StatusApiRequest,
    ApiResponse,
    encode_request,
    decode_request,
    encode_response,
    decode_response,
)
from repro.frontend.client import VeloxClient
from repro.frontend.server import VeloxServer, RemoteClient

__all__ = [
    "PredictApiRequest",
    "TopKApiRequest",
    "ObserveApiRequest",
    "HealthApiRequest",
    "RetrainApiRequest",
    "TopKCatalogApiRequest",
    "StatusApiRequest",
    "ApiResponse",
    "encode_request",
    "decode_request",
    "encode_response",
    "decode_response",
    "VeloxClient",
    "VeloxServer",
    "RemoteClient",
]

"""Ablation: approximate retraining through the sampling engine.

BDAS ships a sampling engine for trading accuracy against latency; the
natural model-lifecycle use is the offline retrain, whose batch cost is
linear in the log. This ablation retrains on stratified-by-user
subsamples of the observation log at several fractions and reports
holdout RMSE next to retrain wall time.

Shape assertions: retrain time decreases with the sample fraction;
accuracy improves monotonically with it; and the half-sample retrain
already recovers a large share of the full retrain's improvement over
the pre-retrain model (per-user floors keep personalization intact).
"""

from __future__ import annotations

import time

import pytest

from repro import Velox, VeloxConfig
from repro.batch import BatchContext
from repro.core.models import MatrixFactorizationModel
from repro.core.offline import als_train
from repro.data import SynthLensConfig, generate_synthlens, paper_protocol_split
from repro.metrics import rmse
from repro.store import Observation

from conftest import write_result

CORPUS = SynthLensConfig(
    num_users=250,
    num_items=180,
    rank=8,
    ratings_per_user_mean=45.0,
    min_ratings_per_user=24,
    seed=15,
)
# Sampled retrains only make sense while the sample still exceeds what
# the serving model was originally trained on (here: the init half of
# the log); below that, "retraining" on less data than before is a
# downgrade — which the 0.6 point is close to illustrating.
FRACTIONS = [0.6, 0.8, 1.0]


def deploy():
    lens = generate_synthlens(CORPUS)
    split = paper_protocol_split(lens.ratings)
    ctx = BatchContext(default_parallelism=4)
    als = als_train(
        ctx,
        [(r.uid, r.item_id, r.rating) for r in split.init],
        rank=CORPUS.rank,
        num_items=CORPUS.num_items,
        num_iterations=8,
    )
    model = MatrixFactorizationModel(
        "songs", als.item_factors, als.item_bias, als.global_mean
    )
    weights = {
        uid: model.pack_user_weights(als.user_factors[uid], als.user_bias[uid])
        for uid in als.user_factors
    }
    velox = Velox.deploy(VeloxConfig(num_nodes=2), auto_retrain=False)
    # The stream is seeded straight into the log (bulk ingestion, no
    # per-observation online updates): the served model is stale, and
    # the retrain — full or sampled — is what must recover the gap.
    # This isolates the sampling engine's effect on the batch job.
    velox.add_model(
        model,
        initial_user_weights=weights,
        seed_observations=[
            Observation(r.uid, r.item_id, r.rating, item_data=r.item_id)
            for r in split.init + split.stream
        ],
    )
    return velox, split


def run_fraction(fraction: float) -> dict[str, float]:
    velox, split = deploy()
    truth = [r.rating for r in split.holdout]

    def holdout_rmse() -> float:
        return rmse(
            truth,
            [velox.predict(None, r.uid, r.item_id)[1] for r in split.holdout],
        )

    baseline = holdout_rmse()  # after online updates, before the retrain
    start = time.perf_counter()
    event = velox.manager.retrain_now(
        "songs",
        reason=f"sampled {fraction}",
        sample_fraction=None if fraction >= 1.0 else fraction,
    )
    retrain_seconds = time.perf_counter() - start
    error = holdout_rmse()
    trained_on = (
        event.sampled_observations
        if event.sampled_observations is not None
        else event.observations_used
    )
    return {
        "baseline_rmse": baseline,
        "holdout_rmse": error,
        "improvement": baseline - error,
        "retrain_seconds": retrain_seconds,
        "trained_on": trained_on,
    }


@pytest.mark.parametrize("fraction", FRACTIONS)
def test_sampled_retrain(benchmark, fraction):
    benchmark.pedantic(run_fraction, args=(fraction,), rounds=1, iterations=1)


def test_sampled_retrain_summary(benchmark):
    results = {f: run_fraction(f) for f in FRACTIONS}
    lines = ["fraction  trained_on  retrain_s  holdout_rmse  improvement_vs_pre_retrain"]
    for fraction in FRACTIONS:
        row = results[fraction]
        lines.append(
            f"{fraction:<10.2f}{row['trained_on']:<12d}"
            f"{row['retrain_seconds']:<11.3f}{row['holdout_rmse']:<14.4f}"
            f"{row['improvement']:.4f}"
        )
    write_result("ablation_sampled_retrain", lines)

    # Shape: smaller samples train on less data and finish faster.
    assert results[0.6]["trained_on"] < results[0.8]["trained_on"]
    assert results[0.8]["trained_on"] < results[1.0]["trained_on"]
    assert results[0.6]["retrain_seconds"] < results[1.0]["retrain_seconds"]
    # Shape: every sampled retrain still improves on the stale model,
    # and accuracy is monotone in the sample fraction ...
    for fraction in FRACTIONS:
        assert results[fraction]["improvement"] > 0, fraction
    assert (
        results[1.0]["holdout_rmse"]
        < results[0.8]["holdout_rmse"]
        < results[0.6]["holdout_rmse"]
    )
    # ... and the 80% sample already delivers a large share of the full
    # retrain's improvement over the pre-retrain model.
    assert results[0.8]["improvement"] > 0.4 * results[1.0]["improvement"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

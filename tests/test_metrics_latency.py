"""Latency recorder and timer."""

import time

import pytest

from repro.common.errors import ValidationError
from repro.metrics import LatencyRecorder, Timer


class TestLatencyRecorder:
    def test_record_and_summary(self):
        recorder = LatencyRecorder("op")
        for v in (0.01, 0.02, 0.03, 0.04):
            recorder.record(v)
        summary = recorder.summary()
        assert summary.count == 4
        assert summary.mean == pytest.approx(0.025)
        assert summary.min == 0.01 and summary.max == 0.04
        assert summary.p50 == pytest.approx(0.025)

    def test_percentiles_ordered(self):
        recorder = LatencyRecorder()
        for i in range(100):
            recorder.record(i / 1000)
        summary = recorder.summary()
        assert summary.p50 <= summary.p95 <= summary.p99 <= summary.max

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            LatencyRecorder().record(-0.1)

    def test_empty_summary_rejected(self):
        with pytest.raises(ValidationError):
            LatencyRecorder().summary()

    def test_reset(self):
        recorder = LatencyRecorder()
        recorder.record(0.5)
        recorder.reset()
        assert len(recorder) == 0

    def test_samples_copy(self):
        recorder = LatencyRecorder()
        recorder.record(0.5)
        samples = recorder.samples
        samples.append(99.0)
        assert len(recorder) == 1


class TestTimer:
    def test_standalone_measures_elapsed(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.009

    def test_attached_records(self):
        recorder = LatencyRecorder()
        with recorder.time():
            time.sleep(0.005)
        assert len(recorder) == 1
        assert recorder.samples[0] >= 0.004

    def test_exception_not_recorded(self):
        recorder = LatencyRecorder()
        with pytest.raises(RuntimeError):
            with recorder.time():
                raise RuntimeError("boom")
        assert len(recorder) == 0


class TestThreadSafety:
    def test_concurrent_records_are_not_torn(self):
        import threading

        recorder = LatencyRecorder("shared")

        def hammer():
            for i in range(500):
                recorder.record(i / 1e6)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(recorder) == 8 * 500
        assert recorder.summary().count == 8 * 500

    def test_merge_combines_per_worker_recorders(self):
        a = LatencyRecorder("a")
        b = LatencyRecorder("b")
        for v in (0.01, 0.02):
            a.record(v)
        for v in (0.03, 0.04):
            b.record(v)
        merged = a.merge(b)
        assert merged is a
        assert len(a) == 4
        assert a.summary().mean == pytest.approx(0.025)
        assert len(b) == 2  # the source recorder is untouched

    def test_merge_empty_recorder_is_noop(self):
        a = LatencyRecorder()
        a.record(0.5)
        a.merge(LatencyRecorder())
        assert len(a) == 1

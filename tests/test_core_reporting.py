"""Deployment reporting: snapshots and rendering."""

import pytest

from repro.core import reporting


class TestSnapshot:
    def test_fresh_deployment(self, deployed_velox):
        status = reporting.snapshot(deployed_velox)
        assert status.num_nodes == 2
        assert status.alive_nodes == 2
        assert len(status.models) == 1
        model = status.models[0]
        assert model.name == "songs"
        assert model.version == 0
        assert model.users > 0
        assert model.observations_logged == 0
        assert not model.stale
        assert model.versions == 1

    def test_counters_reflect_traffic(self, deployed_velox):
        for i in range(10):
            deployed_velox.predict(None, i, i % 5)
        for i in range(4):
            deployed_velox.observe(uid=i, x=i, y=3.0)
        status = reporting.snapshot(deployed_velox)
        assert status.requests_served == 10
        assert status.observations_applied == 4
        model = status.models[0]
        assert model.observations_logged == 4
        assert model.health_observations == 4
        assert model.recent_loss is not None

    def test_cache_hit_rates(self, deployed_velox):
        deployed_velox.predict(None, 1, 3)
        deployed_velox.predict(None, 1, 3)  # prediction cache hit
        status = reporting.snapshot(deployed_velox)
        assert status.prediction_cache_hit_rate > 0

    def test_retrain_and_multiple_models_counted(self, deployed_velox, small_split):
        from repro.core.models import PersonalizedLinearModel

        deployed_velox.add_model(PersonalizedLinearModel("aux", 3))
        for r in small_split.stream[:50]:
            deployed_velox.observe(uid=r.uid, x=r.item_id, y=r.rating)
        deployed_velox.retrain("songs")
        status = reporting.snapshot(deployed_velox)
        by_name = {m.name: m for m in status.models}
        assert set(by_name) == {"songs", "aux"}
        assert by_name["songs"].retrains == 1
        assert by_name["songs"].version == 1
        assert by_name["songs"].versions == 2
        assert by_name["aux"].retrains == 0

    def test_dead_node_visible(self, deployed_velox):
        deployed_velox.cluster.fail_node(0)
        status = reporting.snapshot(deployed_velox)
        assert status.alive_nodes == 1

    def test_serving_latency_percentiles(self, deployed_velox):
        for i in range(20):
            deployed_velox.predict(None, i % 5, i % 8)
        status = reporting.snapshot(deployed_velox)
        model = status.models[0]
        assert model.predictions_served == 20
        assert model.predict_p50_ms is not None
        assert 0 < model.predict_p50_ms <= model.predict_p99_ms

    def test_no_latency_before_traffic(self, deployed_velox):
        status = reporting.snapshot(deployed_velox)
        assert status.models[0].predictions_served == 0
        assert status.models[0].predict_p50_ms is None


class TestRender:
    def test_report_contains_key_facts(self, deployed_velox):
        deployed_velox.observe(uid=1, x=2, y=4.0)
        text = reporting.report(deployed_velox)
        assert "2/2 nodes alive" in text
        assert "songs" in text
        assert "observations applied 1" in text

    def test_render_handles_missing_losses(self, deployed_velox):
        text = reporting.report(deployed_velox)
        assert "-" in text  # no recent loss yet renders as a dash

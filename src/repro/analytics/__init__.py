"""MV-first analytics over the observation log.

The serving store's answer to reporting traffic: a catalog of
incrementally-maintained rollups (per-user, per-item, per-time-window)
updated inline with every appended observation, a small
filter/group-by/aggregate query model, a cost-based planner that routes
each query to the cheapest covering view (falling back to a log scan),
and an integrity checker that proves routed answers against a replay of
the same log prefix.
"""

from repro.analytics.query import (
    AGGREGATES,
    GROUP_DIMENSIONS,
    AnalyticsQuery,
    AnalyticsResult,
)
from repro.analytics.views import (
    ItemRollup,
    RollupView,
    UserRollup,
    WindowRollup,
)
from repro.analytics.catalog import DEFAULT_WINDOW_WIDTH, MVCatalog
from repro.analytics.planner import (
    ROUTE_SCAN,
    ROUTE_USER_INDEX,
    CostBasedPlanner,
    QueryPlan,
    execute_scan,
)
from repro.analytics.integrity import (
    IntegrityChecker,
    IntegrityReport,
    ViewIntegrity,
    check_view,
)
from repro.analytics.engine import AnalyticsEngine

__all__ = [
    "AGGREGATES",
    "GROUP_DIMENSIONS",
    "AnalyticsQuery",
    "AnalyticsResult",
    "RollupView",
    "UserRollup",
    "ItemRollup",
    "WindowRollup",
    "DEFAULT_WINDOW_WIDTH",
    "MVCatalog",
    "QueryPlan",
    "CostBasedPlanner",
    "execute_scan",
    "ROUTE_SCAN",
    "ROUTE_USER_INDEX",
    "IntegrityChecker",
    "IntegrityReport",
    "ViewIntegrity",
    "check_view",
    "AnalyticsEngine",
]

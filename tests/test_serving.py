"""Serving engine: queues, batching policies, shedding, predict_batch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.clock import SimulatedClock
from repro.common.errors import ConfigError, OverloadedError, ValidationError
from repro.serving import (
    AdaptiveAimdPolicy,
    BatchFormer,
    FixedDelayPolicy,
    NoBatchingPolicy,
    QueuedRequest,
    RequestQueue,
    ServingConfig,
    ServingEngine,
    make_batching_policy,
)


def queued(uid: int, item: int, t: float, model: str = "songs") -> QueuedRequest:
    return QueuedRequest(
        kind="predict", model=model, uid=uid, enqueue_time=t, item=item
    )


class TestServingConfig:
    def test_defaults_valid(self):
        config = ServingConfig()
        assert config.batching == "adaptive"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_workers": 0},
            {"max_queue_depth": -1},
            {"max_queue_age": 0.0},
            {"batching": "psychic"},
            {"max_batch_size": 0},
            {"batch_delay": -0.1},
            {"slo_p99": 0.0},
            {"aimd_additive_step": 0},
            {"aimd_backoff": 1.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            ServingConfig(**kwargs)

    def test_policy_factory(self):
        assert isinstance(
            make_batching_policy(ServingConfig(batching="none")), NoBatchingPolicy
        )
        assert isinstance(
            make_batching_policy(ServingConfig(batching="fixed_delay")),
            FixedDelayPolicy,
        )
        assert isinstance(
            make_batching_policy(ServingConfig(batching="adaptive")),
            AdaptiveAimdPolicy,
        )


class TestRequestQueue:
    def test_fifo_and_bound(self):
        queue = RequestQueue("q", max_depth=2)
        assert queue.offer(queued(1, 10, 0.0))
        assert queue.offer(queued(2, 20, 0.0))
        assert not queue.offer(queued(3, 30, 0.0))  # depth bound
        taken = queue.pop_up_to(5)
        assert [r.uid for r in taken] == [1, 2]
        assert len(queue) == 0

    def test_pop_expired_only_takes_stale_head(self):
        queue = RequestQueue("q", max_depth=10)
        queue.offer(queued(1, 10, t=0.0))
        queue.offer(queued(2, 20, t=0.4))
        expired = queue.pop_expired(now=0.5, max_age=0.2)
        assert [r.uid for r in expired] == [1]
        assert len(queue) == 1

    def test_oldest_age(self):
        queue = RequestQueue("q", max_depth=10)
        assert queue.oldest_age(1.0) is None
        queue.offer(queued(1, 10, t=1.0))
        assert queue.oldest_age(1.25) == pytest.approx(0.25)


class TestBatchFormation:
    """Batch formation is a pure function of queue, policy, and clock."""

    def test_no_batching_takes_one_immediately(self):
        former = BatchFormer(NoBatchingPolicy())
        queue = RequestQueue("q", max_depth=10)
        for i in range(3):
            queue.offer(queued(i, i, t=0.0))
        assert [r.uid for r in former.form(queue, now=0.0)] == [0]
        assert [r.uid for r in former.form(queue, now=0.0)] == [1]

    def test_fixed_delay_lingers_then_takes_all(self):
        former = BatchFormer(FixedDelayPolicy(max_batch_size=8, delay=0.01))
        clock = SimulatedClock()
        queue = RequestQueue("q", max_depth=10)
        for i in range(3):
            queue.offer(queued(i, i, t=clock.now()))
        # Under the delay window with spare capacity: keep lingering.
        clock.advance(0.005)
        assert former.form(queue, clock.now()) == []
        assert former.ready_in(queue, clock.now()) == pytest.approx(0.005)
        # Window elapsed: the whole queue forms one batch.
        clock.advance(0.005)
        batch = former.form(queue, clock.now())
        assert [r.uid for r in batch] == [0, 1, 2]

    def test_full_batch_forms_without_waiting(self):
        former = BatchFormer(FixedDelayPolicy(max_batch_size=2, delay=10.0))
        queue = RequestQueue("q", max_depth=10)
        for i in range(5):
            queue.offer(queued(i, i, t=0.0))
        assert [r.uid for r in former.form(queue, now=0.0)] == [0, 1]
        assert [r.uid for r in former.form(queue, now=0.0)] == [2, 3]

    def test_formation_is_deterministic(self):
        def run() -> list[list[int]]:
            former = BatchFormer(FixedDelayPolicy(max_batch_size=4, delay=0.01))
            clock = SimulatedClock()
            queue = RequestQueue("q", max_depth=64)
            batches = []
            for step in range(20):
                queue.offer(queued(step, step, t=clock.now()))
                batch = former.form(queue, clock.now())
                if batch:
                    batches.append([r.uid for r in batch])
                clock.advance(0.004)
            return batches

        assert run() == run()


class TestAimdPolicy:
    def test_grows_additively_on_slo_hit(self):
        policy = AdaptiveAimdPolicy(
            slo_p99=0.1, max_batch_size=8, delay=0.0, additive_step=2
        )
        assert policy.batch_limit() == 1
        policy.observe(1, 0.01)
        assert policy.batch_limit() == 3
        for _ in range(10):
            policy.observe(3, 0.01)
        assert policy.batch_limit() == 8  # capped

    def test_backs_off_multiplicatively_on_slo_miss(self):
        policy = AdaptiveAimdPolicy(
            slo_p99=0.1, max_batch_size=64, delay=0.0, backoff=0.5
        )
        for _ in range(15):
            policy.observe(1, 0.01)
        assert policy.batch_limit() == 16
        policy.observe(16, 0.5)  # SLO violation
        assert policy.batch_limit() == 8
        policy.observe(8, 0.5)
        assert policy.batch_limit() == 4

    def test_never_shrinks_below_one(self):
        policy = AdaptiveAimdPolicy(slo_p99=0.1, max_batch_size=8, delay=0.0)
        for _ in range(5):
            policy.observe(1, 1.0)
        assert policy.batch_limit() == 1


class TestPredictBatch:
    def test_matches_scalar_predict(self, deployed_velox):
        rng = np.random.default_rng(7)
        uids = [int(u) for u in rng.integers(0, 40, 60)]
        items = [int(i) for i in rng.integers(0, 100, 60)]
        batch = deployed_velox.service.predict_batch("songs", uids, items)
        assert len(batch) == 60
        for uid, item, result in zip(uids, items, batch):
            scalar = deployed_velox.service.predict("songs", uid, item)
            assert result.score == pytest.approx(scalar.score, abs=1e-9)
            assert result.item == item

    def test_second_pass_hits_prediction_cache(self, deployed_velox):
        uids = [1, 2, 3]
        items = [4, 5, 6]
        first = deployed_velox.service.predict_batch("songs", uids, items)
        assert not any(r.prediction_cache_hit for r in first)
        second = deployed_velox.service.predict_batch("songs", uids, items)
        assert all(r.prediction_cache_hit for r in second)
        for a, b in zip(first, second):
            assert a.score == pytest.approx(b.score)

    def test_empty_batch(self, deployed_velox):
        assert deployed_velox.service.predict_batch("songs", [], []) == []

    def test_length_mismatch_rejected(self, deployed_velox):
        with pytest.raises(ValidationError):
            deployed_velox.service.predict_batch("songs", [1, 2], [3])

    def test_duplicate_users_and_items_share_lookups(self, deployed_velox):
        uids = [5, 5, 5, 5]
        items = [7, 7, 8, 8]
        results = deployed_velox.service.predict_batch("songs", uids, items)
        assert results[0].score == pytest.approx(results[1].score)
        assert results[2].score == pytest.approx(results[3].score)

    def test_predict_cached_cold_then_warm(self, deployed_velox):
        assert deployed_velox.service.predict_cached("songs", 1, 9) is None
        warm = deployed_velox.service.predict("songs", 1, 9)
        cached = deployed_velox.service.predict_cached("songs", 1, 9)
        assert cached is not None
        assert cached.prediction_cache_hit
        assert cached.score == pytest.approx(warm.score)

    def test_top_k_cached_serves_only_cached_subset(self, deployed_velox):
        for item in (1, 2):
            deployed_velox.service.predict("songs", 3, item)
        ranked = deployed_velox.service.top_k_cached(
            "songs", 3, [1, 2, 3, 4], k=4
        )
        assert {r.item for r in ranked} == {1, 2}
        scores = [r.score for r in ranked]
        assert scores == sorted(scores, reverse=True)


class TestServingEngine:
    def test_engine_matches_scalar_results(self, deployed_velox):
        rng = np.random.default_rng(3)
        pairs = [
            (int(u), int(i))
            for u, i in zip(rng.integers(0, 40, 50), rng.integers(0, 100, 50))
        ]
        engine = deployed_velox.serving_engine(
            ServingConfig(num_workers=2, batching="adaptive")
        )
        with engine:
            futures = [engine.submit_predict(u, x) for u, x in pairs]
            results = [f.result(timeout=10) for f in futures]
        for (uid, item), result in zip(pairs, results):
            scalar = deployed_velox.service.predict("songs", uid, item)
            assert result.score == pytest.approx(scalar.score, abs=1e-9)
            assert result.item == item

    def test_top_k_through_engine(self, deployed_velox):
        engine = deployed_velox.serving_engine(ServingConfig(num_workers=1))
        with engine:
            ranked = engine.top_k(2, [1, 2, 3, 4, 5], k=3, timeout=10)
        expected = deployed_velox.service.top_k("songs", 2, [1, 2, 3, 4, 5], k=3)
        assert [r.item for r in ranked] == [r.item for r in expected]
        for got, want in zip(ranked, expected):
            assert got.score == pytest.approx(want.score, abs=1e-9)

    def test_queue_full_sheds_with_typed_error(self, deployed_velox):
        engine = deployed_velox.serving_engine(
            ServingConfig(max_queue_depth=0)
        )
        with pytest.raises(OverloadedError):
            engine.submit_predict(1, 2)
        name = f"songs@node{deployed_velox.cluster.router.route_index(1)}"
        metrics = engine.queue_metrics()[name]
        assert metrics.shed_count == 1
        assert metrics.snapshot()["shed_admission"] == 1

    def test_degraded_top_k_serves_from_cache(self, deployed_velox):
        warm = deployed_velox.service.predict("songs", 1, 5)
        engine = deployed_velox.serving_engine(
            ServingConfig(max_queue_depth=0, degrade_top_k_on_overload=True)
        )
        future = engine.submit_top_k(1, [5, 6, 7], k=3)
        ranked = future.result(timeout=1)
        assert [r.item for r in ranked] == [5]
        assert ranked[0].score == pytest.approx(warm.score)
        name = f"songs@node{deployed_velox.cluster.router.route_index(1)}"
        assert engine.queue_metrics()[name].degraded_count == 1

    def test_age_bound_sheds_stale_requests(self, deployed_velox):
        clock = SimulatedClock()
        engine = deployed_velox.serving_engine(
            ServingConfig(max_queue_age=0.1, batch_delay=0.0), clock=clock
        )
        stale = engine.submit_predict(1, 2)
        clock.advance(0.2)  # past the age bound before any worker runs
        fresh = engine.submit_predict(1, 3)
        with engine._cond:
            job, _ = engine._next_batch()
        assert job is not None  # the fresh request still forms a batch
        _, batch = job
        assert [r.item for r in batch] == [3]
        with pytest.raises(OverloadedError):
            stale.result(timeout=0)
        assert fresh.done() is False
        name = f"songs@node{deployed_velox.cluster.router.route_index(1)}"
        assert engine.queue_metrics()[name].snapshot()["shed_age"] == 1

    def test_stop_fails_pending_futures(self, deployed_velox):
        engine = deployed_velox.serving_engine(ServingConfig())
        future = engine.submit_predict(1, 2)  # engine never started
        engine.stop()
        with pytest.raises(OverloadedError):
            future.result(timeout=0)

    def test_double_start_rejected(self, deployed_velox):
        engine = deployed_velox.serving_engine(ServingConfig(num_workers=1))
        engine.start()
        try:
            with pytest.raises(ValidationError):
                engine.start()
        finally:
            engine.stop()

    def test_metrics_record_batches_and_slo(self, deployed_velox):
        engine = deployed_velox.serving_engine(
            ServingConfig(num_workers=1, batching="fixed_delay", slo_p99=5.0)
        )
        with engine:
            futures = [engine.submit_predict(1, x) for x in range(20)]
            for future in futures:
                future.result(timeout=10)
        name = f"songs@node{deployed_velox.cluster.router.route_index(1)}"
        snapshot = engine.metrics_snapshot()[name]
        assert snapshot["completed"] == 20
        assert snapshot["slo_attainment"] == 1.0
        assert snapshot["batch_size_mean"] >= 1.0
        assert sum(
            size * count
            for size, count in snapshot["batch_size_counts"].items()
        ) == 20

    def test_bad_request_fails_alone_not_its_batch(self, deployed_velox):
        engine = deployed_velox.serving_engine(
            ServingConfig(num_workers=1, batching="fixed_delay", batch_delay=0.05)
        )
        with engine:
            good = engine.submit_predict(1, 5)
            bad = engine.submit_predict(1, object())  # unkeyable item
            assert good.result(timeout=10).item == 5
            with pytest.raises(ValidationError):
                bad.result(timeout=10)

"""Reservoir and stratified sampling."""

from __future__ import annotations

import numpy as np

from repro.common.errors import ValidationError
from repro.common.rng import as_generator


class ReservoirSampler:
    """One-pass uniform sample of ``capacity`` items (Algorithm R).

    Feed any number of items through :meth:`offer`; at any point
    :meth:`sample` is a uniform random subset of everything seen so
    far, using O(capacity) memory.
    """

    def __init__(self, capacity: int, rng=None):
        if capacity < 1:
            raise ValidationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._rng = as_generator(rng)
        self._reservoir: list = []
        self.seen = 0

    def offer(self, item) -> None:
        """Consider one item for the reservoir."""
        self.seen += 1
        if len(self._reservoir) < self.capacity:
            self._reservoir.append(item)
            return
        slot = int(self._rng.integers(self.seen))
        if slot < self.capacity:
            self._reservoir[slot] = item

    def offer_many(self, items) -> None:
        """Consider each item in an iterable."""
        for item in items:
            self.offer(item)

    def sample(self) -> list:
        """The current sample (a copy, in insertion-replacement order)."""
        return list(self._reservoir)

    def __len__(self) -> int:
        return len(self._reservoir)


class StratifiedSampler:
    """Per-stratum reservoir sampling with a floor per stratum.

    Each stratum (e.g. each user) gets its own reservoir of
    ``max(floor, round(fraction * stratum_size))`` items, sized in a
    second configuration step: because reservoirs need their capacity up
    front, usage is two-phase — :meth:`count` everything, then
    :meth:`sample` everything. Guarantees every stratum that appeared
    keeps at least ``min(floor, stratum_size)`` items, which is what
    keeps per-user personalization alive in a sampled retrain.
    """

    def __init__(self, fraction: float, floor: int = 1, rng=None):
        if not 0.0 < fraction <= 1.0:
            raise ValidationError(f"fraction must be in (0, 1], got {fraction}")
        if floor < 0:
            raise ValidationError(f"floor must be >= 0, got {floor}")
        self.fraction = fraction
        self.floor = floor
        self._rng = as_generator(rng)

    def sample(self, items: list, key_fn) -> list:
        """Stratified subsample of ``items`` grouped by ``key_fn``."""
        strata: dict[object, list] = {}
        for item in items:
            strata.setdefault(key_fn(item), []).append(item)
        sampled: list = []
        for stratum_items in strata.values():
            quota = max(self.floor, int(round(self.fraction * len(stratum_items))))
            quota = min(quota, len(stratum_items))
            if quota == 0:  # floor 0 and a rounding-to-zero fraction
                continue
            if quota == len(stratum_items):
                sampled.extend(stratum_items)
                continue
            reservoir = ReservoirSampler(quota, rng=self._rng)
            reservoir.offer_many(stratum_items)
            sampled.extend(reservoir.sample())
        return sampled


def sample_observations(
    observations: list,
    fraction: float,
    min_per_user: int = 3,
    rng=None,
) -> list:
    """Stratified-by-uid subsample of an observation list.

    The manager's approximate-retrain path: keeps at least
    ``min_per_user`` observations for every user present (or all of
    them, if fewer), samples the rest uniformly per user.
    """
    if fraction >= 1.0:
        return list(observations)
    sampler = StratifiedSampler(fraction, floor=min_per_user, rng=rng)
    return sampler.sample(list(observations), key_fn=lambda ob: ob.uid)

"""Front-end interface: the RESTful surface of the paper's prototype.

The prototype "exposes a RESTful client interface"; this subpackage
provides the equivalent for the reproduction:

* :mod:`repro.frontend.api` — typed request/response objects and a JSON
  wire codec (one JSON object per line),
* :mod:`repro.frontend.wire` — the length-prefixed binary framed codec
  (struct-packed frames, raw-bytes ndarray payloads, correlation ids)
  negotiated on connect with JSON-lines as the universal fallback,
* :class:`VeloxClient` — an in-process client binding the API objects
  to a deployed :class:`~repro.core.velox.Velox` instance,
* :class:`VeloxServer` / :class:`RemoteClient` — a TCP server speaking
  both protocols behind a front-end knob (``"eventloop"`` selector
  server or ``"threaded"`` thread-per-connection fallback), and the
  simple one-in-flight JSON client,
* :class:`EventLoopServer` — the selector-based front end itself, for
  callers that need its tuning knobs (watermarks, frame limits),
* :class:`PipelinedClient` / :class:`ConnectionPool` — the binary
  pipelined client (many in-flight correlated requests per socket) and
  a small round-robin pool of them,
* :class:`ResilientClient` — the policy stack on top of pooled
  connections: retries under a token budget, hedged reads, per-endpoint
  circuit breaking, and the degradation ladder.
"""

from repro.frontend.api import (
    PredictApiRequest,
    TopKApiRequest,
    ObserveApiRequest,
    HealthApiRequest,
    RetrainApiRequest,
    TopKCatalogApiRequest,
    StatusApiRequest,
    AnalyticsApiRequest,
    ApiResponse,
    encode_request,
    decode_request,
    encode_response,
    decode_response,
)
from repro.frontend.client import VeloxClient
from repro.frontend.eventloop import EventLoopServer
from repro.frontend.pipelined import ConnectionPool, PipelinedClient
from repro.frontend.resilient import (
    CircuitBreaker,
    HedgePolicy,
    ResilientClient,
    RetryBudget,
    RetryPolicy,
)
from repro.frontend.server import FRONTENDS, VeloxServer, RemoteClient

__all__ = [
    "PredictApiRequest",
    "TopKApiRequest",
    "ObserveApiRequest",
    "HealthApiRequest",
    "RetrainApiRequest",
    "TopKCatalogApiRequest",
    "StatusApiRequest",
    "AnalyticsApiRequest",
    "ApiResponse",
    "encode_request",
    "decode_request",
    "encode_response",
    "decode_response",
    "VeloxClient",
    "VeloxServer",
    "EventLoopServer",
    "FRONTENDS",
    "RemoteClient",
    "PipelinedClient",
    "ConnectionPool",
    "ResilientClient",
    "CircuitBreaker",
    "HedgePolicy",
    "RetryBudget",
    "RetryPolicy",
]

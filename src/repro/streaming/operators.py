"""Stream operators: per-batch transformations and windowed aggregation."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

from repro.common.errors import ValidationError


class Operator(ABC):
    """Transforms one micro-batch into another.

    Operators may hold state across batches (windows do); ``flush`` is
    called once at end-of-stream to emit any residual state.
    """

    @abstractmethod
    def process(self, batch: list) -> list:
        """Transform one batch; the result feeds the next stage."""

    def flush(self) -> list:
        """Emit whatever remains at end-of-stream (default: nothing)."""
        return []


class Map(Operator):
    """Record-wise transformation."""

    def __init__(self, fn: Callable):
        self._fn = fn

    def process(self, batch: list) -> list:
        """Transform one micro-batch (see Operator.process)."""
        return [self._fn(record) for record in batch]


class Filter(Operator):
    """Keep records satisfying the predicate."""

    def __init__(self, predicate: Callable):
        self._predicate = predicate

    def process(self, batch: list) -> list:
        """Transform one micro-batch (see Operator.process)."""
        return [record for record in batch if self._predicate(record)]


class FlatMap(Operator):
    """Record-wise one-to-many expansion."""

    def __init__(self, fn: Callable):
        self._fn = fn

    def process(self, batch: list) -> list:
        """Transform one micro-batch (see Operator.process)."""
        return [out for record in batch for out in self._fn(record)]


class TumblingWindowAggregate(Operator):
    """Keyed aggregation over fixed-size count windows.

    Records are keyed by ``key_fn``; every ``window_size`` records per
    key, the window closes and one ``(key, aggregate)`` record is
    emitted downstream. ``zero``/``add`` define the aggregation (e.g.
    sum of ratings, click counts). Open windows flush at end-of-stream.

    This is the rollup a feedback pipeline typically performs before
    ``observe`` — e.g. averaging a session's repeated plays of the same
    song into one label.
    """

    def __init__(self, key_fn: Callable, zero, add: Callable, window_size: int):
        if window_size < 1:
            raise ValidationError(f"window_size must be >= 1, got {window_size}")
        self._key_fn = key_fn
        self._zero = zero
        self._add = add
        self.window_size = window_size
        self._windows: dict[object, tuple[object, int]] = {}

    def process(self, batch: list) -> list:
        """Transform one micro-batch (see Operator.process)."""
        import copy

        emitted = []
        for record in batch:
            key = self._key_fn(record)
            aggregate, count = self._windows.get(
                key, (copy.deepcopy(self._zero), 0)
            )
            aggregate = self._add(aggregate, record)
            count += 1
            if count >= self.window_size:
                emitted.append((key, aggregate))
                self._windows.pop(key, None)
            else:
                self._windows[key] = (aggregate, count)
        return emitted

    def open_windows(self) -> dict[object, tuple[object, int]]:
        """A ``{key: (aggregate, count)}`` snapshot of windows that have
        not yet closed.

        Consumers that answer queries over a *live* stream — the
        analytics tier's windowed rollups — need the partially-filled
        tail window alongside the closed ones; ``flush`` would emit it
        but also clear it, ending the window. The dict is a shallow
        copy: safe to iterate while processing continues, but mutable
        aggregate objects (e.g. a list ``zero``) are shared.
        """
        return dict(self._windows)

    def flush(self) -> list:
        """Emit residual window state at end-of-stream."""
        residual = [(key, agg) for key, (agg, __count) in self._windows.items()]
        self._windows.clear()
        return residual

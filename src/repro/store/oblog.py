"""The observation log: append-only feedback storage.

Every ``observe(uid, item, label)`` call lands here (paper Section 4.1):
the online learner consumes it immediately, and offline retraining reads
it later in bulk "from the storage layer". Readers address the log by
offset so a batch job can consume exactly the records that existed when
it was triggered, while new observations continue to append.
"""

from __future__ import annotations

from dataclasses import dataclass
from threading import RLock


@dataclass(frozen=True)
class Observation:
    """One unit of feedback: user ``uid`` rated/labelled item ``item_id``.

    ``item_data`` carries whatever the front-end passed for feature
    extraction (for materialized-feature models this is just the item id;
    for computed-feature models it is the raw input object).
    """

    uid: int
    item_id: int
    label: float
    item_data: object = None
    timestamp: float = 0.0


class ObservationLog:
    """A durable, append-only sequence of :class:`Observation`.

    Append returns the record's offset. ``read_range(start, stop)`` is the
    batch-consumption API; ``snapshot_offset()`` captures "everything seen
    so far" for a retraining job.
    """

    def __init__(self):
        self._records: list[Observation] = []
        self._lock = RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def append(self, observation: Observation) -> int:
        """Durably append one observation; returns its offset."""
        with self._lock:
            self._records.append(observation)
            return len(self._records) - 1

    def snapshot_offset(self) -> int:
        """Offset one past the last record at call time."""
        with self._lock:
            return len(self._records)

    def read_range(self, start: int, stop: int | None = None) -> list[Observation]:
        """Records with ``start <= offset < stop`` (``stop=None`` → end)."""
        if start < 0:
            raise ValueError(f"start must be >= 0, got {start}")
        with self._lock:
            end = len(self._records) if stop is None else stop
            if end > len(self._records):
                raise ValueError(
                    f"stop {end} is past the end of the log ({len(self._records)})"
                )
            if end < start:
                raise ValueError(f"stop {end} precedes start {start}")
            return list(self._records[start:end])

    def read_all(self) -> list[Observation]:
        """Every observation currently in the log."""
        return self.read_range(0)

    def by_user(self, uid: int, stop: int | None = None) -> list[Observation]:
        """All observations for one user up to ``stop`` (for Eq. 2 solves)."""
        return [ob for ob in self.read_range(0, stop) if ob.uid == uid]

"""Pipelined socket client: many in-flight requests per connection.

:class:`RemoteClient` sends one request and blocks for its response, so
a connection's throughput is bounded by one round trip per request and a
server-side adaptive batcher only ever sees batches of one from it.
:class:`PipelinedClient` keeps a window of correlated requests in flight
on a single socket: ``submit`` frames and sends immediately and returns
a future; a reader thread completes futures as response frames arrive
(out of order is fine — the correlation id routes them). A small
:class:`ConnectionPool` spreads submissions across several pipelined
connections for multi-connection load generators.

Both classes negotiate the binary framed protocol on connect and fall
back to JSON-lines transparently when the server predates it; in the
fallback, responses arrive strictly in order, so futures are matched
FIFO instead of by correlation id. Transport failures (timeouts,
connection loss, truncated frames) surface as
:class:`~repro.common.errors.TransportError` with the connection closed
and every pending future failed — nothing blocks forever on a dead
socket.
"""

from __future__ import annotations

import socket
import threading
import time
from collections import deque
from concurrent.futures import Future

from repro.common.errors import OverloadedError, TransportError
from repro.frontend import wire
from repro.frontend.api import (
    AnalyticsApiRequest,
    ApiResponse,
    decode_response,
    encode_request,
)

#: Protocol names reported by :attr:`PipelinedClient.protocol`.
PROTOCOL_BINARY = "binary"
PROTOCOL_JSON = "json"


class PipelinedClient:
    """One socket, many in-flight correlated requests.

    Usage::

        with PipelinedClient(host, port) as client:
            futures = [client.submit(request) for request in burst]
            responses = [f.result() for f in futures]
            one = client.call(request)          # submit + wait

    ``timeout`` bounds connect and each blocking ``call``; ``submit``
    itself never blocks on the network beyond the socket send buffer.

    ``max_inflight`` caps the pipelining window. With the default
    ``block_on_full=True``, ``submit`` waits (up to ``timeout``) for a
    response to free a slot — a closed-loop generator self-paces to the
    server instead of queueing unboundedly. With ``block_on_full=False``
    a full window raises :class:`~repro.common.errors.OverloadedError`
    immediately, for callers that shed their own load.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 10.0,
        prefer_binary: bool = True,
        max_inflight: int | None = None,
        block_on_full: bool = True,
    ):
        if max_inflight is not None and max_inflight < 1:
            raise TransportError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        self._max_inflight = max_inflight
        self._block_on_full = block_on_full
        self._timeout = timeout
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._rfile = self._sock.makefile("rb")
        self._lock = threading.Lock()
        #: signalled whenever an in-flight slot frees (response arrived
        #: or the connection died) — what blocked submits wait on.
        self._slot = threading.Condition(self._lock)
        self._closed = False
        #: set on any fatal transport error (reader death, failed send)
        #: — the connection is unusable even though close() wasn't called.
        self._dead = False
        self._next_corr = 0
        #: corr id -> future (binary) / FIFO of futures (JSON fallback).
        self._pending: dict[int, Future] = {}
        self._fifo: deque[Future] = deque()
        #: JSON-mode futures whose callers gave up waiting. They keep
        #: their deque position (FIFO response matching needs it) but no
        #: longer consume a ``max_inflight`` slot; the reader discards
        #: their responses on arrival.
        self._abandoned: set[Future] = set()
        #: calls abandoned at timeout (window slots recovered).
        self.timed_out = 0
        #: binary payload dialect negotiated with the server (2 adds the
        #: optional trailing deadline/degraded request fields).
        self.wire_version = 1
        self.protocol = (
            self._negotiate() if prefer_binary else PROTOCOL_JSON
        )
        # ``timeout`` bounds connect and negotiation only. Clear it so
        # the reader thread blocks indefinitely between responses — an
        # idle window is not a transport failure; per-call deadlines are
        # enforced on the futures in ``call``.
        self._sock.settimeout(None)
        self._reader = threading.Thread(
            target=self._read_loop, name="pipelined-reader", daemon=True
        )
        self._reader.start()

    def _negotiate(self) -> str:
        """Offer binary v2; accept whatever the server answers.

        A v2 binary server echoes the v2 hello line; a v1 binary server
        may echo the v1 hello (we speak v1 frames to it); a JSON-lines
        server answers the (to it, malformed) hello with a one-line
        error envelope, which tells us to fall back.
        """
        try:
            self._sock.sendall(wire.HELLO_V2)
            answer = self._rfile.readline()
        except OSError as err:
            self._teardown()
            raise TransportError(f"protocol negotiation failed: {err}") from err
        if answer == wire.HELLO_V2:
            self.wire_version = 2
            return PROTOCOL_BINARY
        if answer == wire.HELLO:
            self.wire_version = 1
            return PROTOCOL_BINARY
        if answer.startswith(b"{"):
            return PROTOCOL_JSON  # old server: its error reply is discarded
        self._teardown()
        raise TransportError(
            f"protocol negotiation failed: unexpected answer {answer!r}"
        )

    # -- submission ----------------------------------------------------------

    def _inflight_locked(self) -> int:
        """Window occupancy; abandoned FIFO tombstones don't count."""
        return len(self._pending) + len(self._fifo) - len(self._abandoned)

    def _reserve_slot_locked(self) -> None:
        """Enforce the ``max_inflight`` window; callers hold the lock."""
        if self._max_inflight is None:
            return
        inflight = self._inflight_locked()
        if inflight < self._max_inflight:
            return
        if not self._block_on_full:
            raise OverloadedError(
                "client-pipeline",
                f"window full ({inflight}/{self._max_inflight} in flight)",
            )
        deadline = time.monotonic() + self._timeout
        while self._inflight_locked() >= self._max_inflight:
            if self._closed or self._dead:
                raise TransportError("client is closed")
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TransportError(
                    f"pipeline window full ({self._max_inflight} in "
                    f"flight) for {self._timeout}s"
                )
            self._slot.wait(remaining)
        if self._closed or self._dead:
            raise TransportError("client is closed")

    def submit(self, request) -> "Future[ApiResponse]":
        """Send one request without waiting; the future yields its
        :class:`~repro.frontend.api.ApiResponse`."""
        future: Future = Future()
        with self._lock:
            if self._closed or self._dead:
                raise TransportError("client is closed")
            self._reserve_slot_locked()
            if self.protocol == PROTOCOL_BINARY:
                corr_id = self._next_corr
                self._next_corr += 1
                frame = wire.encode_request_frame(
                    request, corr_id, wire_version=self.wire_version
                )
                future._velox_corr = corr_id
                self._pending[corr_id] = future
                try:
                    self._sock.sendall(frame)
                except OSError as err:
                    self._pending.pop(corr_id, None)
                    self._fail_pending_locked(err)
                    raise TransportError(f"send failed: {err}") from err
            else:
                line = (encode_request(request) + "\n").encode("utf-8")
                self._fifo.append(future)
                try:
                    self._sock.sendall(line)
                except OSError as err:
                    self._fifo.remove(future)
                    self._fail_pending_locked(err)
                    raise TransportError(f"send failed: {err}") from err
        return future

    def call(self, request, timeout: float | None = None) -> ApiResponse:
        """Blocking convenience: submit and wait for the response.

        A timed-out call abandons its future — the window slot is
        reclaimed (``timed_out`` counts these) instead of leaking until
        the connection dies.
        """
        future = self.submit(request)
        try:
            return future.result(timeout if timeout is not None else self._timeout)
        except TimeoutError as err:
            self._abandon(future)
            raise TransportError(
                f"no response within {timeout or self._timeout}s"
            ) from err

    def _abandon(self, future: Future) -> None:
        """Release a timed-out call's window slot.

        Binary mode drops the correlation entry outright (a late
        response for an unknown id is ignored by the reader). JSON mode
        must keep the future's FIFO position so subsequent responses
        still match their callers; it is tombstoned instead and skipped
        by the window accounting.
        """
        with self._lock:
            self.timed_out += 1
            corr_id = getattr(future, "_velox_corr", None)
            if corr_id is not None:
                if self._pending.pop(corr_id, None) is not None:
                    self._slot.notify()
            elif future in self._fifo and future not in self._abandoned:
                self._abandoned.add(future)
                self._slot.notify()

    def analytics(
        self,
        uid: int | None = None,
        item: int | None = None,
        time_start: float | None = None,
        time_end: float | None = None,
        group_by: str | None = None,
        agg: str = "count",
        force_scan: bool = False,
        model: str | None = None,
        timeout: float | None = None,
    ) -> ApiResponse:
        """Blocking convenience for one observation-log rollup query."""
        return self.call(
            AnalyticsApiRequest(
                uid=uid,
                item=item,
                time_start=time_start,
                time_end=time_end,
                group_by=group_by,
                agg=agg,
                force_scan=force_scan,
                model=model,
            ),
            timeout=timeout,
        )

    @property
    def in_flight(self) -> int:
        """Number of submitted requests still awaiting responses."""
        with self._lock:
            return self._inflight_locked()

    @property
    def closed(self) -> bool:
        """Whether this connection can no longer carry requests —
        explicitly closed, or dead after a transport failure."""
        with self._lock:
            return self._closed or self._dead

    # -- reader thread -------------------------------------------------------

    def _read_loop(self) -> None:
        try:
            while True:
                if self.protocol == PROTOCOL_BINARY:
                    frame = wire.read_frame(self._rfile)
                    if frame is None:
                        raise TransportError("server closed the connection")
                    opcode, corr_id, payload = frame
                    if opcode != wire.OP_RESPONSE:
                        raise TransportError(
                            f"unexpected opcode {opcode} from server"
                        )
                    response = wire.decode_response_payload(payload)
                    with self._lock:
                        future = self._pending.pop(corr_id, None)
                        self._slot.notify()
                else:
                    line = self._rfile.readline()
                    if not line:
                        raise TransportError("server closed the connection")
                    response = decode_response(line.decode("utf-8"))
                    with self._lock:
                        future = (
                            self._fifo.popleft() if self._fifo else None
                        )
                        if future is not None and future in self._abandoned:
                            # The caller timed out long ago; its slot was
                            # already released. Discard the response.
                            self._abandoned.discard(future)
                            future = None
                        self._slot.notify()
                if future is not None:
                    future.set_result(response)
        except Exception as err:
            with self._lock:
                closing = self._closed
                self._fail_pending_locked(err)
            if not closing:
                self._teardown()

    def _fail_pending_locked(self, cause: Exception) -> None:
        """Fail every outstanding future; callers hold ``self._lock``.

        Also marks the connection dead: every caller has just hit a
        fatal transport condition, so pools must stop routing onto it.
        """
        self._dead = True
        error = (
            cause
            if isinstance(cause, TransportError)
            else TransportError(f"connection lost: {cause}")
        )
        for future in list(self._pending.values()):
            if not future.done():
                future.set_exception(error)
        self._pending.clear()
        while self._fifo:
            future = self._fifo.popleft()
            if future not in self._abandoned and not future.done():
                future.set_exception(error)
        self._abandoned.clear()
        self._slot.notify_all()

    # -- lifecycle -----------------------------------------------------------

    def _teardown(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._rfile.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def close(self) -> None:
        """Close the connection; outstanding futures fail with
        :class:`TransportError`."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._fail_pending_locked(TransportError("client closed"))
        self._teardown()
        if threading.current_thread() is not self._reader:
            self._reader.join(timeout=5)

    def __enter__(self) -> "PipelinedClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class ConnectionPool:
    """A self-healing pool of :class:`PipelinedClient` connections.

    ``submit``/``call`` round-robin across the pool, so a load generator
    gets both pipelining depth (per connection) and connection
    parallelism without managing sockets itself. Dead connections (a
    restarted server, a dropped socket) are detected at pick time and
    transparently reconnected with a doubling, capped backoff — the
    pool never round-robins onto a closed socket forever. Reconnect
    attempts and successes are surfaced as counters.
    """

    def __init__(
        self,
        host: str,
        port: int,
        size: int = 4,
        timeout: float = 10.0,
        prefer_binary: bool = True,
        reconnect_backoff: float = 0.05,
        max_reconnect_backoff: float = 2.0,
        max_inflight: int | None = None,
        block_on_full: bool = True,
        breaker=None,
    ):
        """``breaker`` (optional) is a
        :class:`~repro.frontend.resilient.CircuitBreaker` guarding this
        pool's target: every submit/call asks it for permission first
        (raising :class:`~repro.common.errors.CircuitOpenError` while
        open) and reports transport success/failure back to it.
        """
        if size < 1:
            raise TransportError(f"pool size must be >= 1, got {size}")
        if reconnect_backoff <= 0 or max_reconnect_backoff < reconnect_backoff:
            raise TransportError(
                "reconnect backoff must satisfy "
                f"0 < initial ({reconnect_backoff}) <= "
                f"cap ({max_reconnect_backoff})"
            )
        self._host = host
        self._port = port
        self._timeout = timeout
        self._prefer_binary = prefer_binary
        self._max_inflight = max_inflight
        self._block_on_full = block_on_full
        self._initial_backoff = reconnect_backoff
        self._max_backoff = max_reconnect_backoff
        self._breaker = breaker
        self._clients: list[PipelinedClient | None] = []
        #: per-slot current backoff and earliest next attempt (monotonic).
        self._backoff: list[float] = [reconnect_backoff] * size
        self._retry_at: list[float] = [0.0] * size
        #: successful transparent reconnections across the pool's life.
        self.reconnects = 0
        #: reconnect attempts that failed (the server was still down).
        self.failed_reconnects = 0
        self._closed = False
        # Connect eagerly but tolerate a down endpoint: a dead slot is
        # left None (in backoff) and healed by the reconnect path on a
        # later pick. A resilience stack (breaker/retry) sitting on top
        # of the pool must be constructible while its target is down.
        now = time.monotonic()
        for index in range(size):
            try:
                self._clients.append(self._connect())
            except (TransportError, OSError):
                self.failed_reconnects += 1
                self._clients.append(None)
                self._retry_at[index] = now + self._backoff[index]
                self._backoff[index] = min(
                    self._backoff[index] * 2, self._max_backoff
                )
        self._lock = threading.Lock()
        self._next = 0

    def _connect(self) -> PipelinedClient:
        return PipelinedClient(
            self._host,
            self._port,
            timeout=self._timeout,
            prefer_binary=self._prefer_binary,
            max_inflight=self._max_inflight,
            block_on_full=self._block_on_full,
        )

    def __len__(self) -> int:
        return len(self._clients)

    @property
    def protocol(self) -> str:
        """The negotiated protocol (uniform across the pool)."""
        for client in self._clients:
            if client is not None:
                return client.protocol
        raise TransportError("every pooled connection is down")

    def _reconnect_locked(self, index: int) -> PipelinedClient | None:
        """Try to heal one dead slot; None while in backoff or still down."""
        now = time.monotonic()
        if now < self._retry_at[index]:
            return None
        try:
            client = self._connect()
        except Exception:
            self.failed_reconnects += 1
            self._retry_at[index] = now + self._backoff[index]
            self._backoff[index] = min(
                self._backoff[index] * 2, self._max_backoff
            )
            self._clients[index] = None
            return None
        self._clients[index] = client
        self._backoff[index] = self._initial_backoff
        self._retry_at[index] = 0.0
        self.reconnects += 1
        return client

    def _pick(self) -> PipelinedClient:
        """The next usable connection, healing dead slots on the way.

        Scans at most one full round: live slots win immediately; dead
        slots whose backoff has elapsed get one reconnect attempt. When
        every slot is down (and backing off), the submission fails with
        :class:`TransportError` rather than blocking.
        """
        with self._lock:
            if self._closed:
                raise TransportError("pool is closed")
            for _ in range(len(self._clients)):
                index = self._next % len(self._clients)
                self._next += 1
                client = self._clients[index]
                if client is not None and not client.closed:
                    return client
                healed = self._reconnect_locked(index)
                if healed is not None:
                    return healed
            raise TransportError(
                f"all {len(self._clients)} pooled connections are down "
                f"({self.failed_reconnects} failed reconnects so far)"
            )

    def submit(self, request) -> "Future[ApiResponse]":
        """Submit on the next usable connection (round-robin)."""
        if self._breaker is not None:
            self._breaker.before_call()
        try:
            return self._pick().submit(request)
        except TransportError:
            if self._breaker is not None:
                self._breaker.on_failure()
            raise

    def call(self, request, timeout: float | None = None) -> ApiResponse:
        """Blocking submit + wait on the next usable connection."""
        if self._breaker is not None:
            self._breaker.before_call()
        try:
            response = self._pick().call(request, timeout=timeout)
        except TransportError:
            if self._breaker is not None:
                self._breaker.on_failure()
            raise
        if self._breaker is not None:
            self._breaker.on_success()
        return response

    def close(self) -> None:
        """Close every pooled connection."""
        self._closed = True
        for client in self._clients:
            if client is not None:
                client.close()

    def __enter__(self) -> "ConnectionPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

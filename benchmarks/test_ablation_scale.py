"""Ablation: columnar slab user-weight store vs boxed dict states at scale.

The paper's serving story needs user-weight lookups to stay memory-speed
as the user base grows. This ablation sweeps deployments at 10k / 100k /
1M users and measures, for both physical layouts (``user_weight_store``
= "slab" vs "dict"):

* **Per-request latency** — p50/p99 of point predictions over random
  users; the slab claim is *flat* latency across three orders of
  magnitude of users.
* **Per-user resident bytes** — slab: one ``rank*8``-byte row plus an
  index slot; dict: a boxed ``UserModelState`` per user (priors, online
  learning scaffolding, per-object headers).
* **Snapshot install** — replica snapshot transfer (export + install)
  per layout; the slab path is an O(bytes) array copy, the dict path a
  deep copy per state.

Also asserts the wire codec's single-copy ndarray encode: a contiguous
feature vector crosses ``pack_value`` without a forced intermediate
copy.

Writes the human series to ``benchmarks/results/ablation_scale.txt`` and
the machine-readable ``BENCH_scale.json`` at the repo root.

Set ``SCALE_SMOKE=1`` for the fast CI configuration (10k tier only).
"""

from __future__ import annotations

import os
import pathlib
import sys
import time

import numpy as np

from repro import Velox, VeloxConfig
from repro.core.models import MatrixFactorizationModel
from repro.frontend import PredictApiRequest, wire
from repro.replication import PartitionReplica
from repro.store import ArrayMapping
from repro.tools.bench_report import write_json_summary

from conftest import write_result

SMOKE = os.environ.get("SCALE_SMOKE", "") not in ("", "0")

RANK = 10
NUM_ITEMS = 200
NUM_NODES = 8
USER_TIERS = [10_000] if SMOKE else [10_000, 100_000, 1_000_000]
NUM_PREDICTIONS = 500 if SMOKE else 2000

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def _deploy(num_users: int, store: str) -> tuple[Velox, MatrixFactorizationModel]:
    rng = np.random.default_rng(13)
    model = MatrixFactorizationModel(
        "scale",
        item_factors=rng.normal(0, 0.1, (NUM_ITEMS, RANK)),
        item_bias=rng.normal(0, 0.1, NUM_ITEMS),
        global_mean=3.5,
    )
    ids = np.arange(num_users, dtype=np.int64)
    matrix = rng.normal(0, 0.1, (num_users, model.dimension))
    velox = Velox.deploy(
        VeloxConfig(
            num_nodes=NUM_NODES,
            user_weight_store=store,
            # Keep caches out of the measurement: every predict must hit
            # the user-weight store, not a memoized score.
            prediction_cache_capacity=1,
        ),
        auto_retrain=False,
    )
    velox.add_model(model, initial_user_weights=ArrayMapping(ids, matrix))
    return velox, model


def _latency_quantiles(velox: Velox, num_users: int) -> dict:
    rng = np.random.default_rng(99)
    uids = rng.integers(num_users, size=NUM_PREDICTIONS)
    items = rng.integers(NUM_ITEMS, size=NUM_PREDICTIONS)
    samples = np.empty(NUM_PREDICTIONS)
    for i in range(NUM_PREDICTIONS):
        start = time.perf_counter()
        velox.predict(None, int(uids[i]), int(items[i]))
        samples[i] = time.perf_counter() - start
    return {
        "p50_us": round(float(np.percentile(samples, 50)) * 1e6, 2),
        "p99_us": round(float(np.percentile(samples, 99)) * 1e6, 2),
    }


def _object_bytes(value: object) -> int:
    """Shallow-ish footprint of one boxed state: the object, its dict,
    and its immediate array/list attributes."""
    total = sys.getsizeof(value)
    attrs = getattr(value, "__dict__", None)
    if attrs is None:
        return total
    total += sys.getsizeof(attrs)
    for attr in attrs.values():
        if isinstance(attr, np.ndarray):
            total += sys.getsizeof(attr)
        elif isinstance(attr, list):
            total += sys.getsizeof(attr) + sum(sys.getsizeof(x) for x in attr)
        else:
            total += sys.getsizeof(attr)
    return total


def _per_user_bytes(velox: Velox, num_users: int, store: str) -> float:
    table = velox.manager.user_state_table("scale")
    if store == "slab":
        return table.memory_bytes() / num_users
    # Dict mode: sample boxed states and add the container overhead.
    rng = np.random.default_rng(7)
    sample = rng.integers(num_users, size=min(200, num_users))
    state_bytes = float(
        np.mean([_object_bytes(table.get(int(uid))) for uid in sample])
    )
    container = sum(
        sys.getsizeof(table.partition(i)._store.objects)
        for i in range(table.num_partitions)
    )
    entry_tuple = sys.getsizeof(("x", 1))
    return state_bytes + entry_tuple + container / num_users


def _snapshot_transfer_seconds(velox: Velox) -> dict:
    """Export + install every partition onto a fresh replica (the
    snapshot-transfer catch-up path), timed separately."""
    table = velox.manager.user_state_table("scale")
    export_s = install_s = 0.0
    for index in range(table.num_partitions):
        partition = table.partition(index)
        start = time.perf_counter()
        state, sequence = partition.export_state()
        export_s += time.perf_counter() - start
        replica = PartitionReplica(
            table.name, index, node_id=0,
            value_policy=getattr(table, "value_policy", None),
        )
        start = time.perf_counter()
        replica.install_snapshot(state, sequence)
        install_s += time.perf_counter() - start
    return {
        "export_s": round(export_s, 4),
        "install_s": round(install_s, 4),
        "total_s": round(export_s + install_s, 4),
    }


def _measure_tier(num_users: int, store: str) -> dict:
    velox, _model = _deploy(num_users, store)
    try:
        row = {"users": num_users, "store": store}
        row.update(_latency_quantiles(velox, num_users))
        row["per_user_bytes"] = round(_per_user_bytes(velox, num_users, store), 1)
        row["snapshot"] = _snapshot_transfer_seconds(velox)
        return row
    finally:
        velox.shutdown()


def test_scale_summary():
    # The wire codec's single-copy claim: a contiguous feature vector is
    # appended straight from its buffer, never through an intermediate
    # materialization.
    wire.reset_ndarray_forced_copies()
    feature = np.ascontiguousarray(np.random.default_rng(3).normal(size=256))
    frame = wire.encode_request_frame(PredictApiRequest(uid=1, item=feature), 0)
    assert len(frame) > feature.nbytes
    forced_copies = wire.ndarray_forced_copies()
    assert forced_copies == 0

    rows = []
    for num_users in USER_TIERS:
        for store in ("slab", "dict"):
            rows.append(_measure_tier(num_users, store))

    by_tier = {
        users: {row["store"]: row for row in rows if row["users"] == users}
        for users in USER_TIERS
    }

    # -- shape claims ------------------------------------------------------
    # Flat per-request latency across the sweep (slab path).
    slab_p50 = [by_tier[u]["slab"]["p50_us"] for u in USER_TIERS]
    assert max(slab_p50) < 3.0 * min(slab_p50), slab_p50

    # >= 2x per-user memory reduction vs boxed dict states, every tier.
    for users in USER_TIERS:
        slab_b = by_tier[users]["slab"]["per_user_bytes"]
        dict_b = by_tier[users]["dict"]["per_user_bytes"]
        assert dict_b >= 2.0 * slab_b, (users, slab_b, dict_b)

    # Snapshot install at the largest tier: O(bytes) array adoption vs a
    # per-state deep copy.
    largest = USER_TIERS[-1]
    slab_install = by_tier[largest]["slab"]["snapshot"]["install_s"]
    dict_install = by_tier[largest]["dict"]["snapshot"]["install_s"]
    required = 3.0 if SMOKE else 10.0
    assert dict_install >= required * slab_install, (slab_install, dict_install)

    # -- report ------------------------------------------------------------
    lines = [
        f"== user-weight store scale sweep (rank {RANK}, dim {RANK + 2}, "
        f"{NUM_NODES} nodes, {NUM_PREDICTIONS} predictions/tier"
        f"{', SMOKE' if SMOKE else ''}) ==",
        "users      store  p50_us   p99_us   bytes/user  export_s  install_s",
    ]
    for row in rows:
        lines.append(
            f"{row['users']:<11d}{row['store']:<7}{row['p50_us']:<9.1f}"
            f"{row['p99_us']:<9.1f}{row['per_user_bytes']:<12.1f}"
            f"{row['snapshot']['export_s']:<10.4f}"
            f"{row['snapshot']['install_s']:.4f}"
        )
    lines.append("")
    for users in USER_TIERS:
        tier = by_tier[users]
        memory_x = tier["dict"]["per_user_bytes"] / tier["slab"]["per_user_bytes"]
        install_x = (
            tier["dict"]["snapshot"]["install_s"]
            / max(tier["slab"]["snapshot"]["install_s"], 1e-9)
        )
        lines.append(
            f"{users} users: slab saves {memory_x:.1f}x memory/user, "
            f"installs snapshots {install_x:.1f}x faster"
        )
    lines.append("")
    lines.append(
        f"slab p50 across tiers: {slab_p50} us "
        f"(max/min {max(slab_p50) / min(slab_p50):.2f}x)"
    )
    lines.append(f"wire ndarray forced copies for contiguous encode: {forced_copies}")
    write_result("ablation_scale", lines)

    write_json_summary(
        REPO_ROOT / "BENCH_scale.json",
        "ablation_scale",
        {
            "smoke": SMOKE,
            "workload": {
                "rank": RANK,
                "dimension": RANK + 2,
                "num_items": NUM_ITEMS,
                "num_nodes": NUM_NODES,
                "predictions_per_tier": NUM_PREDICTIONS,
                "user_tiers": USER_TIERS,
            },
            "tiers": rows,
            "slab_p50_flatness_max_over_min": round(
                max(slab_p50) / min(slab_p50), 3
            ),
            "memory_reduction_x": {
                str(u): round(
                    by_tier[u]["dict"]["per_user_bytes"]
                    / by_tier[u]["slab"]["per_user_bytes"],
                    2,
                )
                for u in USER_TIERS
            },
            "snapshot_install_speedup_x": {
                str(u): round(
                    by_tier[u]["dict"]["snapshot"]["install_s"]
                    / max(by_tier[u]["slab"]["snapshot"]["install_s"], 1e-9),
                    2,
                )
                for u in USER_TIERS
            },
            "wire_forced_copies_contiguous": forced_copies,
        },
    )

"""Streaming statistics for online model-quality monitoring.

The model manager keeps "running per-user aggregates of errors" (paper
Section 4.3); these accumulators provide numerically stable running
moments, a fixed-size window mean for recent-loss trend detection, and
an exponentially weighted average.
"""

from __future__ import annotations

import math
from collections import deque

from repro.common.errors import ValidationError


class StreamingMeanVar:
    """Welford's online mean/variance accumulator."""

    def __init__(self):
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def update(self, value: float) -> None:
        """Accumulate one value."""
        if math.isnan(value):
            raise ValidationError("cannot accumulate NaN")
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)

    def update_many(self, values) -> None:
        """Accumulate an iterable of values."""
        for value in values:
            self.update(value)

    @property
    def mean(self) -> float:
        """Running mean; raises when empty."""
        if self.count == 0:
            raise ValidationError("mean of an empty accumulator")
        return self._mean

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1); 0.0 with fewer than two samples."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation (ddof=1)."""
        return math.sqrt(self.variance)

    def merge(self, other: "StreamingMeanVar") -> "StreamingMeanVar":
        """Combine two accumulators (parallel Welford merge)."""
        merged = StreamingMeanVar()
        total = self.count + other.count
        if total == 0:
            return merged
        delta = other._mean - self._mean
        merged.count = total
        merged._mean = self._mean + delta * other.count / total
        merged._m2 = (
            self._m2 + other._m2 + delta * delta * self.count * other.count / total
        )
        return merged


class WindowedMean:
    """Mean over the most recent ``window`` values (O(1) updates)."""

    def __init__(self, window: int):
        if window < 1:
            raise ValidationError(f"window must be >= 1, got {window}")
        self.window = window
        self._values: deque[float] = deque(maxlen=window)
        self._sum = 0.0

    def update(self, value: float) -> None:
        """Accumulate one value."""
        if math.isnan(value):
            raise ValidationError("cannot accumulate NaN")
        if len(self._values) == self.window:
            self._sum -= self._values[0]
        self._values.append(value)
        self._sum += value

    @property
    def count(self) -> int:
        """Number of values currently in the window."""
        return len(self._values)

    @property
    def full(self) -> bool:
        """Whether the window has reached its capacity."""
        return len(self._values) == self.window

    @property
    def mean(self) -> float:
        """Running mean; raises when empty."""
        if not self._values:
            raise ValidationError("mean of an empty window")
        return self._sum / len(self._values)


class Ewma:
    """Exponentially weighted moving average."""

    def __init__(self, alpha: float):
        if not 0.0 < alpha <= 1.0:
            raise ValidationError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._value: float | None = None

    def update(self, value: float) -> None:
        """Accumulate one value."""
        if math.isnan(value):
            raise ValidationError("cannot accumulate NaN")
        if self._value is None:
            self._value = value
        else:
            self._value = self.alpha * value + (1.0 - self.alpha) * self._value

    @property
    def value(self) -> float:
        """Current smoothed value; raises when empty."""
        if self._value is None:
            raise ValidationError("value of an empty EWMA")
        return self._value

"""The paper's running example: a song-recommendation data product.

An online music service backed by Velox, exercised over the TCP
front-end exactly as a web application would use it:

* a catalog of songs with planted listener preferences,
* the Velox server process serving ``predict`` / ``top_k`` / ``observe``
  over JSON lines,
* simulated listeners whose sessions mix radio-style topK requests with
  explicit ratings,
* the "DeadHead problem": bandit-driven topK occasionally plays a deep
  cut to learn whether the listener is secretly a fan (paper Section 5),
* model staleness: taste drifts mid-run, the manager detects the loss
  spike and retrains automatically.

Run:  python examples/music_recommender.py
"""

import numpy as np

from repro import Velox, VeloxConfig
from repro.batch import BatchContext
from repro.core.models import MatrixFactorizationModel
from repro.core.offline import als_train
from repro.data import SynthLensConfig, generate_synthlens
from repro.frontend import (
    ObserveApiRequest,
    PredictApiRequest,
    RemoteClient,
    TopKApiRequest,
    VeloxServer,
)

NUM_LISTENERS = 120
NUM_SONGS = 150


def train_and_deploy():
    """Offline-train the catalog model and stand up the serving tier."""
    lens = generate_synthlens(
        SynthLensConfig(
            num_users=NUM_LISTENERS, num_items=NUM_SONGS, rank=6,
            ratings_per_user_mean=30, min_ratings_per_user=20, seed=99,
        )
    )
    batch = BatchContext(default_parallelism=4)
    als = als_train(
        batch,
        [(r.uid, r.item_id, r.rating) for r in lens.ratings],
        rank=6,
        num_items=NUM_SONGS,
        num_iterations=6,
    )
    model = MatrixFactorizationModel(
        "songs", als.item_factors, als.item_bias, als.global_mean
    )
    weights = {
        uid: model.pack_user_weights(als.user_factors[uid], als.user_bias[uid])
        for uid in als.user_factors
    }
    velox = Velox.deploy(
        VeloxConfig(
            num_nodes=4,
            staleness_window=50,
            min_observations_for_staleness=150,
            staleness_loss_ratio=2.0,
            bandit_exploration=5.0,
        ),
        auto_retrain=True,
    )
    velox.add_model(model, initial_user_weights=weights)
    return velox, lens


def listener_taste(lens, drifted: bool):
    """The environment: listeners' true ratings, optionally drifted."""

    def taste(uid: int, song: int) -> float:
        score = lens.true_score(uid, song)
        if drifted:
            # Tastes inverted around the midpoint: yesterday's hits flop.
            score = 5.5 - score
        return float(np.clip(score + np.random.default_rng((uid, song)).normal(0, 0.2), 0.5, 5.0))

    return taste


def main() -> None:
    velox, lens = train_and_deploy()
    rng = np.random.default_rng(1)

    with VeloxServer(velox) as server:
        print(f"Velox serving songs on {server.host}:{server.port}")
        with RemoteClient(server.host, server.port) as client:
            # -- a radio session -------------------------------------------------
            listener = 17
            slate = [int(s) for s in rng.choice(NUM_SONGS, size=20, replace=False)]
            response = client.call(
                TopKApiRequest(uid=listener, items=tuple(slate), k=5)
            )
            playlist = response.payload["items"]
            print(f"\nlistener {listener}'s greedy playlist:")
            for entry in playlist:
                print(f"  song {entry['item']:>3}  predicted {entry['score']:.2f}")

            # -- the DeadHead problem -------------------------------------------
            # Bandit-ranked topK mixes in uncertain songs to learn faster.
            explored = client.call(
                TopKApiRequest(uid=listener, items=tuple(slate), k=5, policy="linucb")
            )
            bandit_items = {e["item"] for e in explored.payload["items"]}
            greedy_items = {e["item"] for e in playlist}
            deep_cuts = bandit_items - greedy_items
            print(f"\nbandit playlist explores deep cuts: {sorted(deep_cuts)}")

            # -- feedback loop: listeners rate what they hear ---------------------
            taste = listener_taste(lens, drifted=False)
            print("\nsimulating 300 listening sessions with feedback ...")
            for __ in range(300):
                uid = int(rng.integers(NUM_LISTENERS))
                slate = tuple(int(s) for s in rng.choice(NUM_SONGS, 15, replace=False))
                top = client.call(TopKApiRequest(uid=uid, items=slate, k=1, policy="linucb"))
                song = top.payload["items"][0]["item"]
                rating = taste(uid, song)
                client.call(ObserveApiRequest(uid=uid, item=song, label=rating))
            health = client.call(PredictApiRequest(uid=listener, item=0))
            print(f"model still v{velox.model().version}; serving fine: "
                  f"{health.payload['score']:.2f}")

            # -- taste drift triggers automatic retraining ------------------------
            print("\ntastes drift: yesterday's hits start flopping ...")
            drifted = listener_taste(lens, drifted=True)
            sessions = 0
            while velox.model().version == 0 and sessions < 2000:
                uid = int(rng.integers(NUM_LISTENERS))
                song = int(rng.integers(NUM_SONGS))
                client.call(
                    ObserveApiRequest(uid=uid, item=song, label=drifted(uid, song))
                )
                sessions += 1
            if velox.model().version > 0:
                event = velox.manager.retrain_events[-1]
                print(
                    f"manager detected staleness after {sessions} drifted sessions "
                    f"and retrained to v{event.new_version} "
                    f"({event.observations_used} observations, "
                    f"reason: {event.reason!r})"
                )
            else:
                print("no retrain triggered within the session budget")

    print("\nversion history:")
    for record in velox.registry.history("songs"):
        print(f"  v{record.version}: {record.note}")


if __name__ == "__main__":
    main()

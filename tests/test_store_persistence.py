"""Checkpoint/restore of the store to disk (the HDFS-backing analogue)."""

import numpy as np
import pytest

from repro.common.errors import StorageError
from repro.store import (
    Observation,
    VeloxStore,
    checkpoint_store,
    restore_store,
)


@pytest.fixture
def populated_store():
    store = VeloxStore(default_partitions=3)
    users = store.create_table("users", partitioner=lambda k: k % 3)
    for uid in range(12):
        users.put(uid, np.arange(4, dtype=float) * uid)
    users.put(3, np.ones(4))  # bump a version
    items = store.create_table("items")
    items.put("song:1", {"title": "New Potato Caboose"})
    log = store.create_log("observations:songs")
    for i in range(5):
        log.append(Observation(uid=i, item_id=i * 2, label=float(i)))
    return store


class TestCheckpointRestore:
    def test_roundtrip_tables(self, populated_store, tmp_path):
        checkpoint_store(populated_store, tmp_path)
        restored = restore_store(tmp_path, partitioners={"users": lambda k: k % 3})
        users = restored.table("users")
        assert len(users) == 12
        assert np.array_equal(users.get(5), np.arange(4.0) * 5)
        assert np.array_equal(users.get(3), np.ones(4))
        assert restored.table("items").get("song:1")["title"] == "New Potato Caboose"

    def test_versions_preserved(self, populated_store, tmp_path):
        checkpoint_store(populated_store, tmp_path)
        restored = restore_store(tmp_path, partitioners={"users": lambda k: k % 3})
        assert restored.table("users").get_versioned(3).version == 2
        assert restored.table("users").get_versioned(5).version == 1

    def test_partition_layout_preserved(self, populated_store, tmp_path):
        checkpoint_store(populated_store, tmp_path)
        restored = restore_store(tmp_path, partitioners={"users": lambda k: k % 3})
        users = restored.table("users")
        assert users.num_partitions == 3
        assert dict(users.scan_partition(1)).keys() == {1, 4, 7, 10}

    def test_logs_roundtrip(self, populated_store, tmp_path):
        checkpoint_store(populated_store, tmp_path)
        restored = restore_store(tmp_path)
        log = restored.log("observations:songs")
        assert len(log) == 5
        assert log.read_all()[2].label == 2.0

    def test_restored_store_recovers_from_failure(self, populated_store, tmp_path):
        """Restore writes through the journal, so post-restore recovery
        still works (the restored store is a first-class store)."""
        checkpoint_store(populated_store, tmp_path)
        restored = restore_store(tmp_path, partitioners={"users": lambda k: k % 3})
        restored.fail_node(0)
        restored.recover_node(0)
        assert np.array_equal(restored.table("users").get(6), np.arange(4.0) * 6)

    def test_checkpoint_refuses_failed_partitions(self, populated_store, tmp_path):
        populated_store.fail_node(1)
        with pytest.raises(StorageError):
            checkpoint_store(populated_store, tmp_path)

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            restore_store(tmp_path)

    def test_overwrite_previous_checkpoint(self, populated_store, tmp_path):
        checkpoint_store(populated_store, tmp_path)
        populated_store.table("users").put(99, np.zeros(4))
        checkpoint_store(populated_store, tmp_path)
        restored = restore_store(tmp_path, partitioners={"users": lambda k: k % 3})
        assert 99 in restored.table("users")

    def test_odd_table_names_do_not_collide(self, tmp_path):
        store = VeloxStore()
        store.create_table("a:b")
        store.create_table("a_b")
        store.table("a:b").put("k", 1)
        store.table("a_b").put("k", 2)
        checkpoint_store(store, tmp_path)
        restored = restore_store(tmp_path)
        assert restored.table("a:b").get("k") == 1
        assert restored.table("a_b").get("k") == 2


class TestDeploymentRoundtrip:
    def test_velox_user_states_survive_checkpoint(self, deployed_velox, tmp_path):
        """The full deployment path: observe, checkpoint, restore, and
        the restored user state serves the same prediction."""
        for __ in range(5):
            deployed_velox.observe(uid=2, x=7, y=4.5)
        expected = deployed_velox.predict(None, 2, 7)[1]
        checkpoint_store(deployed_velox.cluster.store, tmp_path)

        restored = restore_store(
            tmp_path,
            partitioners={
                "user_state:songs": deployed_velox.cluster.user_partitioner
            },
        )
        state = restored.table("user_state:songs").get(2)
        model = deployed_velox.model()
        assert float(state.weights @ model.features(7)) == pytest.approx(expected)
        assert state.observation_count == 5

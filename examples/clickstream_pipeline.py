"""Clickstream ingestion: the stream processor feeding Velox.

In a full BDAS deployment, raw interaction events reach Velox's
``observe`` through the stream-processing layer. This example builds
that pipeline for a music service:

    play events ──> filter bots ──> sessionize (tumbling window per
    user+song) ──> listen-time → implicit rating ──> VeloxObserveSink

and shows the downstream effects: online weight updates, model health,
and finally a sampled (approximate) retrain via the sampling engine,
checkpointing the whole store to disk at the end.

Run:  python examples/clickstream_pipeline.py
"""

import tempfile

import numpy as np

from repro import Velox, VeloxConfig
from repro.batch import BatchContext
from repro.core import reporting
from repro.core.models import MatrixFactorizationModel
from repro.core.offline import als_train
from repro.data import SynthLensConfig, generate_synthlens
from repro.store import Observation, checkpoint_store
from repro.streaming import (
    Filter,
    IterableSource,
    Map,
    StreamPipeline,
    TumblingWindowAggregate,
    VeloxObserveSink,
)

NUM_USERS = 100
NUM_SONGS = 120
PLAYS = 6000
PLAYS_PER_SESSION = 3


def deploy():
    lens = generate_synthlens(
        SynthLensConfig(
            num_users=NUM_USERS, num_items=NUM_SONGS, rank=6,
            ratings_per_user_mean=30, min_ratings_per_user=20, seed=55,
        )
    )
    als = als_train(
        BatchContext(4),
        [(r.uid, r.item_id, r.rating) for r in lens.ratings],
        rank=6,
        num_items=NUM_SONGS,
        num_iterations=6,
    )
    model = MatrixFactorizationModel(
        "songs", als.item_factors, als.item_bias, als.global_mean
    )
    weights = {
        uid: model.pack_user_weights(als.user_factors[uid], als.user_bias[uid])
        for uid in als.user_factors
    }
    velox = Velox.deploy(VeloxConfig(num_nodes=4), auto_retrain=False)
    velox.add_model(
        model,
        initial_user_weights=weights,
        seed_observations=[
            Observation(r.uid, r.item_id, r.rating, item_data=r.item_id)
            for r in lens.ratings
        ],
    )
    return velox, lens


def synthesize_plays(lens, rng):
    """Raw play events: (uid, song, seconds_listened, is_bot).

    Listen time correlates with the planted preference, so the rolled-up
    implicit ratings carry real signal. A few bot events are sprinkled
    in for the filter stage to drop.
    """
    # Each listener rotates through a small personal playlist, so the
    # per-(user, song) session windows actually fill.
    rotations = {
        uid: rng.choice(NUM_SONGS, size=8, replace=False)
        for uid in range(NUM_USERS)
    }
    events = []
    for __ in range(PLAYS):
        uid = int(rng.integers(NUM_USERS))
        song = int(rng.choice(rotations[uid]))
        preference = lens.true_score(uid, song)  # 0.5 .. 5
        seconds = float(np.clip(rng.normal(preference * 48, 20), 5, 300))
        is_bot = bool(rng.random() < 0.02)
        events.append((uid, song, seconds, is_bot))
    return events


def main() -> None:
    rng = np.random.default_rng(8)
    velox, lens = deploy()
    events = synthesize_plays(lens, rng)
    print(f"ingesting {len(events)} raw play events "
          f"({sum(1 for e in events if e[3])} bot events) ...")

    sink = VeloxObserveSink(velox)
    pipeline = StreamPipeline(
        source=IterableSource(events, batch_size=250),
        operators=[
            Filter(lambda e: not e[3]),  # drop bot traffic
            TumblingWindowAggregate(
                key_fn=lambda e: (e[0], e[1]),
                zero=(0.0, 0),
                add=lambda acc, e: (acc[0] + e[2], acc[1] + 1),
                window_size=PLAYS_PER_SESSION,
            ),
            # mean seconds-listened -> 0.5..5 implicit rating
            Map(
                lambda kv: (
                    kv[0][0],
                    kv[0][1],
                    float(np.clip(kv[1][0] / kv[1][1] / 48.0, 0.5, 5.0)),
                )
            ),
        ],
        sinks=[sink],
    )
    metrics = pipeline.run()
    print(
        f"pipeline: {metrics.batches} micro-batches, "
        f"{metrics.records_in} events in, {metrics.records_out} ratings out "
        f"({metrics.flushed_records} from flushed open windows)"
    )
    print(f"observe calls into Velox: {sink.observations_written}")

    # How well do the implicit ratings track the planted truth?
    log = velox.manager.observation_log("songs")
    implicit = [
        ob for ob in log.read_all() if ob.timestamp >= len(lens.ratings)
    ]
    correlation = np.corrcoef(
        [ob.label for ob in implicit],
        [lens.true_score(ob.uid, ob.item_id) for ob in implicit],
    )[0, 1]
    print(f"implicit-rating vs true-preference correlation: {correlation:.2f}")

    # Approximate retrain through the sampling engine.
    event = velox.manager.retrain_now(
        "songs", reason="nightly (sampled)", sample_fraction=0.8
    )
    print(
        f"\nsampled retrain: v{event.new_version} trained on "
        f"{event.sampled_observations}/{event.observations_used} observations"
    )

    # Checkpoint the whole store (user states + logs) to disk.
    with tempfile.TemporaryDirectory() as directory:
        path = checkpoint_store(velox.cluster.store, directory)
        files = sorted(p.name for p in path.iterdir())
        print(f"checkpointed store to {len(files)} files "
              f"(manifest + tables + logs)")

    print()
    print(reporting.report(velox))


if __name__ == "__main__":
    main()

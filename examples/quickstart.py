"""Quickstart: deploy Velox, serve predictions, learn online, retrain.

Walks the full machine-learning lifecycle of the paper's Figure 1 in
about a minute on a laptop:

1. generate a synthetic ratings corpus (SynthLens),
2. train an initial matrix-factorization model offline with ALS on the
   sparklite batch substrate,
3. deploy it into a simulated 4-node Velox cluster,
4. serve ``predict`` / ``top_k`` queries,
5. feed observations back and watch online updates improve accuracy,
6. trigger offline retraining and compare.

Run:  python examples/quickstart.py
"""

from repro import Velox, VeloxConfig
from repro.batch import BatchContext
from repro.core.models import MatrixFactorizationModel
from repro.core.offline import als_train
from repro.data import SynthLensConfig, generate_synthlens, paper_protocol_split
from repro.metrics import rmse
from repro.store import Observation


def main() -> None:
    # 1. Data: a MovieLens-like synthetic corpus.
    print("== generating SynthLens corpus ==")
    lens = generate_synthlens(
        SynthLensConfig(num_users=200, num_items=200, rank=8, seed=42)
    )
    split = paper_protocol_split(lens.ratings)
    print(
        f"{len(lens.ratings)} ratings | init={len(split.init)} "
        f"stream={len(split.stream)} holdout={len(split.holdout)}"
    )

    # 2. Offline training (the Spark-shaped part of the lifecycle).
    print("\n== offline ALS training on the batch substrate ==")
    batch = BatchContext(default_parallelism=4)
    als = als_train(
        batch,
        [(r.uid, r.item_id, r.rating) for r in split.init],
        rank=8,
        num_items=lens.num_items,
        num_iterations=8,
    )
    print(f"train RMSE per iteration: {[round(x, 3) for x in als.train_rmse]}")

    # 3. Deploy into a simulated cluster.
    print("\n== deploying to a 4-node Velox cluster ==")
    model = MatrixFactorizationModel(
        "songs", als.item_factors, als.item_bias, als.global_mean
    )
    weights = {
        uid: model.pack_user_weights(als.user_factors[uid], als.user_bias[uid])
        for uid in als.user_factors
    }
    velox = Velox.deploy(VeloxConfig(num_nodes=4), auto_retrain=False)
    velox.add_model(
        model,
        initial_user_weights=weights,
        seed_observations=[
            Observation(r.uid, r.item_id, r.rating, item_data=r.item_id)
            for r in split.init
        ],
    )

    # 4. Serve.
    uid = split.holdout[0].uid
    item, score = velox.predict("songs", uid, split.holdout[0].item_id)
    print(f"predict(uid={uid}, item={item}) -> {score:.3f}")
    best = velox.top_k("songs", uid, list(range(10)), k=3)
    print(f"top_k(uid={uid}, items=0..9, k=3) -> "
          f"{[(i, round(s, 3)) for i, s in best]}")

    truth = [r.rating for r in split.holdout]

    def holdout_rmse() -> float:
        return rmse(
            truth, [velox.predict("songs", r.uid, r.item_id)[1] for r in split.holdout]
        )

    baseline = holdout_rmse()
    print(f"\nholdout RMSE before any feedback: {baseline:.4f}")

    # 5. Online learning from the stream.
    print(f"\n== streaming {len(split.stream)} observations ==")
    for r in split.stream:
        velox.observe(uid=r.uid, x=r.item_id, y=r.rating)
    online = holdout_rmse()
    print(f"holdout RMSE after online updates: {online:.4f} "
          f"({(baseline - online) / baseline * 100:+.2f}%)")

    # 6. Full offline retrain on everything logged so far.
    print("\n== offline retraining ==")
    event = velox.retrain(reason="quickstart demo")
    retrained = holdout_rmse()
    print(
        f"retrained to version {event.new_version} on "
        f"{event.observations_used} observations; "
        f"holdout RMSE: {retrained:.4f} "
        f"({(baseline - retrained) / baseline * 100:+.2f}%)"
    )

    stats = velox.service.cache_stats()
    print(f"\ncache stats: {stats}")
    print(f"network locality: {velox.cluster.network.stats.locality_rate:.3f}")


if __name__ == "__main__":
    main()

"""The Velox model predictor: low-latency ``predict`` and ``top_k``.

Implements the serving half of the architecture (paper Section 5):

* requests are routed to the node owning the user's weight partition,
  so user-weight reads are local by construction,
* item features are served through a per-node LRU **feature cache**
  (materialized features additionally charge modeled network cost on a
  miss, since the feature table is partitioned across the cluster),
* final scores are served through a per-node **prediction cache** keyed
  by (model, version, uid, item) — the 100%-hit configuration of this
  cache is Figure 4's ``cache`` series,
* ``top_k`` accepts a bandit policy that ranks by score-plus-uncertainty
  rather than raw score (Section 5, "Bandits and Multiple Models").
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.common.config import VeloxConfig
from repro.common.errors import PartitionError, UserNotFoundError, ValidationError
from repro.core.bandits import BanditPolicy, GreedyPolicy
from repro.core.model import ModelRegistry
from repro.core.online import UserModelState
from repro.metrics.latency import LatencyRecorder
from repro.store.lru import LRUCache


def item_cache_key(x: object) -> object:
    """A hashable cache key for an item input.

    Ints/floats/strings/tuples key themselves; numpy arrays are keyed by
    a digest of their bytes (computed features for the same input hit the
    same cache line, as the paper's computational-feature caching needs).
    Scalar floats are accepted so computed models over a single numeric
    feature can be served over the wire.
    """
    if isinstance(x, (int, float, str, bool)):
        return x
    if isinstance(x, np.integer):
        return int(x)
    if isinstance(x, np.floating):
        return float(x)
    if isinstance(x, tuple):
        return x
    if isinstance(x, np.ndarray):
        digest = hashlib.blake2b(
            x.tobytes() + str(x.shape).encode(), digest_size=16
        ).hexdigest()
        return ("ndarray", digest)
    raise ValidationError(f"cannot derive a cache key for item input {x!r}")


@dataclass(frozen=True)
class PredictionResult:
    """One scored item, with serving provenance for the benchmarks."""

    item: object
    score: float
    uncertainty: float = 0.0
    node_id: int = 0
    feature_cache_hit: bool = False
    prediction_cache_hit: bool = False
    modeled_network_latency: float = 0.0
    #: True when the user's weights were served by a promoted follower
    #: that had not received the full journal at promotion time — the
    #: bounded-staleness flag replication surfaces to clients.
    stale: bool = False


class PredictionService:
    """Serves predictions against the current registry state.

    One service instance models the predictor processes of the whole
    cluster: it keeps a feature cache and a prediction cache *per node*
    and consults the cluster's router for every request, so cache hit
    rates and locality behave as they would in the real deployment.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        cluster,
        user_state_table_for,
        config: VeloxConfig,
        bootstrap_lookup=None,
    ):
        self.registry = registry
        self.cluster = cluster
        self._user_state_table_for = user_state_table_for
        self.config = config
        #: callable(model_name) -> UserWeightAverager | None; per-model
        #: because each model has its own weight space/dimension.
        self.bootstrap_lookup = bootstrap_lookup
        self.feature_caches = [
            LRUCache(config.feature_cache_capacity) for _ in cluster.nodes
        ]
        self.prediction_caches = [
            LRUCache(config.prediction_cache_capacity) for _ in cluster.nodes
        ]
        # Indexed top-K engines, one per (model, version) — Section 8's
        # "more efficient top-K support"; built lazily on first use.
        self._topk_engines: dict[tuple[str, int], object] = {}
        # Per-model serving-latency recorders (reporting/SLO monitoring).
        self.serving_latency: dict[str, LatencyRecorder] = {}
        # Whole-batch latency recorders for the vectorized path, keyed by
        # model name (one sample per predict_batch call).
        self.batch_serving_latency: dict[str, LatencyRecorder] = {}

    # -- cache plumbing -----------------------------------------------------

    def get_features(
        self, model, x: object, node_id: int
    ) -> tuple[np.ndarray, bool, float]:
        """Fetch/compute f(x) through the node's feature cache.

        Returns ``(features, cache_hit, modeled_network_latency)``. A
        miss on a materialized model charges a remote fetch when the
        item's feature-table shard lives on another node.
        """
        cache = self.feature_caches[node_id]
        key = (model.name, model.version, item_cache_key(x))
        hit = cache.get(key)
        if hit is not None:
            return hit, True, 0.0
        network_latency = 0.0
        if model.materialized:
            network_latency = self.cluster.charge_item_access(
                node_id, item_cache_key(x), model.dimension * 8
            )
        features = model.validate_features(model.features(x))
        cache.put(key, features)
        return features, False, network_latency

    def _user_weights(self, model, uid: int, node_id: int) -> tuple[np.ndarray, UserModelState | None, float]:
        """Read the user's weights (and state, when it exists).

        Unknown users fall back to the bootstrap average (paper Section
        5, "Bootstrapping") or the model's initial weights; with
        ``bootstrap_new_users=False`` they raise
        :class:`UserNotFoundError` instead.
        """
        table = self._user_state_table_for(model.name)
        network_latency = self.cluster.charge_user_access(
            node_id, uid, model.dimension * 8
        )
        read = self._read_user_state(table, uid)
        if read is not None:
            return read[0], read[1], network_latency
        return self._bootstrap_weights(model, uid, network_latency)

    def _read_user_state(self, table, uid: int):
        """``(weights, state-like)`` for a known user, else ``None``.

        Slab-backed tables read the weight row in place — no per-request
        state decode; slab-resident (pristine) users get the policy's
        shared serving shim, which carries the same ``weight_version``
        and ``uncertainty`` the materialized state would.
        """
        if table.value_policy is not None:
            read = table.read_weights(uid)
            if read is not None:
                return read.weights, read.state
            return None
        state = table.get_or_default(uid)
        if state is not None:
            return state.weights, state
        return None

    def _bootstrap_weights(self, model, uid: int, network_latency: float):
        """The unknown-user fallback leg of :meth:`_user_weights`."""
        if not self.config.bootstrap_new_users:
            raise UserNotFoundError(uid)
        averager = (
            self.bootstrap_lookup(model.name)
            if self.bootstrap_lookup is not None
            else None
        )
        if averager is not None and len(averager):
            return averager.mean(), None, network_latency
        return model.initial_user_weights(), None, network_latency

    # -- replication awareness ----------------------------------------------

    def _read_is_stale(self, uid: int) -> bool:
        """Whether this uid's weights are being served bounded-stale
        (a lagging follower was promoted for the user's partition)."""
        replication = getattr(self.cluster, "replication", None)
        if replication is None:
            return False
        return replication.user_read_is_stale(self.cluster.owner_of_user(uid))

    def _serve_with_failover(self, fn):
        """Run a read, retrying once after follower promotion.

        A :class:`PartitionError` in the serving path is direct evidence
        the partition's owner is gone. With replication enabled the
        error is reported (promoting the first alive follower
        immediately — failover latency is bounded by the serving path,
        not the heartbeat interval) and the read retried against the
        promoted replica; without replication it propagates unchanged.
        """
        try:
            return fn()
        except PartitionError:
            from repro.replication.manager import report_dead_nodes

            if not report_dead_nodes(self.cluster):
                raise
            return fn()

    # -- the Listing 1 surface --------------------------------------------------

    def predict(self, model_name: str, uid: int, x: object) -> PredictionResult:
        """Point prediction for (user, item): returns the item and score.

        Successful predictions are timed into the per-model
        :class:`~repro.metrics.LatencyRecorder` read by the reporting
        layer.
        """
        recorder = self.serving_latency.get(model_name)
        if recorder is None:
            recorder = LatencyRecorder(f"predict:{model_name}")
            self.serving_latency[model_name] = recorder
        with recorder.time():
            return self._serve_with_failover(
                lambda: self._predict(model_name, uid, x)
            )

    def _predict(self, model_name: str, uid: int, x: object) -> PredictionResult:
        model = self.registry.get(model_name)
        node = self.cluster.router.route(uid)
        node.stats.requests_served += 1
        prediction_cache = self.prediction_caches[node.node_id]
        # User weights are read first (a local lookup under user-aware
        # routing); the user's weight_version is part of the cache key,
        # so entries from before an online weight update never hit.
        weights, state, user_latency = self._user_weights(model, uid, node.node_id)
        stale = self._read_is_stale(uid)
        weight_version = state.weight_version if state is not None else 0
        cache_key = (model.name, model.version, uid, weight_version, item_cache_key(x))
        cached = prediction_cache.get(cache_key)
        if cached is not None:
            # Entries carry (score, uncertainty) so bandit policies keep
            # working across cache hits.
            cached_score, cached_uncertainty = cached
            return PredictionResult(
                item=x,
                score=cached_score,
                uncertainty=cached_uncertainty,
                node_id=node.node_id,
                prediction_cache_hit=True,
                modeled_network_latency=user_latency,
                stale=stale,
            )
        features, feature_hit, item_latency = self.get_features(
            model, x, node.node_id
        )
        if not feature_hit:
            node.stats.remote_feature_fetches += int(item_latency > 0)
        score = float(weights @ features)
        uncertainty = state.uncertainty(features) if state is not None else 0.0
        prediction_cache.put(cache_key, (score, uncertainty))
        return PredictionResult(
            item=x,
            score=score,
            uncertainty=uncertainty,
            node_id=node.node_id,
            feature_cache_hit=feature_hit,
            modeled_network_latency=user_latency + item_latency,
            stale=stale,
        )

    def predict_batch(
        self, model_name: str, user_ids: list[int], xs: list
    ) -> list[PredictionResult]:
        """Score a whole batch of (user, item) pairs in one pass.

        The vectorized fast path behind the serving engine's adaptive
        batcher: user weights and item features are each looked up once
        per distinct key across the batch, and every prediction-cache
        miss is scored by a single stacked numpy product instead of N
        scalar ``predict`` calls. Results are positionally aligned with
        the inputs and identical (within float tolerance) to N scalar
        ``predict`` calls.
        """
        if len(user_ids) != len(xs):
            raise ValidationError(
                f"predict_batch got {len(user_ids)} user ids "
                f"but {len(xs)} items"
            )
        if not user_ids:
            return []
        recorder = self.batch_serving_latency.get(model_name)
        if recorder is None:
            recorder = LatencyRecorder(f"predict_batch:{model_name}")
            self.batch_serving_latency[model_name] = recorder
        with recorder.time():
            return self._serve_with_failover(
                lambda: self._predict_batch(model_name, list(user_ids), list(xs))
            )

    def _predict_batch(
        self, model_name: str, user_ids: list[int], xs: list
    ) -> list[PredictionResult]:
        model = self.registry.get(model_name)
        n = len(user_ids)
        nodes = [self.cluster.router.route(uid) for uid in user_ids]
        for node in nodes:
            node.stats.requests_served += 1
        item_keys = [item_cache_key(x) for x in xs]
        # One weight/state read (and one staleness check) per distinct
        # user in the batch. Slab-backed tables resolve every distinct
        # user in one fancy-index gather per partition; the per-user
        # network charge (a modeled cost, not a real read) is unchanged.
        table = self._user_state_table_for(model.name)
        batch_reads = None
        if table.value_policy is not None:
            batch_reads = table.read_weights_batch(list(dict.fromkeys(user_ids)))
        weights_by_uid: dict[int, tuple] = {}
        stale_by_uid: dict[int, bool] = {}
        for i, uid in enumerate(user_ids):
            if uid not in weights_by_uid:
                if batch_reads is None:
                    weights_by_uid[uid] = self._user_weights(
                        model, uid, nodes[i].node_id
                    )
                else:
                    latency = self.cluster.charge_user_access(
                        nodes[i].node_id, uid, model.dimension * 8
                    )
                    read = batch_reads.get(uid)
                    weights_by_uid[uid] = (
                        (read.weights, read.state, latency)
                        if read is not None
                        else self._bootstrap_weights(model, uid, latency)
                    )
                stale_by_uid[uid] = self._read_is_stale(uid)
        results: list[PredictionResult | None] = [None] * n
        misses: list[tuple[int, tuple]] = []  # (batch index, cache key)
        for i, (uid, x) in enumerate(zip(user_ids, xs)):
            weights, state, user_latency = weights_by_uid[uid]
            weight_version = state.weight_version if state is not None else 0
            cache_key = (
                model.name, model.version, uid, weight_version, item_keys[i]
            )
            cached = self.prediction_caches[nodes[i].node_id].get(cache_key)
            if cached is not None:
                cached_score, cached_uncertainty = cached
                results[i] = PredictionResult(
                    item=x,
                    score=cached_score,
                    uncertainty=cached_uncertainty,
                    node_id=nodes[i].node_id,
                    prediction_cache_hit=True,
                    modeled_network_latency=user_latency,
                    stale=stale_by_uid[uid],
                )
            else:
                misses.append((i, cache_key))
        if not misses:
            return results
        # One feature fetch per distinct (node, item) among the misses.
        features_by_key: dict[tuple, tuple] = {}
        for i, _ in misses:
            feature_key = (nodes[i].node_id, item_keys[i])
            if feature_key not in features_by_key:
                fetched = self.get_features(model, xs[i], nodes[i].node_id)
                features_by_key[feature_key] = fetched
                if not fetched[1]:
                    nodes[i].stats.remote_feature_fetches += int(fetched[2] > 0)
        # One stacked product scores every miss at once.
        weight_rows = np.stack([weights_by_uid[user_ids[i]][0] for i, _ in misses])
        feature_rows = np.stack(
            [features_by_key[(nodes[i].node_id, item_keys[i])][0] for i, _ in misses]
        )
        scores = np.einsum("ij,ij->i", weight_rows, feature_rows)
        for row, (i, cache_key) in enumerate(misses):
            uid = user_ids[i]
            _, state, user_latency = weights_by_uid[uid]
            features, feature_hit, item_latency = features_by_key[
                (nodes[i].node_id, item_keys[i])
            ]
            score = float(scores[row])
            uncertainty = (
                state.uncertainty(features) if state is not None else 0.0
            )
            self.prediction_caches[nodes[i].node_id].put(
                cache_key, (score, uncertainty)
            )
            results[i] = PredictionResult(
                item=xs[i],
                score=score,
                uncertainty=uncertainty,
                node_id=nodes[i].node_id,
                feature_cache_hit=feature_hit,
                modeled_network_latency=user_latency + item_latency,
                stale=stale_by_uid[uid],
            )
        return results

    def predict_cached(
        self, model_name: str, uid: int, x: object
    ) -> PredictionResult | None:
        """Prediction-cache-only lookup: a hit or ``None``, never compute.

        The degraded serving path used under overload — answers what the
        cache already knows without paying feature or scoring cost.
        """
        return self._serve_with_failover(
            lambda: self._predict_cached(model_name, uid, x)
        )

    def _predict_cached(
        self, model_name: str, uid: int, x: object
    ) -> PredictionResult | None:
        model = self.registry.get(model_name)
        node = self.cluster.router.route(uid)
        table = self._user_state_table_for(model.name)
        read = self._read_user_state(table, uid)
        weight_version = (
            read[1].weight_version if read is not None and read[1] is not None else 0
        )
        cache_key = (
            model.name, model.version, uid, weight_version, item_cache_key(x)
        )
        cached = self.prediction_caches[node.node_id].get(cache_key)
        if cached is None:
            return None
        node.stats.requests_served += 1
        cached_score, cached_uncertainty = cached
        return PredictionResult(
            item=x,
            score=cached_score,
            uncertainty=cached_uncertainty,
            node_id=node.node_id,
            prediction_cache_hit=True,
            stale=self._read_is_stale(uid),
        )

    def top_k_cached(
        self,
        model_name: str,
        uid: int,
        items: list,
        k: int = 1,
        policy: BanditPolicy | None = None,
    ) -> list[PredictionResult]:
        """Best-k among the *cached* subset of the candidates.

        May return fewer than ``k`` results (or none on a cold cache):
        graceful degradation under overload trades coverage for bounded
        latency.
        """
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        results = []
        for x in items:
            cached = self.predict_cached(model_name, uid, x)
            if cached is not None:
                results.append(cached)
        active_policy = policy if policy is not None else GreedyPolicy()
        ranked = sorted(
            results,
            key=lambda r: active_policy.selection_score(r.score, r.uncertainty),
            reverse=True,
        )
        return ranked[:k]

    def top_k(
        self,
        model_name: str,
        uid: int,
        items: list,
        k: int = 1,
        policy: BanditPolicy | None = None,
        item_filter=None,
    ) -> list[PredictionResult]:
        """Best ``k`` of the provided items for this user.

        With the default greedy policy, ranking is by predicted score.
        A bandit policy ranks by its own selection score (e.g. LinUCB's
        score + alpha * uncertainty) to trade exploitation for learning
        (paper Section 5); returned results preserve the true predicted
        score in ``score``. ``item_filter(x) -> bool`` pre-filters the
        candidate set before any scoring — the paper's "pre-filtering
        items according to application level policies".

        Scoring runs through the vectorized :meth:`predict_batch` path:
        one user-weight lookup for the whole candidate set and one
        stacked numpy product over every prediction-cache miss, instead
        of a Python loop of scalar ``predict`` calls. Results are
        identical (within float tolerance) to the scalar loop.
        """
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        if item_filter is not None:
            items = [x for x in items if item_filter(x)]
        if not items:
            return []
        active_policy = policy if policy is not None else GreedyPolicy()
        results = self.predict_batch(model_name, [uid] * len(items), list(items))
        ranked = sorted(
            results,
            key=lambda r: active_policy.selection_score(r.score, r.uncertainty),
            reverse=True,
        )
        return ranked[:k]

    def top_k_catalog(
        self, model_name: str, uid: int, k: int = 10, engine_cls=None
    ) -> list[PredictionResult]:
        """Exact top-k over the model's *entire* item catalog.

        Uses an indexed engine (default: one blocked matrix-vector
        product, :class:`~repro.core.topk.BlockedMatrixTopK`) instead of
        the per-item serving loop — the paper's Section 8 "more
        efficient top-K support for our linear modeling tasks". Only
        materialized models have a finite catalog to index.
        """
        from repro.core.topk import BlockedMatrixTopK, TopKEngine

        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        model = self.registry.get(model_name)
        cls = engine_cls or BlockedMatrixTopK
        cache_key = (model.name, model.version, cls.__name__)
        engine: TopKEngine = self._topk_engines.get(cache_key)
        if engine is None:
            engine = cls.from_model(model)
            self._topk_engines[cache_key] = engine
        node = self.cluster.router.route(uid)
        node.stats.requests_served += 1
        weights, state, user_latency = self._user_weights(model, uid, node.node_id)
        return [
            PredictionResult(
                item=item,
                score=score,
                uncertainty=(
                    state.uncertainty(model.features(item)) if state is not None else 0.0
                ),
                node_id=node.node_id,
                modeled_network_latency=user_latency,
            )
            for item, score in engine.top_k(weights, k)
        ]

    # -- cache maintenance (used by the manager on model swap) -----------------

    def invalidate_model(self, model_name: str) -> None:
        """Drop every cache entry belonging to ``model_name``."""
        for cache in self.feature_caches + self.prediction_caches:
            cache.invalidate_if(lambda key: key[0] == model_name)
        for key in [k for k in self._topk_engines if k[0] == model_name]:
            del self._topk_engines[key]

    def cached_feature_items(self, model_name: str) -> list[tuple[int, object]]:
        """(node_id, item_key) pairs currently in feature caches — the
        hot set the batch system precomputes for repopulation."""
        pairs = []
        for node_id, cache in enumerate(self.feature_caches):
            for key in cache.keys():
                if key[0] == model_name:
                    pairs.append((node_id, key[2]))
        return pairs

    def cached_predictions(self, model_name: str) -> list[tuple[int, int, object]]:
        """(node_id, uid, item_key) triples currently in prediction caches."""
        triples = []
        for node_id, cache in enumerate(self.prediction_caches):
            for key in cache.keys():
                if key[0] == model_name:
                    triples.append((node_id, key[2], key[4]))
        return triples

    def warm_prediction_cache(
        self,
        node_id: int,
        model,
        uid: int,
        weight_version: int,
        item_key: object,
        score: float,
        uncertainty: float = 0.0,
    ) -> None:
        """Insert a precomputed prediction (cache repopulation on swap)."""
        cache = self.prediction_caches[node_id]
        cache.put(
            (model.name, model.version, uid, weight_version, item_key),
            (score, uncertainty),
        )

    def warm_feature_cache(self, node_id: int, model, x: object) -> None:
        """Precompute f(x) into a node's cache (repopulation after
        retraining, paper Section 4.2)."""
        cache = self.feature_caches[node_id]
        key = (model.name, model.version, item_cache_key(x))
        cache.put(key, model.validate_features(model.features(x)))

    def cache_stats(self) -> dict:
        """Aggregate cache statistics across nodes."""
        def total(caches, attr):
            """Sum one stats attribute across caches."""
            return sum(getattr(c.stats, attr) for c in caches)

        return {
            "feature_hits": total(self.feature_caches, "hits"),
            "feature_misses": total(self.feature_caches, "misses"),
            "prediction_hits": total(self.prediction_caches, "hits"),
            "prediction_misses": total(self.prediction_caches, "misses"),
        }

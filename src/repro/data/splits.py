"""Train/test split utilities, including the paper's Section 4.2 protocol."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ValidationError
from repro.common.rng import as_generator
from repro.data.synthlens import Rating


@dataclass(frozen=True)
class RatingsSplit:
    """A two-way split."""

    train: list[Rating]
    test: list[Rating]


@dataclass(frozen=True)
class PaperProtocolSplit:
    """The Section 4.2 evaluation protocol's three sets.

    The paper: "We first used offline training to initialize the feature
    parameters on half of the data and then evaluated the prediction
    error of the proposed strategy on the remaining data. By using the
    Velox's incremental online updates to train on 70% of the remaining
    data, we were able to achieve a held out prediction error that is
    only slightly worse than complete retraining."

    ``init``   — offline-initialization half,
    ``stream`` — 70% of the remainder, fed to online updates,
    ``holdout``— the final 30%, used only for evaluation.
    """

    init: list[Rating]
    stream: list[Rating]
    holdout: list[Rating]


def split_by_fraction(
    ratings: list[Rating], train_fraction: float, seed: int | None = None
) -> RatingsSplit:
    """Random global split (no per-user stratification)."""
    if not 0.0 < train_fraction < 1.0:
        raise ValidationError(
            f"train_fraction must be in (0, 1), got {train_fraction}"
        )
    rng = as_generator(seed)
    indices = rng.permutation(len(ratings))
    cut = int(round(len(ratings) * train_fraction))
    train = [ratings[i] for i in indices[:cut]]
    test = [ratings[i] for i in indices[cut:]]
    return RatingsSplit(train=train, test=test)


def split_per_user(
    ratings: list[Rating], train_fraction: float, seed: int | None = None
) -> RatingsSplit:
    """Stratified split: ``train_fraction`` of each user's ratings (in
    timestamp order) go to train, the rest to test — every user appears
    in both sides when they have >= 2 ratings."""
    if not 0.0 < train_fraction < 1.0:
        raise ValidationError(
            f"train_fraction must be in (0, 1), got {train_fraction}"
        )
    grouped: dict[int, list[Rating]] = {}
    for rating in sorted(ratings, key=lambda r: r.timestamp):
        grouped.setdefault(rating.uid, []).append(rating)
    train: list[Rating] = []
    test: list[Rating] = []
    for user_ratings in grouped.values():
        cut = max(1, int(round(len(user_ratings) * train_fraction)))
        cut = min(cut, len(user_ratings) - 1) if len(user_ratings) > 1 else cut
        train.extend(user_ratings[:cut])
        test.extend(user_ratings[cut:])
    train.sort(key=lambda r: r.timestamp)
    test.sort(key=lambda r: r.timestamp)
    return RatingsSplit(train=train, test=test)


def paper_protocol_split(
    ratings: list[Rating],
    init_fraction: float = 0.5,
    stream_fraction: float = 0.7,
) -> PaperProtocolSplit:
    """Per-user three-way split following the Section 4.2 protocol.

    For each user, the first ``init_fraction`` of their ratings (by
    timestamp) initialize offline training; of the remainder,
    ``stream_fraction`` become the online stream and the rest the
    held-out evaluation set. Users too small to land at least one rating
    in each set contribute to ``init`` only.
    """
    if not 0.0 < init_fraction < 1.0:
        raise ValidationError(f"init_fraction must be in (0, 1), got {init_fraction}")
    if not 0.0 < stream_fraction < 1.0:
        raise ValidationError(
            f"stream_fraction must be in (0, 1), got {stream_fraction}"
        )
    grouped: dict[int, list[Rating]] = {}
    for rating in sorted(ratings, key=lambda r: r.timestamp):
        grouped.setdefault(rating.uid, []).append(rating)

    init: list[Rating] = []
    stream: list[Rating] = []
    holdout: list[Rating] = []
    for user_ratings in grouped.values():
        n = len(user_ratings)
        init_cut = int(round(n * init_fraction))
        rest = n - init_cut
        stream_cut = int(round(rest * stream_fraction))
        if init_cut < 1 or stream_cut < 1 or rest - stream_cut < 1:
            init.extend(user_ratings)
            continue
        init.extend(user_ratings[:init_cut])
        stream.extend(user_ratings[init_cut : init_cut + stream_cut])
        holdout.extend(user_ratings[init_cut + stream_cut :])
    init.sort(key=lambda r: r.timestamp)
    stream.sort(key=lambda r: r.timestamp)
    holdout.sort(key=lambda r: r.timestamp)
    return PaperProtocolSplit(init=init, stream=stream, holdout=holdout)

"""A partitioned, versioned table in veloxstore.

Tables shard keys across :class:`~repro.store.partition.Partition` objects
using a stable hash, expose mapping-style reads and writes, optimistic
compare-and-set, and the failure/recovery hooks the cluster simulator uses
to model node loss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.common.errors import KeyNotFoundError, PartitionError, VersionConflictError
from repro.common.rng import stable_hash
from repro.store.partition import Partition


@dataclass(frozen=True)
class VersionedValue:
    """A read result carrying the per-key version for CAS round-trips."""

    value: object
    version: int


class Table:
    """A named collection of partitions with per-key versions.

    Partitioning is by ``stable_hash(key) % num_partitions`` unless a
    custom ``partitioner`` is supplied (the user-weight table, for
    example, partitions by ``uid`` directly so routing stays aligned
    with the cluster's user placement).
    """

    def __init__(
        self,
        name: str,
        num_partitions: int = 1,
        partitioner: Callable[[object], int] | None = None,
    ):
        if not name:
            raise ValueError("table name must be non-empty")
        if num_partitions < 1:
            raise ValueError(f"num_partitions must be >= 1, got {num_partitions}")
        self.name = name
        self.num_partitions = num_partitions
        self._partitioner = partitioner
        self._partitions = [Partition(i) for i in range(num_partitions)]

    # -- partition addressing ---------------------------------------------

    def partition_index(self, key: object) -> int:
        """The partition that owns ``key``."""
        if self._partitioner is not None:
            index = self._partitioner(key)
            if not 0 <= index < self.num_partitions:
                raise PartitionError(
                    f"custom partitioner returned {index} for key {key!r}; "
                    f"table {self.name!r} has {self.num_partitions} partitions"
                )
            return index
        return stable_hash(key) % self.num_partitions

    def partition(self, index: int) -> Partition:
        """The partition object at ``index``."""
        if not 0 <= index < self.num_partitions:
            raise PartitionError(
                f"table {self.name!r} has no partition {index}"
            )
        return self._partitions[index]

    def _owner(self, key: object) -> Partition:
        return self._partitions[self.partition_index(key)]

    # -- reads --------------------------------------------------------------

    def get(self, key: object) -> object:
        """Return the value for ``key`` or raise :class:`KeyNotFoundError`."""
        entry = self._owner(key).get(key)
        if entry is None:
            raise KeyNotFoundError(self.name, key)
        return entry[0]

    def get_versioned(self, key: object) -> VersionedValue:
        """Read ``(value, version)`` for compare-and-set round-trips."""
        entry = self._owner(key).get(key)
        if entry is None:
            raise KeyNotFoundError(self.name, key)
        return VersionedValue(value=entry[0], version=entry[1])

    def get_or_default(self, key: object, default: object = None) -> object:
        """Read a value, returning ``default`` when absent."""
        entry = self._owner(key).get(key)
        return default if entry is None else entry[0]

    def __getitem__(self, key: object) -> object:
        return self.get(key)

    def __contains__(self, key: object) -> bool:
        return key in self._owner(key)

    def __len__(self) -> int:
        return sum(len(p) for p in self._partitions)

    def keys(self) -> Iterator[object]:
        """Iterate every key across partitions."""
        for partition in self._partitions:
            yield from partition.keys()

    def items(self) -> Iterator[tuple[object, object]]:
        """Iterate every (key, value) pair across partitions."""
        for partition in self._partitions:
            yield from partition.items()

    def scan_partition(self, index: int) -> list[tuple[object, object]]:
        """All items in one partition — the unit batch jobs read."""
        return list(self.partition(index).items())

    # -- writes ---------------------------------------------------------------

    def put(self, key: object, value: object) -> int:
        """Insert/overwrite; returns the new version."""
        return self._owner(key).put(key, value)

    def __setitem__(self, key: object, value: object) -> None:
        self.put(key, value)

    def put_many(self, entries) -> int:
        """Write ``(key, value)`` pairs; returns count written.

        Writes are applied per-partition in key order; each write is
        individually journaled (no cross-partition atomicity, matching
        the storage layer Velox assumes).
        """
        count = 0
        for key, value in entries:
            self.put(key, value)
            count += 1
        return count

    def compare_and_set(self, key: object, value: object, expected_version: int) -> int:
        """Write only if the current version matches ``expected_version``.

        ``expected_version=0`` asserts the key is absent. Returns the new
        version, or raises :class:`VersionConflictError`.
        """
        partition = self._owner(key)
        entry = partition.get(key)
        actual = 0 if entry is None else entry[1]
        if actual != expected_version:
            raise VersionConflictError(self.name, key, expected_version, actual)
        return partition.put(key, value)

    def delete(self, key: object) -> bool:
        """Remove a key; returns whether it existed."""
        return self._owner(key).delete(key)

    def truncate(self) -> None:
        """Remove every key from every partition."""
        for partition in self._partitions:
            partition.truncate()

    # -- durability & failure -----------------------------------------------

    def snapshot(self) -> None:
        """Checkpoint every partition (compacting journals)."""
        for partition in self._partitions:
            partition.snapshot()

    def fail_partition(self, index: int) -> None:
        """Simulate losing one partition's volatile memory."""
        self.partition(index).fail()

    def recover_partition(self, index: int) -> int:
        """Recover one failed partition; returns journal records replayed."""
        return self.partition(index).recover()

    def recover_all(self) -> int:
        """Recover every failed partition; returns records replayed."""
        return sum(p.recover() for p in self._partitions if p.failed)

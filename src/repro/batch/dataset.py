"""Lazy, partitioned datasets — sparklite's RDD analogue.

A :class:`Dataset` is an immutable description of a partitioned
collection plus the lineage needed to compute it. Transformations build
new datasets without executing anything; actions (``collect``, ``count``,
``reduce``, ...) hand the lineage graph to the context's DAG scheduler.

Narrow transformations (map, filter, ...) pipeline within a task; wide
transformations (reduce_by_key, join, sort_by, ...) introduce a
:class:`ShuffleDependency`, which the scheduler materializes as a
separate stage.
"""

from __future__ import annotations

import bisect
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.common.errors import BatchExecutionError
from repro.batch.shuffle import hash_partitioner


class Dependency:
    """Base class for lineage edges."""

    def __init__(self, parent: "Dataset"):
        self.parent = parent


class NarrowDependency(Dependency):
    """Child partition i is computed from parent partition(s) locally."""


class ShuffleDependency(Dependency):
    """Child partitions are computed from shuffled parent output.

    ``partition_for(key)`` maps a record key to a reduce partition;
    ``aggregator`` optionally combines values per key (map-side and
    reduce-side); ``num_partitions`` is the reduce-side width.
    """

    def __init__(
        self,
        parent: "Dataset",
        num_partitions: int,
        partition_for: Callable[[object], int],
        aggregator: "Aggregator | None" = None,
    ):
        super().__init__(parent)
        self.num_partitions = num_partitions
        self.partition_for = partition_for
        self.aggregator = aggregator
        self.shuffle_id = parent.context.new_shuffle_id()


class Aggregator:
    """Combiner spec for shuffles: how per-key values merge."""

    def __init__(self, create_combiner, merge_value, merge_combiners):
        self.create_combiner = create_combiner
        self.merge_value = merge_value
        self.merge_combiners = merge_combiners


class TaskContext:
    """Per-task handle passed through ``compute``: shuffle access + metrics."""

    def __init__(self, shuffle_store, metrics=None):
        self.shuffle_store = shuffle_store
        self.metrics = metrics


class Dataset:
    """Abstract partitioned collection; subclasses define ``compute``."""

    def __init__(self, context, num_partitions: int, dependencies: list[Dependency]):
        if num_partitions < 1:
            raise ValueError(f"num_partitions must be >= 1, got {num_partitions}")
        self.context = context
        self.num_partitions = num_partitions
        self.dependencies = dependencies
        self.dataset_id = context.new_dataset_id()
        self._cached_partitions: dict[int, list] | None = None

    # -- execution ----------------------------------------------------------

    def compute(self, split: int, ctx: TaskContext) -> Iterable:
        """Produce the records of partition ``split``. Subclasses override."""
        raise NotImplementedError

    def iterator(self, split: int, ctx: TaskContext) -> list:
        """Compute (or fetch from cache) one partition as a list."""
        if not 0 <= split < self.num_partitions:
            raise BatchExecutionError(
                f"dataset {self.dataset_id} has no partition {split}"
            )
        if self._cached_partitions is not None:
            hit = self._cached_partitions.get(split)
            if hit is not None:
                return hit
        records = list(self.compute(split, ctx))
        if self._cached_partitions is not None:
            self._cached_partitions[split] = records
        return records

    def cache(self) -> "Dataset":
        """Memoize computed partitions for reuse across jobs (e.g. the
        ratings dataset reused by every ALS iteration)."""
        if self._cached_partitions is None:
            self._cached_partitions = {}
        return self

    def unpersist(self) -> "Dataset":
        """Drop the memoized partitions; next job recomputes."""
        self._cached_partitions = None
        return self

    # -- narrow transformations ------------------------------------------------

    def map_partitions(
        self, fn: Callable[[int, Iterator], Iterable], preserves_partitioning: bool = False
    ) -> "Dataset":
        """Apply ``fn(partition_index, iterator)`` to each partition."""
        return MapPartitionsDataset(self, fn)

    def map(self, fn: Callable) -> "Dataset":
        """Record-wise transformation (narrow)."""
        return self.map_partitions(lambda _i, it: (fn(x) for x in it))

    def filter(self, predicate: Callable) -> "Dataset":
        """Keep records satisfying ``predicate`` (narrow)."""
        return self.map_partitions(lambda _i, it: (x for x in it if predicate(x)))

    def flat_map(self, fn: Callable) -> "Dataset":
        """Record-wise one-to-many expansion (narrow)."""
        return self.map_partitions(
            lambda _i, it: (y for x in it for y in fn(x))
        )

    def key_by(self, fn: Callable) -> "Dataset":
        """Pair each record with ``fn(record)`` as its key."""
        return self.map(lambda x: (fn(x), x))

    def map_values(self, fn: Callable) -> "Dataset":
        """Transform the value of each (key, value) pair."""
        return self.map_partitions(
            lambda _i, it: ((k, fn(v)) for k, v in it)
        )

    def flat_map_values(self, fn: Callable) -> "Dataset":
        """Expand each pair's value into zero or more pairs."""
        return self.map_partitions(
            lambda _i, it: ((k, y) for k, v in it for y in fn(v))
        )

    def keys(self) -> "Dataset":
        """The keys of a pair-dataset."""
        return self.map_partitions(lambda _i, it: (k for k, _v in it))

    def values(self) -> "Dataset":
        """The values of a pair-dataset."""
        return self.map_partitions(lambda _i, it: (v for _k, v in it))

    def union(self, other: "Dataset") -> "Dataset":
        """Concatenate two datasets (partitions of both, in order)."""
        return UnionDataset(self.context, [self, other])

    def sample(self, fraction: float, seed: int = 0) -> "Dataset":
        """Bernoulli sample of each record (deterministic per partition)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")

        def sampler(index: int, it: Iterator) -> Iterable:
            """Per-partition deterministic Bernoulli sampling."""
            rng = np.random.default_rng((seed, index))
            return (x for x in it if rng.random() < fraction)

        return self.map_partitions(sampler)

    def zip_with_index(self) -> "Dataset":
        """Pair each record with a global dense index.

        Runs one counting job to learn per-partition sizes, then a narrow
        pass assigning offsets (the two-pass strategy Spark uses).
        """
        counts = self.context.run_job(self, lambda it: sum(1 for _ in it))
        offsets = [0]
        for c in counts[:-1]:
            offsets.append(offsets[-1] + c)

        def indexer(index: int, it: Iterator) -> Iterable:
            """Assign global dense indices using partition offsets."""
            base = offsets[index]
            return ((x, base + j) for j, x in enumerate(it))

        return self.map_partitions(indexer)

    # -- wide transformations ---------------------------------------------------

    def _pairs_check(self):
        """Wide key-value ops assume (key, value) records; checked lazily
        at execution time inside the shuffle writer."""

    def combine_by_key(
        self,
        create_combiner: Callable,
        merge_value: Callable,
        merge_combiners: Callable,
        num_partitions: int | None = None,
    ) -> "Dataset":
        """Shuffle + merge values per key with a custom combiner."""
        n = num_partitions or self.num_partitions
        aggregator = Aggregator(create_combiner, merge_value, merge_combiners)
        return ShuffledDataset(self, n, hash_partitioner(n), aggregator)

    def reduce_by_key(self, fn: Callable, num_partitions: int | None = None) -> "Dataset":
        """Merge values per key with an associative function."""
        return self.combine_by_key(lambda v: v, fn, fn, num_partitions)

    def group_by_key(self, num_partitions: int | None = None) -> "Dataset":
        """Collect all values per key into a list (wide)."""
        def create(v):
            """Start a combiner from the first value."""
            return [v]

        def merge_value(acc, v):
            """Fold one more value into a combiner."""
            acc.append(v)
            return acc

        def merge_combiners(a, b):
            """Merge two combiners from different partitions."""
            a.extend(b)
            return a

        return self.combine_by_key(create, merge_value, merge_combiners, num_partitions)

    def aggregate_by_key(
        self,
        zero,
        seq_fn: Callable,
        comb_fn: Callable,
        num_partitions: int | None = None,
    ) -> "Dataset":
        """Per-key aggregation with a zero value and two merge fns."""
        import copy

        return self.combine_by_key(
            lambda v: seq_fn(copy.deepcopy(zero), v), seq_fn, comb_fn, num_partitions
        )

    def distinct(self, num_partitions: int | None = None) -> "Dataset":
        """Remove duplicate records (one shuffle)."""
        return (
            self.map(lambda x: (x, None))
            .reduce_by_key(lambda a, _b: a, num_partitions)
            .keys()
        )

    def repartition(self, num_partitions: int) -> "Dataset":
        """Redistribute records evenly via a round-robin shuffle."""
        if num_partitions < 1:
            raise ValueError(f"num_partitions must be >= 1, got {num_partitions}")

        def tag(index: int, it: Iterator) -> Iterable:
            return ((index + j, x) for j, x in enumerate(it))

        tagged = self.map_partitions(tag)
        shuffled = ShuffledDataset(
            tagged,
            num_partitions,
            lambda key: key % num_partitions,
            aggregator=None,
        )
        return shuffled.values()

    def cogroup(self, other: "Dataset", num_partitions: int | None = None) -> "Dataset":
        """Group both pair-datasets by key: (k, ([self vs], [other vs]))."""
        n = num_partitions or max(self.num_partitions, other.num_partitions)
        left = self.map_values(lambda v: (0, v))
        right = other.map_values(lambda v: (1, v))
        grouped = left.union(right).group_by_key(n)

        def split_tags(tagged: list) -> tuple[list, list]:
            lefts = [v for tag, v in tagged if tag == 0]
            rights = [v for tag, v in tagged if tag == 1]
            return (lefts, rights)

        return grouped.map_values(split_tags)

    def join(self, other: "Dataset", num_partitions: int | None = None) -> "Dataset":
        """Inner join on key: (k, (v_self, v_other))."""
        return self.cogroup(other, num_partitions).flat_map_values(
            lambda pair: [(a, b) for a in pair[0] for b in pair[1]]
        )

    def left_outer_join(
        self, other: "Dataset", num_partitions: int | None = None
    ) -> "Dataset":
        """Left join: (k, (v_self, v_other | None))."""

        def expand(pair):
            lefts, rights = pair
            if not rights:
                return [(a, None) for a in lefts]
            return [(a, b) for a in lefts for b in rights]

        return self.cogroup(other, num_partitions).flat_map_values(expand)

    def right_outer_join(
        self, other: "Dataset", num_partitions: int | None = None
    ) -> "Dataset":
        """Right join: (k, (v_self | None, v_other))."""

        def expand(pair):
            lefts, rights = pair
            if not lefts:
                return [(None, b) for b in rights]
            return [(a, b) for a in lefts for b in rights]

        return self.cogroup(other, num_partitions).flat_map_values(expand)

    def full_outer_join(
        self, other: "Dataset", num_partitions: int | None = None
    ) -> "Dataset":
        """Full join: (k, (v_self | None, v_other | None))."""

        def expand(pair):
            lefts, rights = pair
            if not lefts:
                return [(None, b) for b in rights]
            if not rights:
                return [(a, None) for a in lefts]
            return [(a, b) for a in lefts for b in rights]

        return self.cogroup(other, num_partitions).flat_map_values(expand)

    def sort_by(
        self,
        key_fn: Callable,
        ascending: bool = True,
        num_partitions: int | None = None,
    ) -> "Dataset":
        """Globally sort via sampled range partitioning."""
        n = num_partitions or self.num_partitions
        keyed = self.map(lambda x: (key_fn(x), x))
        # Sample keys to pick (n - 1) range boundaries.
        all_keys = keyed.keys().collect()
        if not all_keys or n == 1:
            boundaries: list = []
        else:
            sorted_keys = sorted(all_keys)
            boundaries = [
                sorted_keys[int(len(sorted_keys) * (i + 1) / n) - 1]
                for i in range(n - 1)
            ]

        def range_partition(key: object) -> int:
            idx = bisect.bisect_right(boundaries, key)
            if not ascending:
                return n - 1 - idx
            return idx

        shuffled = ShuffledDataset(keyed, n, range_partition, aggregator=None)

        def sort_partition(_i: int, it: Iterator) -> Iterable:
            records = sorted(it, key=lambda kv: kv[0], reverse=not ascending)
            return (v for _k, v in records)

        return shuffled.map_partitions(sort_partition)

    # -- actions ---------------------------------------------------------------

    def collect(self) -> list:
        """Action: materialize every record on the driver, in order."""
        results = self.context.run_job(self, list)
        out: list = []
        for part in results:
            out.extend(part)
        return out

    def collect_partitions(self) -> list[list]:
        """Action: per-partition record lists on the driver."""
        return self.context.run_job(self, list)

    def count(self) -> int:
        """Action: number of records."""
        return sum(self.context.run_job(self, lambda it: sum(1 for _ in it)))

    def take(self, n: int) -> list:
        """First ``n`` records in partition order (computes lazily per
        partition until satisfied)."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        out: list = []
        for split in range(self.num_partitions):
            if len(out) >= n:
                break
            part = self.context.run_job(self, list, partitions=[split])[0]
            out.extend(part[: n - len(out)])
        return out

    def first(self):
        """Action: the first record; raises on an empty dataset."""
        result = self.take(1)
        if not result:
            raise BatchExecutionError("first() on an empty dataset")
        return result[0]

    def reduce(self, fn: Callable):
        """Action: fold all records with an associative function."""
        def reduce_partition(it: Iterator):
            acc = _SENTINEL
            for x in it:
                acc = x if acc is _SENTINEL else fn(acc, x)
            return acc

        parts = [
            p
            for p in self.context.run_job(self, reduce_partition)
            if p is not _SENTINEL
        ]
        if not parts:
            raise BatchExecutionError("reduce() on an empty dataset")
        acc = parts[0]
        for p in parts[1:]:
            acc = fn(acc, p)
        return acc

    def fold(self, zero, fn: Callable):
        """Action: like reduce but with a zero of the element type."""
        import copy

        def fold_partition(it: Iterator):
            acc = copy.deepcopy(zero)
            for x in it:
                acc = fn(acc, x)
            return acc

        acc = copy.deepcopy(zero)
        for part in self.context.run_job(self, fold_partition):
            acc = fn(acc, part)
        return acc

    def aggregate(self, zero, seq_fn: Callable, comb_fn: Callable):
        """Action: fold into an accumulator of a different type."""
        import copy

        def agg_partition(it: Iterator):
            acc = copy.deepcopy(zero)
            for x in it:
                acc = seq_fn(acc, x)
            return acc

        acc = copy.deepcopy(zero)
        for part in self.context.run_job(self, agg_partition):
            acc = comb_fn(acc, part)
        return acc

    def sum(self):
        """Action: sum of all records."""
        return self.fold(0, lambda a, b: a + b)

    def mean(self) -> float:
        """Action: arithmetic mean; raises on an empty dataset."""
        total, count = self.aggregate(
            (0.0, 0),
            lambda acc, x: (acc[0] + x, acc[1] + 1),
            lambda a, b: (a[0] + b[0], a[1] + b[1]),
        )
        if count == 0:
            raise BatchExecutionError("mean() on an empty dataset")
        return total / count

    def max(self):
        """Action: largest record."""
        return self.reduce(lambda a, b: a if a >= b else b)

    def min(self):
        """Action: smallest record."""
        return self.reduce(lambda a, b: a if a <= b else b)

    def count_by_key(self) -> dict:
        """Action: records per key, as a dict."""
        counts: dict = {}
        for k, _v in self.collect():
            counts[k] = counts.get(k, 0) + 1
        return counts

    def collect_as_map(self) -> dict:
        """Action: pairs as a dict (last write per key wins)."""
        return dict(self.collect())

    def lookup(self, key: object) -> list:
        """Action: every value stored under ``key``."""
        return [v for k, v in self.collect() if k == key]

    def foreach(self, fn: Callable) -> None:
        """Action: run ``fn`` on every record for its side effects.

        Always executes in-process (``local_only``), never in forked
        workers: the whole point of ``foreach`` is mutating driver-side
        state, which a forked worker's copy-on-write memory would
        swallow. Accumulator updates inside ``fn`` work under either
        path.
        """
        def run(it: Iterator):
            for x in it:
                fn(x)
            return None

        self.context.run_job(self, run, local_only=True)

    def save_to_table(self, table) -> int:
        """Write a pair-dataset into a veloxstore table; returns count.

        The batch→storage leg of the paper's architecture: offline jobs
        (retrained weights, recomputed features) land in the store the
        serving tier reads. Writes go through ``table.put`` so they are
        journaled like any other mutation. Under the threaded scheduler,
        concurrent writers are safe for *distinct* keys (CPython's GIL
        makes each put's dict/journal mutation atomic); duplicate keys
        across partitions land in last-writer-wins order.
        """
        written = self.context.accumulator(0)

        def write(record):
            key, value = record
            table.put(key, value)
            written.add(1)

        self.foreach(write)
        return written.value


_SENTINEL = object()


class ParallelCollectionDataset(Dataset):
    """A driver-side list sliced into roughly equal partitions."""

    def __init__(self, context, data: list, num_partitions: int):
        super().__init__(context, num_partitions, dependencies=[])
        self._slices = _slice(data, num_partitions)

    def compute(self, split: int, ctx: TaskContext) -> Iterable:
        """Produce this partition's records (see Dataset.compute)."""
        return self._slices[split]


class RangeDataset(Dataset):
    """Lazily generated integer range."""

    def __init__(self, context, start: int, stop: int, step: int, num_partitions: int):
        if step == 0:
            raise ValueError("step must be non-zero")
        super().__init__(context, num_partitions, dependencies=[])
        self._values = range(start, stop, step)

    def compute(self, split: int, ctx: TaskContext) -> Iterable:
        """Produce this partition's records (see Dataset.compute)."""
        total = len(self._values)
        lo = total * split // self.num_partitions
        hi = total * (split + 1) // self.num_partitions
        return self._values[lo:hi]


class TableScanDataset(Dataset):
    """Reads a veloxstore table, one dataset partition per table partition.

    This is the path offline retraining uses to consume user weights and
    item features "from the storage layer" (paper Section 3).
    """

    def __init__(self, context, table):
        super().__init__(context, table.num_partitions, dependencies=[])
        self._table = table

    def compute(self, split: int, ctx: TaskContext) -> Iterable:
        """Produce this partition's records (see Dataset.compute)."""
        return self._table.scan_partition(split)


class MapPartitionsDataset(Dataset):
    """Narrow transformation: fn(partition_index, parent_iterator)."""

    def __init__(self, parent: Dataset, fn: Callable[[int, Iterator], Iterable]):
        super().__init__(
            parent.context, parent.num_partitions, [NarrowDependency(parent)]
        )
        self._parent = parent
        self._fn = fn

    def compute(self, split: int, ctx: TaskContext) -> Iterable:
        """Produce this partition's records (see Dataset.compute)."""
        return self._fn(split, iter(self._parent.iterator(split, ctx)))


class UnionDataset(Dataset):
    """Concatenation: partitions of all parents, in order."""

    def __init__(self, context, parents: list[Dataset]):
        if not parents:
            raise ValueError("union requires at least one parent")
        total = sum(p.num_partitions for p in parents)
        super().__init__(context, total, [NarrowDependency(p) for p in parents])
        self._parents = parents

    def compute(self, split: int, ctx: TaskContext) -> Iterable:
        """Produce this partition's records (see Dataset.compute)."""
        offset = split
        for parent in self._parents:
            if offset < parent.num_partitions:
                return parent.iterator(offset, ctx)
            offset -= parent.num_partitions
        raise BatchExecutionError(f"union has no partition {split}")


class ShuffledDataset(Dataset):
    """Reduce side of a shuffle: fetches buckets from every map output.

    With an aggregator, values are merged per key and records are
    ``(key, combiner)``. Without one, records pass through unmerged as
    ``(key, value)``.
    """

    def __init__(
        self,
        parent: Dataset,
        num_partitions: int,
        partition_for: Callable[[object], int],
        aggregator: Aggregator | None,
    ):
        dep = ShuffleDependency(parent, num_partitions, partition_for, aggregator)
        super().__init__(parent.context, num_partitions, [dep])
        self.shuffle_dependency = dep

    def compute(self, split: int, ctx: TaskContext) -> Iterable:
        """Produce this partition's records (see Dataset.compute)."""
        dep = self.shuffle_dependency
        if dep.aggregator is None:
            out: list = []
            for map_partition in range(dep.parent.num_partitions):
                out.extend(
                    ctx.shuffle_store.fetch(dep.shuffle_id, map_partition, split)
                )
            return out
        combined: dict = {}
        agg = dep.aggregator
        for map_partition in range(dep.parent.num_partitions):
            bucket = ctx.shuffle_store.fetch(dep.shuffle_id, map_partition, split)
            for key, combiner in bucket:
                if key in combined:
                    combined[key] = agg.merge_combiners(combined[key], combiner)
                else:
                    combined[key] = combiner
        return list(combined.items())


def _slice(data: list, num_partitions: int) -> list[list]:
    """Split ``data`` into ``num_partitions`` contiguous, balanced slices."""
    data = list(data)
    total = len(data)
    return [
        data[total * i // num_partitions : total * (i + 1) // num_partitions]
        for i in range(num_partitions)
    ]

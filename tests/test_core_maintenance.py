"""Maintenance scheduler: recurring retrains/snapshots on virtual time."""

import pytest

from repro.common.clock import SimulatedClock
from repro.common.errors import ValidationError
from repro.core.maintenance import MaintenanceScheduler


class TestScheduling:
    def test_task_runs_on_its_interval(self):
        clock = SimulatedClock()
        scheduler = MaintenanceScheduler(clock)
        runs = []
        scheduler.every(10.0, lambda: runs.append(clock.now()), name="tick")
        scheduler.run_until(35.0)
        assert runs == [10.0, 20.0, 30.0]
        assert clock.now() == 35.0

    def test_multiple_tasks_interleave_in_due_order(self):
        clock = SimulatedClock()
        scheduler = MaintenanceScheduler(clock)
        order = []
        scheduler.every(4.0, lambda: order.append("fast"), name="fast")
        scheduler.every(10.0, lambda: order.append("slow"), name="slow")
        scheduler.run_until(12.0)
        assert order == ["fast", "fast", "slow", "fast"]

    def test_run_pending_only_fires_due_tasks(self):
        clock = SimulatedClock()
        scheduler = MaintenanceScheduler(clock)
        runs = []
        scheduler.every(5.0, lambda: runs.append(1), name="t")
        assert scheduler.run_pending() == []
        clock.advance(6.0)
        executed = scheduler.run_pending()
        assert len(executed) == 1 and runs == [1]

    def test_overdue_task_runs_once_not_catchup_storm(self):
        clock = SimulatedClock()
        scheduler = MaintenanceScheduler(clock)
        runs = []
        scheduler.every(1.0, lambda: runs.append(1), name="t")
        clock.advance(100.0)
        scheduler.run_pending()
        assert len(runs) == 1
        assert scheduler.task("t").next_due == pytest.approx(101.0)

    def test_failing_task_is_recorded_and_rearmed(self):
        clock = SimulatedClock()
        scheduler = MaintenanceScheduler(clock)

        def boom():
            raise RuntimeError("batch cluster down")

        scheduler.every(5.0, boom, name="retrain")
        runs = scheduler.run_until(11.0)
        assert [r.ok for r in runs] == [False, False]
        assert "batch cluster down" in runs[0].error
        assert scheduler.task("retrain").last_error is not None

    def test_cancel(self):
        scheduler = MaintenanceScheduler(SimulatedClock())
        scheduler.every(1.0, lambda: None, name="t")
        assert scheduler.cancel("t") is True
        assert scheduler.cancel("t") is False
        assert scheduler.tasks() == []

    def test_validation(self):
        scheduler = MaintenanceScheduler(SimulatedClock())
        with pytest.raises(ValidationError):
            scheduler.every(0.0, lambda: None, name="t")
        with pytest.raises(ValidationError):
            scheduler.every(1.0, lambda: None, name="")
        scheduler.every(1.0, lambda: None, name="t")
        with pytest.raises(ValidationError):
            scheduler.every(1.0, lambda: None, name="t")
        with pytest.raises(ValidationError):
            scheduler.task("ghost")
        with pytest.raises(ValidationError):
            scheduler.run_until(-5.0)


class TestVeloxIntegration:
    def test_nightly_retrain_schedule(self, deployed_velox, small_split):
        for r in small_split.stream[:80]:
            deployed_velox.observe(uid=r.uid, x=r.item_id, y=r.rating)
        clock = SimulatedClock()
        scheduler = MaintenanceScheduler(clock)
        scheduler.schedule_retrain(deployed_velox, interval=86_400.0)
        runs = scheduler.run_until(2 * 86_400.0 + 1)
        assert len(runs) == 2 and all(r.ok for r in runs)
        assert deployed_velox.model().version == 2
        events = deployed_velox.manager.retrain_events
        assert all("scheduled" in e.reason for e in events)

    def test_snapshot_schedule_compacts_journals(self, deployed_velox):
        for i in range(30):
            deployed_velox.observe(uid=i % 5, x=i % 8, y=3.0)
        table = deployed_velox.manager.user_state_table("songs")
        scheduler = MaintenanceScheduler(SimulatedClock())
        scheduler.schedule_snapshot(deployed_velox.cluster.store, interval=3600.0)
        scheduler.run_until(3601.0)
        # post-snapshot, recovery replays only post-snapshot writes
        deployed_velox.observe(uid=0, x=1, y=4.0)
        table.fail_partition(0)
        replayed = table.recover_partition(0)
        assert replayed == 1

    def test_sampled_scheduled_retrain(self, deployed_velox, small_split):
        for r in small_split.stream:
            deployed_velox.observe(uid=r.uid, x=r.item_id, y=r.rating)
        scheduler = MaintenanceScheduler(SimulatedClock())
        scheduler.schedule_retrain(
            deployed_velox, interval=100.0, sample_fraction=0.8
        )
        runs = scheduler.run_until(101.0)
        assert runs[0].ok
        assert deployed_velox.manager.retrain_events[-1].sampled_observations is not None

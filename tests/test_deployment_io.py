"""Whole-deployment save/load."""

import numpy as np
import pytest

from repro import Velox
from repro.common.errors import StorageError


class TestSaveLoad:
    def test_roundtrip_serves_identical_predictions(self, deployed_velox, tmp_path):
        for i in range(10):
            deployed_velox.observe(uid=i % 4, x=i % 8, y=3.5)
        expected = {
            (uid, item): deployed_velox.predict(None, uid, item)[1]
            for uid in range(6)
            for item in range(5)
        }
        deployed_velox.save(tmp_path / "deploy")

        restored = Velox.load(tmp_path / "deploy")
        for (uid, item), score in expected.items():
            assert restored.predict(None, uid, item)[1] == pytest.approx(score)

    def test_config_and_default_model_restored(self, deployed_velox, tmp_path):
        deployed_velox.save(tmp_path / "d")
        restored = Velox.load(tmp_path / "d")
        assert restored.config == deployed_velox.config
        assert restored._default_model == "songs"
        assert restored.cluster.num_nodes == deployed_velox.cluster.num_nodes

    def test_version_history_survives(self, deployed_velox, small_split, tmp_path):
        for r in small_split.stream[:60]:
            deployed_velox.observe(uid=r.uid, x=r.item_id, y=r.rating)
        deployed_velox.retrain(reason="pre-save retrain")
        deployed_velox.save(tmp_path / "d")

        restored = Velox.load(tmp_path / "d")
        assert restored.model().version == 1
        history = restored.registry.history("songs")
        assert [h.version for h in history] == [0, 1]
        assert history[1].note == "pre-save retrain"
        # rollback still works against the restored history
        revived = restored.rollback(version=0)
        assert revived.version == 2

    def test_observation_log_survives(self, deployed_velox, tmp_path):
        for i in range(7):
            deployed_velox.observe(uid=1, x=i % 5, y=4.0)
        deployed_velox.save(tmp_path / "d")
        restored = Velox.load(tmp_path / "d")
        assert len(restored.manager.observation_log("songs")) == 7

    def test_bootstrap_averager_rebuilt(self, deployed_velox, tmp_path):
        deployed_velox.save(tmp_path / "d")
        restored = Velox.load(tmp_path / "d")
        original = deployed_velox.manager.averager("songs")
        rebuilt = restored.manager.averager("songs")
        assert len(rebuilt) == len(original)
        assert np.allclose(rebuilt.mean(), original.mean())
        # an unknown user gets the same bootstrap prediction
        a = deployed_velox.predict(None, 99_999, 3)[1]
        b = restored.predict(None, 99_999, 3)[1]
        assert a == pytest.approx(b)

    def test_restored_deployment_keeps_learning(self, deployed_velox, tmp_path):
        deployed_velox.save(tmp_path / "d")
        restored = Velox.load(tmp_path / "d")
        before = restored.predict(None, 2, 6)[1]
        for __ in range(8):
            restored.observe(uid=2, x=6, y=5.0)
        after = restored.predict(None, 2, 6)[1]
        assert abs(after - 5.0) < abs(before - 5.0)
        # and retraining works end to end on the restored instance
        event = restored.retrain()
        assert event.new_version == 1

    def test_multiple_models_roundtrip(self, deployed_velox, tmp_path, rng):
        from repro.core.models import PersonalizedLinearModel

        deployed_velox.add_model(PersonalizedLinearModel("aux", 3))
        x = rng.normal(size=3)
        deployed_velox.observe(uid=1, x=x, y=2.0, model_name="aux")
        deployed_velox.save(tmp_path / "d")
        restored = Velox.load(tmp_path / "d")
        assert set(restored.registry.names()) == {"aux", "songs"}
        assert len(restored.manager.observation_log("aux")) == 1

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            Velox.load(tmp_path / "nothing-here")

"""Online learning: Eq. 2 correctness, Sherman–Morrison equivalence, SGD."""

import numpy as np
import pytest

from repro.common.errors import ConfigError, ValidationError
from repro.core.online import (
    NormalEquationsUpdater,
    SgdUpdater,
    ShermanMorrisonUpdater,
    UserModelState,
    make_updater,
)


def make_state(dimension=4, regularization=0.5, prior=None):
    return UserModelState(dimension, regularization, prior_mean=prior)


def ridge_solution(features, labels, lam, prior):
    """Direct Eq. 2 reference solve (with prior shift)."""
    f = np.vstack(features)
    y = np.asarray(labels, float)
    gram = f.T @ f + lam * np.eye(f.shape[1])
    return prior + np.linalg.solve(gram, f.T @ (y - f @ prior))


class TestUserModelState:
    def test_initial_weights_are_prior(self):
        prior = np.array([1.0, 2.0, 3.0])
        state = make_state(3, 0.5, prior)
        assert np.array_equal(state.weights, prior)

    def test_predict_is_dot_product(self):
        state = make_state(3, 0.5, np.array([1.0, 0.0, 2.0]))
        assert state.predict(np.array([3.0, 5.0, 1.0])) == pytest.approx(5.0)

    def test_uncertainty_positive_and_shrinks(self):
        state = make_state(3, 1.0)
        f = np.array([1.0, 0.5, -0.5])
        before = state.uncertainty(f)
        ShermanMorrisonUpdater().update(state, f, 1.0)
        after = state.uncertainty(f)
        assert 0 < after < before

    def test_validation(self):
        with pytest.raises(ValidationError):
            UserModelState(0, 0.5)
        with pytest.raises(ValidationError):
            UserModelState(3, -1.0)
        with pytest.raises(ValidationError):
            UserModelState(3, 0.5, prior_mean=np.zeros(5))


class TestNormalEquationsUpdater:
    def test_matches_direct_ridge_solve(self, rng):
        lam = 0.7
        state = make_state(4, lam)
        updater = NormalEquationsUpdater()
        features, labels = [], []
        for _ in range(12):
            f = rng.normal(size=4)
            y = float(rng.normal())
            features.append(f)
            labels.append(y)
            updater.update(state, f, y)
        expected = ridge_solution(features, labels, lam, np.zeros(4))
        assert np.allclose(state.weights, expected)

    def test_prior_respected(self, rng):
        prior = np.array([0.0, 1.0, 0.0])
        lam = 2.0
        state = make_state(3, lam, prior)
        updater = NormalEquationsUpdater()
        features, labels = [], []
        for _ in range(5):
            f = rng.normal(size=3)
            y = float(rng.normal())
            features.append(f)
            labels.append(y)
            updater.update(state, f, y)
        expected = ridge_solution(features, labels, lam, prior)
        assert np.allclose(state.weights, expected)

    def test_history_retained(self, rng):
        state = make_state()
        updater = NormalEquationsUpdater()
        for _ in range(3):
            updater.update(state, rng.normal(size=4), 1.0)
        assert state.observation_count == 3
        assert len(state.feature_history) == 3

    def test_rejects_bad_shapes_and_nans(self):
        state = make_state(3)
        updater = NormalEquationsUpdater()
        with pytest.raises(ValidationError):
            updater.update(state, np.zeros(5), 1.0)
        with pytest.raises(ValidationError):
            updater.update(state, np.array([1.0, np.nan, 0.0]), 1.0)
        with pytest.raises(ValidationError):
            updater.update(state, np.zeros(3), float("inf"))


class TestShermanMorrisonEquivalence:
    def test_weights_match_normal_equations_every_step(self, rng):
        """The headline algebraic invariant: SM == Eq. 2 at every update."""
        lam = 0.9
        prior = rng.normal(size=5) * 0.3
        ne_state = make_state(5, lam, prior.copy())
        sm_state = make_state(5, lam, prior.copy())
        ne, sm = NormalEquationsUpdater(), ShermanMorrisonUpdater()
        for _ in range(20):
            f = rng.normal(size=5)
            y = float(rng.normal())
            ne.update(ne_state, f, y)
            sm.update(sm_state, f, y)
            assert np.allclose(ne_state.weights, sm_state.weights, atol=1e-8)

    def test_a_inv_matches_explicit_inverse(self, rng):
        lam = 1.5
        state = make_state(4, lam)
        sm = ShermanMorrisonUpdater()
        features = [rng.normal(size=4) for _ in range(10)]
        for f in features:
            sm.update(state, f, 0.5)
        f_matrix = np.vstack(features)
        explicit = np.linalg.inv(f_matrix.T @ f_matrix + lam * np.eye(4))
        assert np.allclose(state.a_inv, explicit, atol=1e-9)

    def test_no_history_kept(self, rng):
        state = make_state()
        sm = ShermanMorrisonUpdater()
        for _ in range(5):
            sm.update(state, rng.normal(size=4), 1.0)
        assert state.feature_history == []
        assert state.observation_count == 5


class TestSgdUpdater:
    def test_moves_toward_signal(self, rng):
        true_w = np.array([1.0, -2.0, 0.5])
        state = make_state(3, 0.1)
        sgd = SgdUpdater(learning_rate=0.1)
        for _ in range(2000):
            f = rng.normal(size=3)
            y = float(true_w @ f)
            sgd.update(state, f, y)
        assert np.linalg.norm(state.weights - true_w) < 0.3

    def test_progressive_loss_decreases(self, rng):
        true_w = np.array([2.0, 1.0])
        state = make_state(2, 0.1)
        sgd = SgdUpdater(learning_rate=0.1)
        first_losses, last_losses = [], []
        for i in range(500):
            f = rng.normal(size=2)
            y = float(true_w @ f)
            before = (y - state.predict(f)) ** 2
            sgd.update(state, f, y)
            if i < 50:
                first_losses.append(before)
            if i >= 450:
                last_losses.append(before)
        assert np.mean(last_losses) < np.mean(first_losses)

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            SgdUpdater(learning_rate=0.0)
        with pytest.raises(ConfigError):
            SgdUpdater(decay=-1.0)


class TestProgressiveValidation:
    def test_loss_recorded_before_update(self):
        state = make_state(2, 0.5, np.array([0.0, 0.0]))
        updater = ShermanMorrisonUpdater()
        updater.update(state, np.array([1.0, 0.0]), 2.0)
        # prediction before the first update was 0 -> loss 4
        assert state.progressive_loss.count == 1
        assert state.progressive_loss.mean == pytest.approx(4.0)


class TestMakeUpdater:
    def test_factory_names(self):
        assert isinstance(make_updater("normal_equations"), NormalEquationsUpdater)
        assert isinstance(make_updater("sherman_morrison"), ShermanMorrisonUpdater)
        assert isinstance(make_updater("sgd"), SgdUpdater)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            make_updater("gradient_boosting")

"""Stateful (model-based) testing of the store against a plain dict.

Hypothesis drives random interleavings of puts, deletes, truncates,
snapshots, failures, and recoveries against a Table, checking after
every step that the visible state matches a reference dict — the
strongest statement of the journal/recovery contract.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.store import Table


class TableMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.table = Table("t", num_partitions=3, partitioner=lambda k: k % 3)
        self.model: dict[int, int] = {}
        self.failed: set[int] = set()

    keys = st.integers(0, 20)
    values = st.integers(-1000, 1000)

    def _healthy(self, key: int) -> bool:
        return key % 3 not in self.failed

    @rule(key=keys, value=values)
    def put(self, key, value):
        if self._healthy(key):
            self.table.put(key, value)
            self.model[key] = value

    @rule(key=keys)
    def delete(self, key):
        if self._healthy(key):
            assert self.table.delete(key) == (key in self.model)
            self.model.pop(key, None)

    @rule()
    def truncate(self):
        if not self.failed:
            self.table.truncate()
            self.model.clear()

    @rule()
    def snapshot(self):
        if not self.failed:
            self.table.snapshot()

    @rule(partition=st.integers(0, 2))
    def fail_partition(self, partition):
        if partition not in self.failed:
            self.table.fail_partition(partition)
            self.failed.add(partition)

    @rule(partition=st.integers(0, 2))
    def recover_partition(self, partition):
        if partition in self.failed:
            self.table.recover_partition(partition)
            self.failed.discard(partition)

    @invariant()
    def healthy_partitions_match_model(self):
        for key, value in self.model.items():
            if self._healthy(key):
                assert self.table.get(key) == value
        visible = {
            key: value
            for partition in range(3)
            if partition not in self.failed
            for key, value in self.table.scan_partition(partition)
        }
        expected = {
            key: value for key, value in self.model.items() if self._healthy(key)
        }
        assert visible == expected


TableMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None
)
TestTableStateful = TableMachine.TestCase

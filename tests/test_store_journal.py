"""Journal: append ordering, replay, compaction rules."""

import pytest

from repro.store.journal import Journal, JournalOp


class TestAppendAndReplay:
    def test_sequences_are_dense(self):
        journal = Journal()
        records = [journal.append(JournalOp.PUT, i, i, 1) for i in range(5)]
        assert [r.sequence for r in records] == [0, 1, 2, 3, 4]

    def test_replay_all(self):
        journal = Journal()
        journal.append(JournalOp.PUT, "a", 1, 1)
        journal.append(JournalOp.DELETE, "a", None, 0)
        ops = [r.op for r in journal.replay()]
        assert ops == [JournalOp.PUT, JournalOp.DELETE]

    def test_replay_from_offset(self):
        journal = Journal()
        for i in range(5):
            journal.append(JournalOp.PUT, i, i, 1)
        assert [r.key for r in journal.replay(3)] == [3, 4]

    def test_replay_from_end_is_empty(self):
        journal = Journal()
        journal.append(JournalOp.PUT, "a", 1, 1)
        assert list(journal.replay(1)) == []

    def test_len_counts_all_ever_appended(self):
        journal = Journal()
        for i in range(4):
            journal.append(JournalOp.PUT, i, i, 1)
        assert len(journal) == 4


class TestCompaction:
    def test_compact_drops_prefix(self):
        journal = Journal()
        for i in range(6):
            journal.append(JournalOp.PUT, i, i, 1)
        dropped = journal.compact(4)
        assert dropped == 4
        assert [r.key for r in journal.replay(4)] == [4, 5]

    def test_replay_before_compaction_horizon_fails(self):
        journal = Journal()
        for i in range(4):
            journal.append(JournalOp.PUT, i, i, 1)
        journal.compact(2)
        with pytest.raises(ValueError):
            list(journal.replay(0))

    def test_compact_beyond_end_rejected(self):
        journal = Journal()
        journal.append(JournalOp.PUT, 0, 0, 1)
        with pytest.raises(ValueError):
            journal.compact(5)

    def test_compact_idempotent(self):
        journal = Journal()
        for i in range(4):
            journal.append(JournalOp.PUT, i, i, 1)
        journal.compact(2)
        assert journal.compact(2) == 0

    def test_sequences_continue_after_compaction(self):
        journal = Journal()
        for i in range(3):
            journal.append(JournalOp.PUT, i, i, 1)
        journal.compact(3)
        record = journal.append(JournalOp.PUT, "x", 1, 1)
        assert record.sequence == 3
        assert len(journal) == 4

"""Aggregate benchmark series files into one markdown report.

``python -m repro.tools.bench_report [results_dir]`` collects the
``benchmarks/results/*.txt`` series written by the benchmark harness and
prints them as one markdown document — the raw appendix behind
EXPERIMENTS.md. Useful after a fresh ``pytest benchmarks/
--benchmark-only`` run to eyeball every series in one place.

Benchmarks that need a machine-readable artifact (CI gates, the
``BENCH_*.json`` summaries at the repo root) emit it through
:func:`write_json_summary`.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.common.errors import ValidationError

#: Render order and human titles; files not listed here are appended
#: alphabetically under their stem.
KNOWN_EXPERIMENTS = [
    ("fig3_update_latency", "Figure 3 — online update latency vs dimension"),
    ("fig4_prediction_latency", "Figure 4 — topK latency vs itemset size"),
    ("sec42_accuracy", "Section 4.2 — online vs offline accuracy"),
    ("ablation_cache_skew", "Ablation — cache hit rate vs Zipf skew"),
    ("ablation_routing", "Ablation — routing locality"),
    ("ablation_load_balance", "Ablation — load balance"),
    ("ablation_bandits", "Ablation — bandits vs the feedback loop"),
    ("ablation_materialization", "Ablation — materialization strategies"),
    ("ablation_updaters", "Ablation — online updater choice"),
    ("ablation_topk_engines", "Ablation — efficient top-K engines"),
    ("ablation_model_selection", "Ablation — dynamic model selection"),
    ("ablation_sampled_retrain", "Ablation — sampled retraining"),
    ("ablation_wire", "Ablation — wire transport: binary framed pipelining"),
    ("ablation_batch", "Ablation — batch tier: fork executor + vectorized ALS"),
    (
        "ablation_replication",
        "Ablation — replication & failover: promotion latency, stale reads",
    ),
    (
        "ablation_scale",
        "Ablation — columnar slab user-weight store at 10k/100k/1M users",
    ),
    (
        "ablation_frontend",
        "Ablation — front end: event loop vs thread-per-connection, "
        "16 to 2048 clients",
    ),
    (
        "ablation_analytics",
        "Ablation — analytics tier: MV routing vs log scans, integrity, "
        "serving interference",
    ),
]


def write_json_summary(out_path: str | Path, experiment: str, data: dict) -> Path:
    """Write one benchmark's machine-readable summary as JSON.

    ``data`` must be JSON-serializable (convert numpy scalars first).
    Returns the written path. The file round-trips through ``json`` so
    CI jobs and the driver can assert on recorded numbers without
    parsing the human-oriented ``.txt`` series.
    """
    path = Path(out_path)
    payload = {"experiment": experiment, **data}
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def build_report(results_dir: str | Path) -> str:
    """Render every series file in ``results_dir`` as markdown."""
    directory = Path(results_dir)
    if not directory.is_dir():
        raise ValidationError(f"no results directory at {directory}")
    files = {path.stem: path for path in sorted(directory.glob("*.txt"))}
    if not files:
        raise ValidationError(
            f"{directory} has no .txt series; run "
            "`pytest benchmarks/ --benchmark-only` first"
        )

    sections: list[str] = ["# Benchmark series report", ""]
    covered = set()
    for stem, title in KNOWN_EXPERIMENTS:
        path = files.get(stem)
        if path is None:
            continue
        covered.add(stem)
        sections.extend([f"## {title}", "", "```"])
        sections.append(path.read_text(encoding="utf-8").rstrip())
        sections.extend(["```", ""])
    for stem in sorted(set(files) - covered):
        sections.extend([f"## {stem}", "", "```"])
        sections.append(files[stem].read_text(encoding="utf-8").rstrip())
        sections.extend(["```", ""])
    missing = [t for s, t in KNOWN_EXPERIMENTS if s not in covered]
    if missing:
        sections.append("## Missing series (benchmarks not yet run)")
        sections.append("")
        for title in missing:
            sections.append(f"- {title}")
        sections.append("")
    return "\n".join(sections)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = argv if argv is not None else sys.argv[1:]
    default = Path(__file__).resolve().parents[3].parent / "benchmarks" / "results"
    directory = Path(args[0]) if args else Path("benchmarks/results")
    if not directory.is_dir() and default.is_dir():
        directory = default
    try:
        print(build_report(directory))
    except ValidationError as err:
        print(f"bench_report: {err}", file=sys.stderr)
        return 1
    except BrokenPipeError:  # e.g. `| head` closed the pipe; not an error
        return 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

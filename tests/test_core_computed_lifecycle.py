"""Full lifecycle for computed-feature models through the manager path.

The MF model's lifecycle is covered extensively elsewhere; these tests
drive the other model families (linear, RBF, SVM ensemble, MLP) through
deploy → observe → retrain via the manager, which exercises the
item_data path of the observation log (raw vectors, not item ids).
"""

import numpy as np
import pytest

from repro import Velox, VeloxConfig
from repro.core.models import (
    EnsembleSvmModel,
    MlpFeatureModel,
    PersonalizedLinearModel,
    RandomFourierModel,
)

INPUT_DIM = 4


def make_velox():
    return Velox.deploy(VeloxConfig(num_nodes=2), auto_retrain=False)


def drive_lifecycle(velox, model_name, rng, observations=120, users=5):
    """Observe a linear ground truth, retrain, report holdout MSE."""
    true_w = rng.normal(size=INPUT_DIM)

    def label(x):
        return float(true_w @ x + 0.05 * rng.normal())

    for i in range(observations):
        x = rng.normal(size=INPUT_DIM)
        velox.observe(uid=i % users, x=x, y=label(x), model_name=model_name)
    velox.retrain(model_name)
    assert velox.model(model_name).version == 1

    errors = []
    for i in range(60):
        x = rng.normal(size=INPUT_DIM)
        __, score = velox.predict(model_name, i % users, x)
        errors.append((score - float(true_w @ x)) ** 2)
    return float(np.mean(errors))


class TestLinearLifecycle:
    def test_observe_retrain_predict(self, rng):
        velox = make_velox()
        velox.add_model(PersonalizedLinearModel("lin", INPUT_DIM))
        mse = drive_lifecycle(velox, "lin", rng)
        assert mse < 0.15  # identity features nail a linear truth


class TestRbfLifecycle:
    def test_observe_retrain_predict(self, rng):
        velox = make_velox()
        velox.add_model(
            RandomFourierModel("rbf", INPUT_DIM, num_features=64, gamma=0.3, seed=1)
        )
        mse = drive_lifecycle(velox, "rbf", rng)
        assert np.isfinite(mse)
        # RBF features approximate a linear truth less exactly but must
        # still clearly beat predicting the mean (variance of w.x ~ 4).
        assert mse < 2.0


class TestSvmEnsembleLifecycle:
    def test_observe_retrain_predict(self, rng):
        velox = make_velox()
        velox.add_model(
            EnsembleSvmModel.untrained("svm", INPUT_DIM, num_svms=6, seed=2)
        )
        mse = drive_lifecycle(velox, "svm", rng)
        assert np.isfinite(mse)
        assert mse < 3.0

    def test_retrain_changes_feature_space(self, rng):
        velox = make_velox()
        velox.add_model(
            EnsembleSvmModel.untrained("svm", INPUT_DIM, num_svms=4, seed=3)
        )
        x = rng.normal(size=INPUT_DIM)
        before = velox.model("svm").features(x).copy()
        for i in range(40):
            xi = rng.normal(size=INPUT_DIM)
            velox.observe(uid=i % 3, x=xi, y=float(xi.sum()), model_name="svm")
        velox.retrain("svm")
        after = velox.model("svm").features(x)
        assert not np.allclose(before, after)


class TestMlpLifecycle:
    def test_observe_retrain_predict(self, rng):
        velox = make_velox()
        velox.add_model(
            MlpFeatureModel("mlp", INPUT_DIM, hidden_dimension=16, seed=4)
        )
        mse = drive_lifecycle(velox, "mlp", rng, observations=150)
        assert np.isfinite(mse)
        assert mse < 2.5


class TestCachingForComputedFeatures:
    def test_feature_cache_hits_on_repeated_inputs(self, rng):
        """Computed features for identical inputs hit the content-
        addressed cache — the paper's computational-feature caching."""
        velox = make_velox()
        velox.add_model(
            RandomFourierModel("rbf", INPUT_DIM, num_features=32, seed=5)
        )
        x = rng.normal(size=INPUT_DIM)
        first = velox.predict_detailed("rbf", 0, x)
        # Same user, same input vector content (fresh array object).
        velox.observe(uid=0, x=x.copy() * 1.0, y=1.0, model_name="rbf")
        second = velox.predict_detailed("rbf", 0, x.copy())
        assert second.score != first.score or True  # score may change (weights did)
        stats = velox.service.feature_caches[0].stats
        assert stats.hits >= 1

"""The TCP front-end facade, the threaded fallback server, and the
simple JSON-lines client.

:class:`VeloxServer` is the single entry point: it selects the
transport implementation from ``VeloxConfig.frontend`` — the
single-threaded event loop (:mod:`repro.frontend.eventloop`, the
default) or the thread-per-connection server defined here — and runs
either behind one lifecycle/interface, so deployments, the replication
stack, and every test drive both the same way.

The threaded implementation: every connection starts in negotiation; a
peek at the first bytes decides the protocol. Clients that open with
the :data:`~repro.frontend.wire.MAGIC` preamble get the length-prefixed
binary framing (:mod:`repro.frontend.wire`) with correlated,
out-of-order responses — the server decodes frames and feeds them to
the dispatcher *asynchronously*, so one pipelined connection keeps many
requests in flight and an attached serving engine can actually form
batches from a single socket. Anything else is served by the original
JSON-lines loop (one request per line, one response per line, strictly
in order), so old clients keep working unchanged.
"""

from __future__ import annotations

import socket
import socketserver
import threading
import time

from repro.common.errors import TransportError, ValidationError
from repro.frontend import wire
from repro.frontend.api import (
    ApiResponse,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)
from repro.frontend.client import VeloxClient
from repro.frontend.eventloop import EventLoopServer
from repro.metrics.frontend import FrontendCounters

#: Front-end implementations selectable via ``VeloxConfig.frontend``.
FRONTENDS = ("eventloop", "threaded")

#: How long a closing binary connection waits for in-flight responses.
_DRAIN_TIMEOUT = 5.0


class _RequestHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        """Negotiate the protocol, then serve until disconnect."""
        if self._peek_magic():
            self._handle_binary()
        else:
            self._handle_json()

    def _peek_magic(self) -> bool:
        """Peek (without consuming) whether this connection opens with
        the binary protocol preamble.

        JSON-lines traffic starts with ``{``, so the first byte almost
        always decides; a short read that is still a strict prefix of
        the magic waits briefly for the rest.
        """
        magics = (wire.MAGIC, wire.MAGIC_V2)
        while True:
            try:
                data = self.connection.recv(len(wire.MAGIC), socket.MSG_PEEK)
            except OSError:
                return False
            if not data:
                return False
            if data in magics:
                return True
            if not any(magic.startswith(data) for magic in magics):
                return False
            time.sleep(0.005)  # strict prefix: the rest is still in flight

    # -- JSON-lines protocol (the fallback) ----------------------------------

    def _handle_json(self) -> None:
        """Serve JSON-line requests until the client disconnects.

        Every failure — malformed JSON, validation, or an unexpected
        error out of dispatch — becomes an error envelope on the same
        connection; the line protocol keeps serving, never dying with a
        half-open socket and no response.
        """
        client: VeloxClient = self.server.velox_client
        counters: FrontendCounters = self.server.counters
        for raw in self.rfile:
            line = raw.decode("utf-8").strip()
            if not line:
                continue
            counters.json_request()
            try:
                request = decode_request(line)
                response = client.dispatch(request)
            except ValidationError as err:
                response = ApiResponse(ok=False, error=str(err))
            except Exception as err:  # keep the connection alive
                response = ApiResponse(
                    ok=False, error=f"{type(err).__name__}: {err}"
                )
            self.wfile.write((encode_response(response) + "\n").encode("utf-8"))
            self.wfile.flush()

    # -- binary framed protocol ----------------------------------------------

    def _handle_binary(self) -> None:
        """Serve correlated binary frames, many in flight at once.

        The read loop never blocks on request execution: each decoded
        frame is handed to :meth:`VeloxClient.dispatch_async` (which
        enqueues predict/top-k into the serving engine when one is
        attached) and the response frame is written by a completion
        callback under a write lock. On EOF the connection drains
        in-flight requests before closing so no accepted request loses
        its response.
        """
        client: VeloxClient = self.server.velox_client
        counters: FrontendCounters = self.server.counters
        hello = self.rfile.readline()  # consume the hello line
        if hello not in wire.HELLO_VERSIONS:
            hello = wire.HELLO  # peeked binary but line went missing
        self.connection.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        write_lock = threading.Lock()
        pending: set = set()
        drained = threading.Condition()

        def send(corr_id: int, response: ApiResponse) -> None:
            try:
                frame = wire.encode_response_frame(response, corr_id)
            except Exception as err:  # unserializable payload
                frame = wire.encode_response_frame(
                    ApiResponse(
                        ok=False, error=f"{type(err).__name__}: {err}"
                    ),
                    corr_id,
                )
            counters.frame_out()
            with write_lock:
                try:
                    self.wfile.write(frame)
                    self.wfile.flush()
                except OSError:
                    pass  # client went away; nothing to tell it

        with write_lock:
            self.wfile.write(hello)  # echo the version the client asked for
            self.wfile.flush()
        while True:
            try:
                frame = wire.read_frame(self.rfile)
            except (TransportError, OSError):
                break
            if frame is None:
                break
            opcode, corr_id, payload = frame
            counters.frame_in()
            try:
                request = wire.decode_request_payload(opcode, payload)
            except Exception as err:
                send(
                    corr_id,
                    ApiResponse(ok=False, error=f"{type(err).__name__}: {err}"),
                )
                continue
            future = client.dispatch_async(request)
            counters.dispatch_started()
            with drained:
                pending.add(future)

            def _complete(done, corr_id=corr_id) -> None:
                try:
                    response = done.result()
                except Exception as err:
                    response = ApiResponse(
                        ok=False, error=f"{type(err).__name__}: {err}"
                    )
                send(corr_id, response)
                counters.dispatch_finished()
                with drained:
                    pending.discard(done)
                    drained.notify_all()

            future.add_done_callback(_complete)
        deadline = time.monotonic() + _DRAIN_TIMEOUT
        with drained:
            while pending and time.monotonic() < deadline:
                drained.wait(timeout=0.05)


class _ThreadedTcpServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        #: sockets of connections currently being served; closed on
        #: stop() so clients observe a restart as a dead socket instead
        #: of a silently idle one.
        self._active_connections: set = set()
        self._connections_lock = threading.Lock()

    def process_request(self, request, client_address) -> None:
        with self._connections_lock:
            self._active_connections.add(request)
        self.counters.connection_opened()
        super().process_request(request, client_address)

    def close_request(self, request) -> None:
        with self._connections_lock:
            if request in self._active_connections:
                self._active_connections.discard(request)
                self.counters.connection_closed()
        super().close_request(request)

    def close_active_connections(self) -> None:
        """Tear down every in-flight connection (server shutdown)."""
        with self._connections_lock:
            connections = list(self._active_connections)
        for connection in connections:
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass  # already gone


class _ThreadedFrontend:
    """The thread-per-connection implementation behind the facade."""

    kind = "threaded"

    def __init__(self, velox, host: str, port: int, engine=None):
        self._tcp = _ThreadedTcpServer((host, port), _RequestHandler)
        self.counters = FrontendCounters(self.kind)
        self.velox_client = VeloxClient(velox, engine=engine)
        self.velox_client.frontend_status = self.counters.snapshot
        self._tcp.velox_client = self.velox_client
        self._tcp.counters = self.counters
        self._thread: threading.Thread | None = None

    @property
    def server_address(self) -> tuple:
        return self._tcp.server_address

    def start(self) -> "_ThreadedFrontend":
        if self._thread is not None:
            raise ValidationError("server already started")
        self._thread = threading.Thread(
            target=self._tcp.serve_forever, name="velox-server", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            self._tcp.server_close()  # bound but never started
            return
        self._tcp.shutdown()
        self._tcp.server_close()
        self._tcp.close_active_connections()
        self._thread.join(timeout=5)
        self._thread = None


class VeloxServer:
    """Serves a Velox deployment on a TCP port.

    Usage::

        server = VeloxServer(velox, port=0)   # 0 = ephemeral port
        server.start()
        ... RemoteClient("127.0.0.1", server.port) ...
        server.stop()

    The transport implementation is selected by ``frontend`` —
    ``"eventloop"`` (one selector thread for every connection; see
    :class:`~repro.frontend.eventloop.EventLoopServer`) or
    ``"threaded"`` (one OS thread per connection) — defaulting to the
    deployment's ``VeloxConfig.frontend``. Both speak the same two
    negotiated protocols behind the same lifecycle, so callers never
    branch on the choice.

    With ``engine`` set to a :class:`~repro.serving.ServingEngine`,
    predict/top-k requests are enqueued through the serving engine
    (adaptive batching across connections, admission control, load
    shedding) instead of dispatched inline; the engine's lifecycle
    follows the server's. Both the JSON-lines and the binary framed
    protocol are served; see
    :class:`~repro.frontend.pipelined.PipelinedClient` for the client
    that exploits the latter.
    """

    def __init__(
        self,
        velox,
        host: str = "127.0.0.1",
        port: int = 0,
        engine=None,
        frontend: str | None = None,
    ):
        choice = (
            frontend
            if frontend is not None
            else getattr(velox.config, "frontend", "threaded")
        )
        if choice not in FRONTENDS:
            raise ValidationError(
                f"frontend must be one of {FRONTENDS}, got {choice!r}"
            )
        self.frontend = choice
        self._engine = engine
        self._started = False
        if choice == "threaded":
            self._server = _ThreadedFrontend(velox, host, port, engine=engine)
        else:
            self._server = EventLoopServer(velox, host, port, engine=engine)

    @property
    def host(self) -> str:
        """Bound host address."""
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        """Bound port (useful with port 0 / ephemeral binding)."""
        return self._server.server_address[1]

    @property
    def counters(self):
        """The front end's transport counters (status endpoint data)."""
        return self._server.counters

    def start(self) -> "VeloxServer":
        """Start serving on a background thread; returns self.

        An attached serving engine that is not yet running is started
        alongside the listener.
        """
        if self._started:
            raise ValidationError("server already started")
        self._started = True
        if self._engine is not None and not self._engine.running:
            self._engine.start()
        self._server.start()
        return self

    def stop(self) -> None:
        """Shut the server down (and any attached engine), join threads."""
        if not self._started:
            self._server.stop()  # release the listener bound at construction
            return
        self._server.stop()
        self._started = False
        if self._engine is not None:
            self._engine.stop()

    def __enter__(self) -> "VeloxServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


class RemoteClient:
    """Socket client speaking the JSON-lines protocol.

    One request in flight at a time. Transport failures — connect or
    read timeouts, the server closing mid-response — raise
    :class:`~repro.common.errors.TransportError` with the connection
    closed first, so the client is never left blocked on (or holding) a
    half-read socket. The read deadline is enforced across partial
    reads: a server trickling bytes cannot stall ``call`` past
    ``timeout`` seconds.
    """

    def __init__(self, host: str, port: int, timeout: float = 10.0):
        self._timeout = timeout
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._buffer = b""
        self._closed = False

    def call(self, request) -> ApiResponse:
        """Send one request and block for its response."""
        if self._closed:
            raise TransportError("client is closed")
        try:
            self._sock.sendall((encode_request(request) + "\n").encode("utf-8"))
            line = self._read_line()
        except TransportError:
            self.close()
            raise
        except OSError as err:
            self.close()
            raise TransportError(f"transport failure: {err}") from err
        return decode_response(line.decode("utf-8"))

    def _read_line(self) -> bytes:
        """One newline-terminated response, under a whole-call deadline."""
        deadline = time.monotonic() + self._timeout
        while b"\n" not in self._buffer:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TransportError(
                    f"no response within {self._timeout}s"
                )
            self._sock.settimeout(remaining)
            try:
                chunk = self._sock.recv(65536)
            except (socket.timeout, TimeoutError) as err:
                raise TransportError(
                    f"no response within {self._timeout}s"
                ) from err
            if not chunk:
                raise TransportError("server closed the connection")
            self._buffer += chunk
        line, self._buffer = self._buffer.split(b"\n", 1)
        return line

    def close(self) -> None:
        """Close the socket (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "RemoteClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

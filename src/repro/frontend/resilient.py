"""Client-side resilience: retries, hedged reads, circuit breaking,
and the degradation ladder.

:class:`ResilientClient` wraps one or more server endpoints behind the
policy stack the chaos ablation exercises:

* **Retry with jittered exponential backoff** (:class:`RetryPolicy`)
  for *idempotent reads only* — predict/top-k/status-class requests.
  Writes (``observe``, ``retrain``) are never retried: a lost response
  does not prove the write was lost.
* **A per-client retry budget** (:class:`RetryBudget`, a token bucket
  fed by successful first attempts) so a broken server sees a trickle
  of retries, not a storm that finishes it off.
* **Hedged reads** (:class:`HedgePolicy`): when a response is slower
  than the client's own recent latency percentile, a duplicate request
  is launched on another connection and the first answer wins — the
  classic tail-at-scale trade of a few percent extra load for a
  collapsed p99.
* **A per-endpoint circuit breaker** (:class:`CircuitBreaker`,
  closed → open → half-open) consulted before every send, so a dead
  node costs one timeout per reset interval instead of one per request.
* **The degradation ladder**: fresh predict → cached-only answer
  (``degraded=True`` wire flag, served off the server's prediction
  cache without queueing) → bounded-stale follower read (server-side
  automatic on node failure; responses arrive flagged ``stale``) →
  typed :class:`~repro.common.errors.DegradedError`.

Everything time-like is injectable and every random draw comes from a
seeded generator, so tests drive the whole stack deterministically.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, wait
from dataclasses import dataclass

import numpy as np

from repro.common.errors import (
    CircuitOpenError,
    DegradedError,
    OverloadedError,
    TransportError,
    ValidationError,
)
from repro.common.rng import DEFAULT_SEED
from repro.frontend.api import (
    ApiResponse,
    PredictApiRequest,
    TopKApiRequest,
)
from repro.frontend.pipelined import ConnectionPool
from repro.metrics.resilience import ResilienceMetrics

#: Error-envelope prefixes that mark a *retryable* server-side failure.
RETRYABLE_ERRORS = ("OverloadedError", "DeadlineExceededError")


@dataclass(frozen=True)
class RetryPolicy:
    """Jittered exponential backoff for idempotent reads.

    ``max_attempts`` counts the first try: 3 means one try plus at most
    two retries. Backoff for retry ``n`` (0-based) is
    ``min(base * multiplier**n, cap)`` scaled by a uniform jitter in
    ``[1 - jitter, 1]`` — full-jitter style, so synchronized clients
    desynchronize instead of retrying in lockstep.
    """

    max_attempts: int = 3
    base_backoff: float = 0.01
    multiplier: float = 2.0
    max_backoff: float = 0.5
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValidationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_backoff < 0 or self.max_backoff < self.base_backoff:
            raise ValidationError(
                "backoff must satisfy 0 <= base "
                f"({self.base_backoff}) <= cap ({self.max_backoff})"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValidationError(f"jitter must be in [0, 1], got {self.jitter}")

    def backoff(self, retry_index: int, uniform: float) -> float:
        """Sleep before retry ``retry_index``; ``uniform`` is a [0,1) draw."""
        raw = min(
            self.base_backoff * (self.multiplier ** retry_index),
            self.max_backoff,
        )
        return raw * (1.0 - self.jitter * uniform)


class RetryBudget:
    """A token bucket bounding the client's retry rate.

    Every *first* attempt deposits ``ratio`` tokens (capped); every
    retry withdraws one. Under a healthy server the bucket stays full
    and retries are free; under a broken one the client can retry at
    most ``ratio`` of its request rate — no retry storms.
    """

    def __init__(self, ratio: float = 0.2, max_tokens: float = 10.0):
        if ratio < 0 or max_tokens <= 0:
            raise ValidationError(
                f"retry budget needs ratio >= 0 ({ratio}) and "
                f"max_tokens > 0 ({max_tokens})"
            )
        self.ratio = ratio
        self.max_tokens = max_tokens
        self._lock = threading.Lock()
        self._tokens = max_tokens  # start full: first incident is covered

    @property
    def tokens(self) -> float:
        with self._lock:
            return self._tokens

    def deposit(self) -> None:
        """Credit one first attempt."""
        with self._lock:
            self._tokens = min(self.max_tokens, self._tokens + self.ratio)

    def try_spend(self) -> bool:
        """Withdraw one retry token; False means the budget is dry."""
        with self._lock:
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            return False


#: Circuit breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """A per-target closed / open / half-open circuit breaker.

    Closed: calls flow; ``failure_threshold`` *consecutive* failures
    trip it open. Open: every call is refused at pick time with
    :class:`~repro.common.errors.CircuitOpenError` until
    ``reset_timeout`` elapses. Half-open: exactly one probe call is let
    through — success closes the breaker, failure reopens it (and
    restarts the timeout). Concurrent callers during half-open are
    refused rather than piled onto a maybe-dead target.
    """

    def __init__(
        self,
        target: str,
        failure_threshold: int = 3,
        reset_timeout: float = 0.5,
        time_source=time.monotonic,
        metrics: ResilienceMetrics | None = None,
    ):
        if failure_threshold < 1:
            raise ValidationError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout <= 0:
            raise ValidationError(
                f"reset_timeout must be > 0, got {reset_timeout}"
            )
        self.target = target
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._now = time_source
        self._metrics = metrics
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open_locked()
            return self._state

    def _transition_locked(self, new: str) -> None:
        old = self._state
        if old == new:
            return
        self._state = new
        if self._metrics is not None:
            self._metrics.on_breaker_transition(self.target, old, new)

    def _maybe_half_open_locked(self) -> None:
        if (
            self._state == OPEN
            and self._now() - self._opened_at >= self.reset_timeout
        ):
            self._transition_locked(HALF_OPEN)
            self._probe_inflight = False

    def before_call(self) -> None:
        """Gate one call; raises :class:`CircuitOpenError` when refused."""
        with self._lock:
            self._maybe_half_open_locked()
            if self._state == CLOSED:
                return
            if self._state == HALF_OPEN and not self._probe_inflight:
                self._probe_inflight = True  # this caller is the probe
                return
            retry_after = max(
                0.0, self.reset_timeout - (self._now() - self._opened_at)
            )
            if self._metrics is not None:
                self._metrics.on_breaker_rejection()
            raise CircuitOpenError(self.target, retry_after)

    def on_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._probe_inflight = False
            if self._state != CLOSED:
                self._transition_locked(CLOSED)

    def on_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            self._probe_inflight = False
            if self._state == HALF_OPEN:
                # The probe failed: straight back to open.
                self._opened_at = self._now()
                self._transition_locked(OPEN)
            elif (
                self._state == CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._opened_at = self._now()
                self._transition_locked(OPEN)


class HedgePolicy:
    """Latency-percentile hedging trigger.

    Tracks the last ``window`` observed latencies; once ``min_samples``
    have accumulated, :meth:`hedge_delay` is the ``percentile`` of that
    window — wait that long for the primary, then launch the hedge.
    Before the window warms up, hedging is disabled (returns ``None``):
    the client has no idea yet what "slow" means.
    """

    def __init__(
        self,
        percentile: float = 95.0,
        window: int = 128,
        min_samples: int = 16,
        max_delay: float = 1.0,
        max_hedges: int = 1,
    ):
        if not 0.0 < percentile <= 100.0:
            raise ValidationError(
                f"percentile must be in (0, 100], got {percentile}"
            )
        if window < 1 or min_samples < 1 or min_samples > window:
            raise ValidationError(
                f"need 1 <= min_samples ({min_samples}) <= window ({window})"
            )
        if max_delay <= 0:
            raise ValidationError(f"max_delay must be > 0, got {max_delay}")
        if max_hedges < 0:
            raise ValidationError(
                f"max_hedges must be >= 0, got {max_hedges}"
            )
        self.percentile = percentile
        self.min_samples = min_samples
        self.max_delay = max_delay
        #: Duplicate sends allowed per logical call beyond the primary.
        #: 1 is the classic tail-at-scale hedge; raising it lets the
        #: client survive the (rare) case where the hedge's response is
        #: *also* lost without stalling for the whole call budget.
        self.max_hedges = max_hedges
        self._lock = threading.Lock()
        self._window: deque[float] = deque(maxlen=window)

    def observe(self, latency: float) -> None:
        """Record one completed call's latency (seconds)."""
        with self._lock:
            self._window.append(max(0.0, latency))

    def hedge_delay(self) -> float | None:
        """Seconds to wait before hedging, or ``None`` (don't hedge)."""
        with self._lock:
            if len(self._window) < self.min_samples:
                return None
            delay = float(
                np.percentile(np.asarray(self._window), self.percentile)
            )
        return min(max(delay, 1e-4), self.max_delay)


class ResilientClient:
    """Retries, hedges, breaks circuits, and degrades — in that order.

    Usage::

        client = ResilientClient([(host, port)], pool_size=4)
        response = client.predict(uid=7, item=42, deadline=0.05)
        client.close()

    ``endpoints`` is a list of ``(host, port)`` targets, each fronted by
    its own :class:`~repro.frontend.pipelined.ConnectionPool` and
    :class:`CircuitBreaker`. Reads rotate across healthy endpoints;
    hedges prefer a *different* endpoint than the primary attempt.

    The full read path: circuit-gated call → hedge if slow → retry
    (budget permitting, idempotent only) with jittered backoff on a
    retryable failure → cache-only degraded request → typed
    :class:`~repro.common.errors.DegradedError`. Every step is counted
    in :attr:`metrics`.
    """

    def __init__(
        self,
        endpoints,
        pool_size: int = 2,
        timeout: float = 10.0,
        retry: RetryPolicy | None = None,
        budget: RetryBudget | None = None,
        hedge: HedgePolicy | None = None,
        breaker_threshold: int = 3,
        breaker_reset: float = 0.5,
        degrade: bool = True,
        seed: int = DEFAULT_SEED,
        max_inflight: int | None = None,
    ):
        targets = list(endpoints)
        if not targets:
            raise ValidationError("ResilientClient needs at least one endpoint")
        self.metrics = ResilienceMetrics("client")
        self.retry = retry if retry is not None else RetryPolicy()
        self.budget = budget if budget is not None else RetryBudget()
        self.hedge = hedge if hedge is not None else HedgePolicy()
        self.degrade = degrade
        self._timeout = timeout
        self._rng = np.random.default_rng(seed)
        self._rng_lock = threading.Lock()
        self._pick_lock = threading.Lock()
        self._next_endpoint = 0
        self._breakers: list[CircuitBreaker] = []
        self._pools: list[ConnectionPool] = []
        try:
            for host, port in targets:
                breaker = CircuitBreaker(
                    f"{host}:{port}",
                    failure_threshold=breaker_threshold,
                    reset_timeout=breaker_reset,
                    metrics=self.metrics,
                )
                self._breakers.append(breaker)
                self._pools.append(
                    ConnectionPool(
                        host,
                        port,
                        size=pool_size,
                        timeout=timeout,
                        breaker=breaker,
                        max_inflight=max_inflight,
                    )
                )
        except Exception:
            self.close()
            raise

    # -- endpoint selection ---------------------------------------------------

    def _pick_pools(self) -> list[tuple[ConnectionPool, CircuitBreaker]]:
        """Every pool, healthy breakers first, starting round-robin."""
        with self._pick_lock:
            start = self._next_endpoint
            self._next_endpoint = (self._next_endpoint + 1) % len(self._pools)
        order = [
            (self._pools[(start + i) % len(self._pools)],
             self._breakers[(start + i) % len(self._pools)])
            for i in range(len(self._pools))
        ]
        order.sort(key=lambda pair: pair[1].state == OPEN)  # open ones last
        return order

    def _uniform(self) -> float:
        with self._rng_lock:
            return float(self._rng.random())

    # -- the read path --------------------------------------------------------

    def call(
        self,
        request,
        idempotent: bool = True,
        timeout: float | None = None,
    ) -> ApiResponse:
        """One request through the full policy stack.

        Raises :class:`DegradedError` when every rung fails;
        server-side error envelopes that are not retryable are returned
        as-is (the caller sees exactly what a plain client would).
        """
        deadline_wall = time.monotonic() + (
            timeout if timeout is not None else self._timeout
        )
        last_error: Exception | None = None
        attempts = self.retry.max_attempts if idempotent else 1
        for attempt in range(attempts):
            if attempt > 0:
                if not self.budget.try_spend():
                    self.metrics.on_retry_budget_exhausted()
                    break
                self.metrics.on_retry()
                time.sleep(self.retry.backoff(attempt - 1, self._uniform()))
                if time.monotonic() >= deadline_wall:
                    break
            try:
                response = self._attempt(
                    request,
                    hedge=idempotent,
                    remaining=max(0.05, deadline_wall - time.monotonic()),
                )
            except (TransportError, CircuitOpenError, OverloadedError) as err:
                last_error = err
                continue
            if attempt == 0:
                self.budget.deposit()
            if response.ok:
                if response.payload.get("stale"):
                    # Bounded-stale follower read: the replication layer
                    # promoted a lagging follower under us. Count the
                    # ladder rung; the payload keeps its flag.
                    self.metrics.on_degraded("stale")
                return response
            if not response.error.startswith(RETRYABLE_ERRORS):
                return response
            last_error = OverloadedError("resilient-client", response.error)
        if idempotent and self.degrade:
            degraded = self._degraded_call(request)
            if degraded is not None:
                return degraded
        self.metrics.on_degraded("error")
        raise DegradedError(
            f"every rung failed for {type(request).__name__}: "
            f"{type(last_error).__name__ if last_error else 'no attempt ran'}"
            f"{f': {last_error}' if last_error else ''}"
        )

    def _attempt(self, request, hedge: bool, remaining: float) -> ApiResponse:
        """One (possibly hedged) send across the endpoint set.

        The pool reports *submit-time* transport errors to its breaker
        itself; failures that surface later through a future are
        reported here, so a node that accepts sends but never answers
        still trips its breaker.
        """
        order = self._pick_pools()
        primary_pool, primary_breaker = order[0]
        start = time.monotonic()
        primary = primary_pool.submit(request)
        meta = {primary: (False, primary_breaker)}  # future -> (is_hedge, breaker)
        hedge_delay = self.hedge.hedge_delay() if hedge else None
        hedges_left = self.hedge.max_hedges if hedge_delay is not None else 0
        next_source = 1  # hedges prefer a different endpoint than the primary
        futures = list(meta)
        while True:
            wait_left = remaining - (time.monotonic() - start)
            if wait_left <= 0:
                for future in futures:
                    meta[future][1].on_failure()
                raise TransportError(
                    f"no response within {remaining:.3f}s (hedged: "
                    f"{len(meta) > 1})"
                )
            # While hedges remain, wait only one hedge_delay at a time:
            # every expiry launches one more duplicate send, so a lost
            # response costs a tail percentile, not the whole budget.
            patience = wait_left
            if hedges_left > 0 and hedge_delay < wait_left:
                patience = hedge_delay
            done, pending = wait(
                futures, timeout=patience, return_when=FIRST_COMPLETED
            )
            if not done:
                if hedges_left > 0:
                    hedges_left -= 1
                    hedge_pool, hedge_breaker = order[next_source % len(order)]
                    next_source += 1
                    try:
                        hedged = hedge_pool.submit(request)
                        meta[hedged] = (True, hedge_breaker)
                        futures = list(pending) + [hedged]
                        self.metrics.on_hedge_launched()
                    except (TransportError, CircuitOpenError, OverloadedError):
                        pass  # hedge target down; earlier sends still run
                continue
            winner: ApiResponse | None = None
            won_hedge = False
            errors = []
            for future in done:
                is_hedge, breaker = meta[future]
                try:
                    winner = future.result()
                    breaker.on_success()
                    won_hedge = is_hedge
                    break
                except Exception as err:
                    breaker.on_failure()
                    errors.append(err)
            if winner is not None:
                self.hedge.observe(time.monotonic() - start)
                if won_hedge:
                    self.metrics.on_hedge_won()
                return winner
            futures = list(pending)
            if not futures:
                raise errors[0] if errors else TransportError(
                    "every attempt failed"
                )

    def _degraded_call(self, request) -> ApiResponse | None:
        """The cache-only rung: re-send with the ``degraded`` wire flag.

        Returns ``None`` when the request type has no degraded form or
        the transport is entirely gone (the caller falls through to the
        typed error).
        """
        if isinstance(request, PredictApiRequest):
            fallback = PredictApiRequest(
                uid=request.uid,
                item=request.item,
                model=request.model,
                degraded=True,
            )
        elif isinstance(request, TopKApiRequest):
            fallback = TopKApiRequest(
                uid=request.uid,
                items=request.items,
                k=request.k,
                model=request.model,
                policy=request.policy,
                degraded=True,
            )
        else:
            return None
        for pool, breaker in self._pick_pools():
            try:
                response = pool.call(fallback, timeout=self._timeout)
            except (TransportError, CircuitOpenError, OverloadedError):
                continue
            if response.ok:
                self.metrics.on_degraded("cached")
                return response
            return None  # DegradedError envelope: the cache is empty too
        return None

    # -- convenience read/write methods ---------------------------------------

    def predict(
        self,
        uid: int,
        item: object,
        model: str | None = None,
        deadline: float | None = None,
        timeout: float | None = None,
    ) -> ApiResponse:
        """Resilient point prediction (idempotent: full ladder)."""
        return self.call(
            PredictApiRequest(
                uid=uid, item=item, model=model, deadline=deadline
            ),
            idempotent=True,
            timeout=timeout,
        )

    def top_k(
        self,
        uid: int,
        items,
        k: int = 1,
        model: str | None = None,
        policy: str | None = None,
        deadline: float | None = None,
        timeout: float | None = None,
    ) -> ApiResponse:
        """Resilient best-k (idempotent: full ladder)."""
        return self.call(
            TopKApiRequest(
                uid=uid, items=tuple(items), k=k, model=model,
                policy=policy, deadline=deadline,
            ),
            idempotent=True,
            timeout=timeout,
        )

    def write(self, request, timeout: float | None = None) -> ApiResponse:
        """Non-idempotent dispatch: one attempt, no hedge, no retry."""
        return self.call(request, idempotent=False, timeout=timeout)

    def breaker_states(self) -> dict[str, str]:
        """Current breaker state per endpoint."""
        return {b.target: b.state for b in self._breakers}

    def close(self) -> None:
        """Close every pooled connection."""
        for pool in self._pools:
            try:
                pool.close()
            except Exception:
                pass

    def __enter__(self) -> "ResilientClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

"""VeloxModel base + ModelRegistry: versions, publish, rollback."""

import numpy as np
import pytest

from repro.common.errors import ModelNotFoundError, ValidationError
from repro.core.model import ModelRegistry, VeloxModel


class ToyModel(VeloxModel):
    """Minimal computed-feature model for registry tests."""

    materialized = False

    def __init__(self, name="toy", dimension=3, version=0):
        super().__init__(name, dimension, version)

    def features(self, x):
        return np.full(self.dimension, float(x))

    def retrain(self, batch_context, observations, user_weights):
        return self.with_version(self.version + 1), dict(user_weights)


class TestVeloxModelBase:
    def test_validation_on_construction(self):
        with pytest.raises(ValidationError):
            ToyModel(name="")
        with pytest.raises(ValidationError):
            ToyModel(dimension=0)
        with pytest.raises(ValidationError):
            ToyModel(version=-1)

    def test_default_loss_is_squared_error(self):
        model = ToyModel()
        assert model.loss(3.0, 1.0, x=None, uid=0) == 4.0

    def test_with_version(self):
        model = ToyModel(version=2)
        clone = model.with_version(5)
        assert clone.version == 5
        assert model.version == 2
        assert clone.name == model.name

    def test_validate_features_shape(self):
        model = ToyModel(dimension=3)
        with pytest.raises(ValidationError):
            model.validate_features(np.zeros(4))

    def test_validate_features_nan(self):
        model = ToyModel(dimension=2)
        with pytest.raises(ValidationError):
            model.validate_features(np.array([1.0, np.nan]))

    def test_default_initials_are_zeros(self):
        model = ToyModel(dimension=4)
        assert np.array_equal(model.initial_user_weights(), np.zeros(4))
        assert np.array_equal(model.prior_mean(), np.zeros(4))

    def test_repr_mentions_kind(self):
        assert "computed" in repr(ToyModel())


class TestRegistry:
    def test_register_and_get(self):
        registry = ModelRegistry()
        model = ToyModel()
        registry.register(model)
        assert registry.get("toy") is model
        assert "toy" in registry
        assert registry.names() == ["toy"]

    def test_duplicate_register_rejected(self):
        registry = ModelRegistry()
        registry.register(ToyModel())
        with pytest.raises(ValidationError):
            registry.register(ToyModel())

    def test_missing_model_rejected(self):
        with pytest.raises(ModelNotFoundError):
            ModelRegistry().get("ghost")

    def test_publish_requires_increasing_version(self):
        registry = ModelRegistry()
        registry.register(ToyModel(version=0))
        registry.publish(ToyModel(version=1))
        assert registry.get("toy").version == 1
        with pytest.raises(ValidationError):
            registry.publish(ToyModel(version=1))

    def test_history_accumulates(self):
        registry = ModelRegistry()
        registry.register(ToyModel(version=0))
        registry.publish(ToyModel(version=1), trained_on_observations=100)
        history = registry.history("toy")
        assert [h.version for h in history] == [0, 1]
        assert history[1].trained_on_observations == 100

    def test_get_version(self):
        registry = ModelRegistry()
        v0 = ToyModel(version=0)
        registry.register(v0)
        registry.publish(ToyModel(version=1))
        assert registry.get_version("toy", 0) is v0
        with pytest.raises(ModelNotFoundError):
            registry.get_version("toy", 9)

    def test_rollback_creates_new_forward_version(self):
        registry = ModelRegistry()
        registry.register(ToyModel(version=0))
        registry.publish(ToyModel(version=1))
        revived = registry.rollback("toy", 0)
        assert revived.version == 2  # forward, not backward
        assert registry.get("toy") is revived
        notes = [h.note for h in registry.history("toy")]
        assert any("rollback" in note for note in notes)

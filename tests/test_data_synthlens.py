"""SynthLens generator: determinism, marginals, planted structure."""

import numpy as np
import pytest

from repro.common.errors import ConfigError, ValidationError
from repro.data import SynthLensConfig, generate_synthlens


@pytest.fixture(scope="module")
def lens():
    return generate_synthlens(
        SynthLensConfig(num_users=80, num_items=200, rank=6, seed=21)
    )


class TestDeterminism:
    def test_same_seed_same_corpus(self):
        cfg = SynthLensConfig(num_users=20, num_items=50, seed=9)
        a = generate_synthlens(cfg)
        b = generate_synthlens(cfg)
        assert a.ratings == b.ratings
        assert np.array_equal(a.true_item_factors, b.true_item_factors)

    def test_different_seed_differs(self):
        a = generate_synthlens(SynthLensConfig(num_users=20, num_items=50, seed=1))
        b = generate_synthlens(SynthLensConfig(num_users=20, num_items=50, seed=2))
        assert a.ratings != b.ratings


class TestMarginals:
    def test_every_user_has_min_ratings(self, lens):
        counts = {}
        for rating in lens.ratings:
            counts[rating.uid] = counts.get(rating.uid, 0) + 1
        assert len(counts) == lens.num_users
        assert min(counts.values()) >= lens.config.min_ratings_per_user

    def test_no_duplicate_user_item_pairs(self, lens):
        pairs = [(r.uid, r.item_id) for r in lens.ratings]
        assert len(pairs) == len(set(pairs))

    def test_ratings_clipped_to_scale(self, lens):
        values = [r.rating for r in lens.ratings]
        assert min(values) >= 0.5
        assert max(values) <= 5.0

    def test_ids_in_range(self, lens):
        assert all(0 <= r.uid < lens.num_users for r in lens.ratings)
        assert all(0 <= r.item_id < lens.num_items for r in lens.ratings)

    def test_timestamps_dense_and_increasing(self, lens):
        stamps = [r.timestamp for r in lens.ratings]
        assert stamps == list(range(len(stamps)))

    def test_zipf_skew_concentrates_popularity(self):
        skewed = generate_synthlens(
            SynthLensConfig(num_users=100, num_items=300, zipf_exponent=1.2, seed=4)
        )
        flat = generate_synthlens(
            SynthLensConfig(num_users=100, num_items=300, zipf_exponent=0.0, seed=4)
        )

        def top_decile_share(corpus):
            counts = np.zeros(300)
            for rating in corpus.ratings:
                counts[rating.item_id] += 1
            counts.sort()
            return counts[-30:].sum() / counts.sum()

        assert top_decile_share(skewed) > top_decile_share(flat) + 0.1


class TestPlantedStructure:
    def test_true_score_matches_generative_model(self, lens):
        uid, item_id = 3, 17
        raw = (
            lens.config.global_mean
            + lens.true_user_bias[uid]
            + lens.true_item_bias[item_id]
            + lens.true_user_factors[uid] @ lens.true_item_factors[item_id]
        )
        expected = float(np.clip(raw, 0.5, 5.0))
        assert lens.true_score(uid, item_id) == pytest.approx(expected)

    def test_ratings_close_to_true_scores(self, lens):
        # Noise is the only gap between observed rating and oracle score
        # (clipping aside), so the residual std should be near noise_std.
        residuals = [
            r.rating - lens.true_score(r.uid, r.item_id) for r in lens.ratings
        ]
        assert abs(float(np.std(residuals)) - lens.config.noise_std) < 0.12

    def test_true_score_bounds_checked(self, lens):
        with pytest.raises(ValidationError):
            lens.true_score(-1, 0)
        with pytest.raises(ValidationError):
            lens.true_score(0, 10_000)

    def test_by_user_grouping(self, lens):
        grouped = lens.by_user()
        assert len(grouped) == lens.num_users
        total = sum(len(v) for v in grouped.values())
        assert total == len(lens.ratings)
        # within-user order follows timestamps
        for user_ratings in grouped.values():
            stamps = [r.timestamp for r in user_ratings]
            assert stamps == sorted(stamps)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_users": 0},
            {"num_items": 0},
            {"rank": 0},
            {"min_ratings_per_user": 0},
            {"min_ratings_per_user": 1_000, "num_items": 10},
            {"ratings_per_user_mean": 5.0, "min_ratings_per_user": 20},
            {"zipf_exponent": -0.5},
            {"noise_std": -1.0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            SynthLensConfig(**kwargs)

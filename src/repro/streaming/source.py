"""Stream sources: pull-based producers of micro-batches."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Iterator

from repro.common.errors import ValidationError


class StreamSource(ABC):
    """Produces micro-batches until exhausted (``None`` = end of stream)."""

    @abstractmethod
    def next_batch(self) -> list | None:
        """The next micro-batch, or ``None`` when the stream ends."""


class IterableSource(StreamSource):
    """Chunks any iterable into fixed-size micro-batches."""

    def __init__(self, records: Iterable, batch_size: int = 100):
        if batch_size < 1:
            raise ValidationError(f"batch_size must be >= 1, got {batch_size}")
        self._iterator: Iterator = iter(records)
        self.batch_size = batch_size
        self._exhausted = False

    def next_batch(self) -> list | None:
        """The next micro-batch, or None at end of stream."""
        if self._exhausted:
            return None
        batch = []
        for record in self._iterator:
            batch.append(record)
            if len(batch) == self.batch_size:
                return batch
        self._exhausted = True
        return batch if batch else None


class ReplaySource(StreamSource):
    """Replays a recorded list of batches verbatim (tests, backfills)."""

    def __init__(self, batches: list[list]):
        for index, batch in enumerate(batches):
            if not isinstance(batch, list):
                raise ValidationError(
                    f"batch {index} must be a list, got {type(batch).__name__}"
                )
        self._batches = list(batches)
        self._cursor = 0

    def next_batch(self) -> list | None:
        """The next micro-batch, or None at end of stream."""
        if self._cursor >= len(self._batches):
            return None
        batch = self._batches[self._cursor]
        self._cursor += 1
        return batch

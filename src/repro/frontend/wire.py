"""Length-prefixed binary framing for the prediction wire protocol.

The JSON-lines codec in :mod:`repro.frontend.api` is simple and
debuggable but expensive on the hot path: every float in an item payload
round-trips through UTF-8 text, and the line framing forces a parse per
request. This module provides the compact alternative the frontend
negotiates on connect:

* **Frames** — ``u32 length | u8 opcode | u64 correlation id | payload``
  (big-endian). The opcode identifies the request method (or marks a
  response); the correlation id lets many requests share one connection
  out of order, which is what makes client pipelining possible.
* **Values** — a small tagged binary term format (ints, floats, bools,
  strings, None, lists, string-keyed dicts) mirroring exactly what the
  JSON codec can express, plus a native ndarray term encoded as
  ``dtype | shape | raw bytes`` so feature vectors cross the wire as a
  memcpy instead of a float-repr list.
* **Negotiation** — a client that wants binary sends the newline
  terminated :data:`HELLO` preamble. A new server peeks the magic and
  answers in kind before switching to frames; an old JSON-lines server
  answers with a one-line JSON error envelope, which the client reads
  as "binary not spoken here" and falls back to JSON-lines. Old clients
  never send the preamble, so a new server serves them JSON-lines
  unchanged. Both directions stay compatible.

Framing/decoding failures raise
:class:`~repro.common.errors.TransportError` (truncation, oversized or
corrupt frames) or :class:`~repro.common.errors.ValidationError`
(well-framed but semantically invalid requests), never bare struct
errors.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.common.errors import TransportError, ValidationError
from repro.frontend.api import (
    AnalyticsApiRequest,
    ApiResponse,
    HealthApiRequest,
    ObserveApiRequest,
    PredictApiRequest,
    RetrainApiRequest,
    StatusApiRequest,
    TopKApiRequest,
    TopKCatalogApiRequest,
)

#: Magic preamble naming the protocol and its version. Sent (newline
#: terminated) by clients that want binary; echoed by servers that
#: accept. The trailing digit is the protocol version.
MAGIC = b"VLXB1"
#: The full negotiation line: magic + newline, so a JSON-lines server
#: consumes it as one (malformed) request line and stays in sync.
HELLO = MAGIC + b"\n"
#: Protocol version 2 adds optional trailing deadline/degraded fields
#: to predict and top-k request payloads. A v2 client opens with this
#: preamble; a v2 server echoes it back. A v1-only binary server — or a
#: JSON-lines server — answers with something else, and the client
#: falls back (to v1 frames or JSON-lines respectively). V1 *decoders*
#: already ignore trailing payload bytes, so the version split exists
#: to make the capability explicit, not to protect old parsers.
MAGIC_V2 = b"VLXB2"
HELLO_V2 = MAGIC_V2 + b"\n"
#: Hellos a binary server accepts, mapped to the protocol version.
HELLO_VERSIONS = {HELLO: 1, HELLO_V2: 2}

#: Frame header: u32 total length of (opcode + corr id + payload),
#: u8 opcode, u64 correlation id.
_HEADER = struct.Struct(">IBQ")
#: Default refusal threshold for frame sizes (corrupt stream / abuse
#: guard); every decode entry point accepts a narrower override.
MAX_FRAME_BYTES = 64 * 1024 * 1024

# -- opcodes ----------------------------------------------------------------

OP_PREDICT = 1
OP_TOP_K = 2
OP_OBSERVE = 3
OP_HEALTH = 4
OP_RETRAIN = 5
OP_TOP_K_CATALOG = 6
OP_STATUS = 7
OP_ANALYTICS = 8
#: Responses share one opcode; the correlation id routes them.
OP_RESPONSE = 128

REQUEST_OPCODES = {
    PredictApiRequest: OP_PREDICT,
    TopKApiRequest: OP_TOP_K,
    ObserveApiRequest: OP_OBSERVE,
    HealthApiRequest: OP_HEALTH,
    RetrainApiRequest: OP_RETRAIN,
    TopKCatalogApiRequest: OP_TOP_K_CATALOG,
    StatusApiRequest: OP_STATUS,
    AnalyticsApiRequest: OP_ANALYTICS,
}

# -- tagged binary values ---------------------------------------------------

_T_NONE = 0
_T_BOOL = 1
_T_INT = 2
_T_FLOAT = 3
_T_STR = 4
_T_NDARRAY = 5
_T_LIST = 6
_T_DICT = 7
#: Homogeneous list fast paths: one struct.pack for the whole list
#: instead of a tagged term per element. Decodes back to a plain list,
#: so the JSON equivalence is unchanged.
_T_I64_LIST = 8
_T_F64_LIST = 9

_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")
_U32 = struct.Struct(">I")

#: How many ndarray encodes were forced to materialize a contiguous
#: copy before writing (non-contiguous input). Contiguous arrays are
#: appended straight from their buffer — exactly one copy, into the
#: output bytearray — and do not bump this. Benchmarks assert on it.
_ndarray_forced_copies = 0


def ndarray_forced_copies() -> int:
    """Count of ndarray encodes that needed a contiguity copy."""
    return _ndarray_forced_copies


def reset_ndarray_forced_copies() -> None:
    """Zero the forced-copy counter (benchmark/test isolation)."""
    global _ndarray_forced_copies
    _ndarray_forced_copies = 0


def pack_value(out: bytearray, value: object) -> None:
    """Append one tagged value to ``out``.

    Mirrors the JSON codec's normalisation so the two codecs stay
    equivalent: numpy scalars become python scalars and tuples become
    lists. Types neither codec supports raise ``ValidationError``.
    """
    # bool first: it is a subclass of int and must keep its own tag.
    if value is None:
        out.append(_T_NONE)
    elif isinstance(value, (bool, np.bool_)):
        out.append(_T_BOOL)
        out.append(1 if value else 0)
    elif isinstance(value, (int, np.integer)):
        out.append(_T_INT)
        try:
            out += _I64.pack(int(value))
        except struct.error as err:
            raise ValidationError(f"integer {value!r} exceeds wire range") from err
    elif isinstance(value, (float, np.floating)):
        out.append(_T_FLOAT)
        out += _F64.pack(float(value))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_T_STR)
        out += _U32.pack(len(raw))
        out += raw
    elif isinstance(value, np.ndarray):
        if value.dtype.hasobject:
            raise ValidationError("cannot serialize object-dtype ndarray")
        dtype = value.dtype.str.encode("ascii")
        # Single-copy encode: append straight from the array's buffer
        # into the output bytearray. Only non-contiguous input pays an
        # intermediate materialization (counted for benchmarks); the
        # old path's ``.tobytes()`` double-copied every array.
        if value.flags.c_contiguous:
            arr = value
        else:
            global _ndarray_forced_copies
            _ndarray_forced_copies += 1
            arr = np.ascontiguousarray(value)
        out.append(_T_NDARRAY)
        out.append(len(dtype))
        out += dtype
        out.append(value.ndim)
        for dim in value.shape:
            out += _U32.pack(dim)
        out += _U32.pack(arr.nbytes)
        out += memoryview(arr).cast("B")
    elif isinstance(value, (list, tuple)):
        if _pack_homogeneous(out, value):
            return
        out.append(_T_LIST)
        out += _U32.pack(len(value))
        for element in value:
            pack_value(out, element)
    elif isinstance(value, dict):
        out.append(_T_DICT)
        out += _U32.pack(len(value))
        for key, element in value.items():
            if not isinstance(key, str):
                key = _coerce_key(key)
            raw = key.encode("utf-8")
            out += _U32.pack(len(raw))
            out += raw
            pack_value(out, element)
    else:
        raise ValidationError(f"cannot serialize wire value {value!r}")


def _coerce_key(key: object) -> str:
    """Non-string dict keys become the strings ``json.dumps`` would
    emit, so both codecs put identical payloads on the wire.
    """
    if isinstance(key, bool):
        return "true" if key else "false"
    if isinstance(key, int):
        return str(key)
    if isinstance(key, float):
        return repr(key)
    if key is None:
        return "null"
    raise ValidationError(f"wire dicts need string keys, got {key!r}")


def _pack_homogeneous(out: bytearray, value) -> bool:
    """Pack an all-int or all-float list in one struct call; returns
    whether the fast path applied. ``type is`` checks keep bools (a
    subclass of int) and numpy scalars on the exact-tagged slow path.
    """
    n = len(value)
    if n < 2:
        return False
    if all(type(v) is int for v in value):
        try:
            packed = struct.pack(f">{n}q", *value)
        except struct.error:
            return False  # some element exceeds i64; generic path errors
        out.append(_T_I64_LIST)
        out += _U32.pack(n)
        out += packed
        return True
    if all(type(v) is float for v in value):
        out.append(_T_F64_LIST)
        out += _U32.pack(n)
        out += struct.pack(f">{n}d", *value)
        return True
    return False


class _Cursor:
    """A bounds-checked read position over one frame's payload."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise TransportError(
                f"truncated frame payload: wanted {n} bytes at offset "
                f"{self.pos}, frame has {len(self.data)}"
            )
        chunk = self.data[self.pos : self.pos + n]
        self.pos += n
        return chunk

    def done(self) -> bool:
        return self.pos == len(self.data)


def unpack_value(cursor: _Cursor) -> object:
    """Read one tagged value from the cursor."""
    tag = cursor.take(1)[0]
    if tag == _T_NONE:
        return None
    if tag == _T_BOOL:
        return cursor.take(1)[0] != 0
    if tag == _T_INT:
        return _I64.unpack(cursor.take(8))[0]
    if tag == _T_FLOAT:
        return _F64.unpack(cursor.take(8))[0]
    if tag == _T_STR:
        (length,) = _U32.unpack(cursor.take(4))
        return cursor.take(length).decode("utf-8")
    if tag == _T_NDARRAY:
        dtype_len = cursor.take(1)[0]
        dtype = np.dtype(cursor.take(dtype_len).decode("ascii"))
        ndim = cursor.take(1)[0]
        shape = tuple(_U32.unpack(cursor.take(4))[0] for _ in range(ndim))
        (raw_len,) = _U32.unpack(cursor.take(4))
        raw = cursor.take(raw_len)
        try:
            return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
        except ValueError as err:
            raise TransportError(f"corrupt ndarray term: {err}") from err
    if tag == _T_LIST:
        (count,) = _U32.unpack(cursor.take(4))
        return [unpack_value(cursor) for _ in range(count)]
    if tag == _T_I64_LIST:
        (count,) = _U32.unpack(cursor.take(4))
        return list(struct.unpack(f">{count}q", cursor.take(8 * count)))
    if tag == _T_F64_LIST:
        (count,) = _U32.unpack(cursor.take(4))
        return list(struct.unpack(f">{count}d", cursor.take(8 * count)))
    if tag == _T_DICT:
        (count,) = _U32.unpack(cursor.take(4))
        result = {}
        for _ in range(count):
            (key_len,) = _U32.unpack(cursor.take(4))
            key = cursor.take(key_len).decode("utf-8")
            result[key] = unpack_value(cursor)
        return result
    raise TransportError(f"unknown wire value tag {tag}")


def _pack_values(*values: object) -> bytes:
    out = bytearray()
    for value in values:
        pack_value(out, value)
    return bytes(out)


def _wire_item(item: object) -> object:
    """Normalise an item payload the way the JSON codec does, except
    ndarrays stay native (that is the point of the binary codec)."""
    if isinstance(item, (bool, int, float, str, np.integer, np.floating,
                         np.ndarray)):
        return item
    if isinstance(item, (list, tuple)):
        return list(item)
    raise ValidationError(f"cannot serialize item payload {item!r}")


# -- frame encode/decode ----------------------------------------------------


def encode_frame(opcode: int, corr_id: int, payload: bytes) -> bytes:
    """One complete frame, ready for ``sendall``."""
    return _HEADER.pack(len(payload) + 9, opcode, corr_id) + payload


def read_frame(
    rfile, max_frame_bytes: int | None = None
) -> tuple[int, int, bytes] | None:
    """Read one frame off a buffered binary reader.

    Returns ``(opcode, correlation_id, payload)``, or ``None`` on a
    clean EOF at a frame boundary. EOF inside a frame, or a length
    prefix above ``max_frame_bytes`` (default :data:`MAX_FRAME_BYTES`),
    raises :class:`TransportError` — the length is validated *before*
    any payload allocation, so a corrupt prefix can never trigger an
    unbounded read.
    """
    limit = MAX_FRAME_BYTES if max_frame_bytes is None else int(max_frame_bytes)
    header = rfile.read(_HEADER.size)
    if not header:
        return None
    if len(header) < _HEADER.size:
        raise TransportError(
            f"connection closed mid-frame ({len(header)} header bytes)"
        )
    length, opcode, corr_id = _HEADER.unpack(header)
    if length < 9 or length > limit:
        raise TransportError(
            f"invalid frame length {length} (limit {limit})"
        )
    payload = rfile.read(length - 9)
    if len(payload) < length - 9:
        raise TransportError(
            f"connection closed mid-frame ({len(payload)} of "
            f"{length - 9} payload bytes)"
        )
    return opcode, corr_id, payload


class FrameDecoder:
    """Incremental frame reassembly for non-blocking transports.

    The event-loop server (and any selector-driven client) receives
    arbitrary byte chunks, not whole frames; this decoder buffers them
    and yields complete ``(opcode, correlation_id, payload)`` tuples as
    soon as they close. The length prefix is validated against
    ``max_frame_bytes`` the moment the 4-byte header is available —
    *before* the body is buffered — so a corrupt or hostile prefix
    raises a typed :class:`TransportError` instead of committing the
    process to an unbounded allocation.
    """

    __slots__ = ("_buf", "_max")

    def __init__(self, max_frame_bytes: int | None = None):
        self._buf = bytearray()
        self._max = (
            MAX_FRAME_BYTES if max_frame_bytes is None else int(max_frame_bytes)
        )
        if self._max < 9:
            raise ValidationError(
                f"max_frame_bytes must be >= 9, got {self._max}"
            )

    @property
    def buffered(self) -> int:
        """Bytes currently held waiting for a frame to close."""
        return len(self._buf)

    def feed(self, data) -> None:
        """Append one received chunk (any bytes-like) to the buffer."""
        self._buf += data

    def next_frame(self) -> tuple[int, int, bytes] | None:
        """Pop one complete frame, or ``None`` if more bytes are needed.

        Raises :class:`TransportError` on an invalid length prefix.
        """
        buf = self._buf
        if len(buf) < 4:
            return None
        (length,) = _U32.unpack_from(buf, 0)
        if length < 9 or length > self._max:
            raise TransportError(
                f"invalid frame length {length} (limit {self._max})"
            )
        total = 4 + length
        if len(buf) < total:
            return None
        opcode = buf[4]
        (corr_id,) = struct.unpack_from(">Q", buf, 5)
        payload = bytes(buf[13:total])
        del buf[:total]
        return opcode, corr_id, payload

    def drain(self):
        """Yield every complete frame currently buffered."""
        while True:
            frame = self.next_frame()
            if frame is None:
                return
            yield frame


# -- request/response codecs ------------------------------------------------


def encode_request_frame(request, corr_id: int, wire_version: int = 2) -> bytes:
    """One API request object -> one framed binary request.

    ``wire_version`` selects the payload dialect: version 2 appends the
    optional trailing ``deadline``/``degraded`` fields to predict and
    top-k requests; version 1 omits them (for peers that negotiated the
    original :data:`HELLO`). The fields are trailing precisely so a v1
    decoder that *does* receive them ignores the extra bytes.
    """
    opcode = REQUEST_OPCODES.get(type(request))
    if opcode is None:
        raise ValidationError(f"unknown request type {type(request).__name__}")
    if opcode == OP_PREDICT:
        if wire_version >= 2:
            payload = _pack_values(
                request.uid, _wire_item(request.item), request.model,
                request.deadline, bool(request.degraded),
            )
        else:
            payload = _pack_values(
                request.uid, _wire_item(request.item), request.model
            )
    elif opcode == OP_TOP_K:
        if wire_version >= 2:
            payload = _pack_values(
                request.uid,
                request.k,
                request.model,
                request.policy,
                [_wire_item(x) for x in request.items],
                request.deadline,
                bool(request.degraded),
            )
        else:
            payload = _pack_values(
                request.uid,
                request.k,
                request.model,
                request.policy,
                [_wire_item(x) for x in request.items],
            )
    elif opcode == OP_OBSERVE:
        payload = _pack_values(
            request.uid,
            _wire_item(request.item),
            float(request.label),
            request.model,
            bool(request.validation),
        )
    elif opcode == OP_HEALTH:
        payload = _pack_values(request.model)
    elif opcode == OP_RETRAIN:
        payload = _pack_values(request.model, request.reason)
    elif opcode == OP_TOP_K_CATALOG:
        payload = _pack_values(request.uid, request.k, request.model)
    elif opcode == OP_ANALYTICS:
        payload = _pack_values(
            request.uid,
            request.item,
            request.time_start,
            request.time_end,
            request.group_by,
            request.agg,
            bool(request.force_scan),
            request.model,
        )
    else:  # OP_STATUS
        payload = b""
    return encode_frame(opcode, corr_id, payload)


def _unpack_request_extras(cursor: _Cursor) -> tuple[float | None, bool]:
    """The optional trailing (deadline, degraded) fields, if present.

    A v1 peer's payload ends before them; a v2 peer always writes both.
    """
    if cursor.done():
        return None, False
    deadline = unpack_value(cursor)
    degraded = False if cursor.done() else bool(unpack_value(cursor))
    return (None if deadline is None else float(deadline)), degraded


def decode_request_payload(opcode: int, payload: bytes):
    """One frame's opcode + payload -> one API request object."""
    cursor = _Cursor(payload)
    if opcode == OP_PREDICT:
        uid, item, model = (unpack_value(cursor) for _ in range(3))
        deadline, degraded = _unpack_request_extras(cursor)
        return PredictApiRequest(
            uid=int(uid), item=item, model=model,
            deadline=deadline, degraded=degraded,
        )
    if opcode == OP_TOP_K:
        uid, k, model, policy, items = (unpack_value(cursor) for _ in range(5))
        deadline, degraded = _unpack_request_extras(cursor)
        return TopKApiRequest(
            uid=int(uid), items=tuple(items), k=int(k), model=model,
            policy=policy, deadline=deadline, degraded=degraded,
        )
    if opcode == OP_OBSERVE:
        uid, item, label, model, validation = (
            unpack_value(cursor) for _ in range(5)
        )
        return ObserveApiRequest(
            uid=int(uid), item=item, label=float(label), model=model,
            validation=bool(validation),
        )
    if opcode == OP_HEALTH:
        return HealthApiRequest(model=unpack_value(cursor))
    if opcode == OP_RETRAIN:
        model, reason = unpack_value(cursor), unpack_value(cursor)
        return RetrainApiRequest(model=model, reason=reason)
    if opcode == OP_TOP_K_CATALOG:
        uid, k, model = (unpack_value(cursor) for _ in range(3))
        return TopKCatalogApiRequest(uid=int(uid), k=int(k), model=model)
    if opcode == OP_STATUS:
        return StatusApiRequest()
    if opcode == OP_ANALYTICS:
        uid, item, time_start, time_end, group_by, agg, force_scan, model = (
            unpack_value(cursor) for _ in range(8)
        )
        return AnalyticsApiRequest(
            uid=None if uid is None else int(uid),
            item=None if item is None else int(item),
            time_start=None if time_start is None else float(time_start),
            time_end=None if time_end is None else float(time_end),
            group_by=group_by,
            agg=agg,
            force_scan=bool(force_scan),
            model=model,
        )
    raise ValidationError(f"unknown request opcode {opcode}")


def encode_response_frame(response: ApiResponse, corr_id: int) -> bytes:
    """One response envelope -> one framed binary response."""
    payload = _pack_values(
        bool(response.ok), response.error, response.payload
    )
    return encode_frame(OP_RESPONSE, corr_id, payload)


def decode_response_payload(payload: bytes) -> ApiResponse:
    """One response frame's payload -> one response envelope."""
    cursor = _Cursor(payload)
    ok = unpack_value(cursor)
    error = unpack_value(cursor)
    body = unpack_value(cursor)
    if not isinstance(body, dict):
        raise TransportError(
            f"response payload must be a dict, got {type(body).__name__}"
        )
    return ApiResponse(ok=bool(ok), payload=body, error=str(error))

"""Ablation: event-loop front end vs thread-per-connection at scale.

PR 2's thread-per-connection server spends an OS thread (and a tiny
listen backlog) per socket, so connection count — not offered load — is
what breaks it: a burst of a thousand concurrent clients overflows the
accept queue and the thread scheduler long before the serving engine's
queues fill. The event loop (`repro.frontend.eventloop`) multiplexes
every connection onto one selector thread, decoupling intake capacity
from client count.

The experiment holds the *aggregate offered load fixed* (open loop, a
single multiplexed generator pacing requests on a wall-clock schedule)
and sweeps how many pipelined connections that load is spread across:
16 -> 256 -> 1024 -> 2048. If the front end is connection-scalable, the
latency distribution should not care; p99 stays flat. A closed-loop run
at 16 connections additionally checks the event loop gives up no
meaningful throughput where the threaded design is comfortable.

Shape assertions:

* event loop: every connection at the top rung is established and
  served (nothing refused/lost) and p99 stays within 2x of the
  16-connection baseline (+5 ms of slack for scheduler noise);
* threaded: at the 1024+ rungs it visibly breaks — connections miss the
  establish deadline, requests go unanswered, or p99 blows past 4x its
  own baseline;
* throughput at 16 connections: event loop >= 0.9x threaded.

Set ``FRONTEND_SMOKE=1`` for the fast CI configuration (16 -> 256 only;
the threaded-collapse assertion needs the big rungs and is skipped).
"""

from __future__ import annotations

import errno
import os
import pathlib
import selectors
import socket
import time

import numpy as np

from repro.frontend import PredictApiRequest, VeloxServer, wire
from repro.serving import ServingConfig
from repro.tools.bench_report import write_json_summary

from conftest import build_mf_serving, write_result

SMOKE = os.environ.get("FRONTEND_SMOKE", "") not in ("", "0")
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

DIMENSION = 34
NUM_ITEMS = 1000
NUM_USERS = 64

RUNGS = [16, 256] if SMOKE else [16, 256, 1024, 2048]
#: Aggregate offered load (requests/second) held fixed across rungs.
RATE = 150.0 if SMOKE else 300.0
OPEN_LOOP_REQUESTS = 600 if SMOKE else 3000
#: Connections not fully negotiated by this deadline count as refused.
CONNECT_DEADLINE = 6.0 if SMOKE else 10.0
DRAIN_DEADLINE = 10.0
CLOSED_LOOP_REQUESTS = 800 if SMOKE else 3000
CLOSED_LOOP_WINDOW = 4


def _stack(frontend: str) -> VeloxServer:
    velox = build_mf_serving(
        DIMENSION, NUM_ITEMS, num_users=NUM_USERS, num_nodes=1
    )
    engine = velox.serving_engine(
        ServingConfig(
            num_workers=2,
            max_queue_depth=8192,
            max_queue_age=10.0,
            batching="adaptive",
            max_batch_size=64,
            slo_p99=0.1,
        )
    )
    return VeloxServer(velox, engine=engine, frontend=frontend)


# -- multiplexed load generator ---------------------------------------------
#
# Thousands of concurrent clients cannot be thousands of client threads
# on this box — the generator itself would be the bottleneck. One
# selectors loop drives every connection: non-blocking connects, the
# binary hello on each, then paced raw frames with client-side
# FrameDecoder reassembly. The generator is the mirror image of the
# server under test.


class _Conn:
    __slots__ = ("sock", "decoder", "outbuf", "mask", "dead")

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.decoder = wire.FrameDecoder()
        self.outbuf = bytearray()
        self.mask = selectors.EVENT_READ
        self.dead = False


def _establish(
    host: str, port: int, count: int, deadline_s: float
) -> tuple[list[socket.socket], int, float]:
    """Open ``count`` negotiated binary connections concurrently.

    Returns ``(sockets, refused, elapsed_s)`` where refused counts
    connections that failed or missed the deadline — the observable
    symptom of an accept path that cannot keep up with a burst.
    """
    sel = selectors.DefaultSelector()
    established: list[socket.socket] = []
    hello: dict[socket.socket, bytes] = {}
    refused = 0
    start = time.monotonic()
    inflight = 0
    for _ in range(count):
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setblocking(False)
        err = sock.connect_ex((host, port))
        if err not in (0, errno.EINPROGRESS, errno.EWOULDBLOCK):
            refused += 1
            sock.close()
            continue
        sel.register(sock, selectors.EVENT_WRITE, "connecting")
        inflight += 1
    deadline = start + deadline_s
    while inflight and time.monotonic() < deadline:
        for key, _mask in sel.select(timeout=0.2):
            sock = key.fileobj
            if key.data == "connecting":
                err = sock.getsockopt(socket.SOL_SOCKET, socket.SO_ERROR)
                if err:
                    sel.unregister(sock)
                    sock.close()
                    refused += 1
                    inflight -= 1
                    continue
                try:
                    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                    sock.sendall(wire.HELLO)
                except OSError:
                    sel.unregister(sock)
                    sock.close()
                    refused += 1
                    inflight -= 1
                    continue
                hello[sock] = b""
                sel.modify(sock, selectors.EVENT_READ, "hello")
                continue
            try:
                chunk = sock.recv(64)
            except (BlockingIOError, InterruptedError):
                continue
            except OSError:
                chunk = b""
            if not chunk:
                sel.unregister(sock)
                sock.close()
                hello.pop(sock, None)
                refused += 1
                inflight -= 1
                continue
            hello[sock] += chunk
            if len(hello[sock]) >= len(wire.HELLO):
                assert hello[sock] == wire.HELLO, hello[sock]
                sel.unregister(sock)
                hello.pop(sock)
                established.append(sock)
                inflight -= 1
    for key in list(sel.get_map().values()):  # missed the deadline
        sel.unregister(key.fileobj)
        key.fileobj.close()
        refused += 1
    sel.close()
    return established, refused, time.monotonic() - start


def _flush(sel: selectors.DefaultSelector, conn: _Conn) -> None:
    if conn.dead:
        return
    while conn.outbuf:
        try:
            sent = conn.sock.send(conn.outbuf)
        except (BlockingIOError, InterruptedError):
            break
        except OSError:
            conn.dead = True
            sel.unregister(conn.sock)
            return
        del conn.outbuf[:sent]
    mask = selectors.EVENT_READ | (
        selectors.EVENT_WRITE if conn.outbuf else 0
    )
    if mask != conn.mask:
        sel.modify(conn.sock, mask, conn)
        conn.mask = mask


def _percentile(values: list[float], q: float) -> float:
    return float(np.percentile(np.asarray(values), q)) if values else float("nan")


def _open_loop(
    socks: list[socket.socket], rate: float, num_requests: int, seed: int
) -> dict:
    """Fixed-rate open-loop run: requests fire on a wall-clock schedule
    round-robin across connections; latency is measured against the
    *scheduled* send time, so server-side stalls cannot hide by slowing
    the generator down."""
    rng = np.random.default_rng(seed)
    uids = rng.integers(0, NUM_USERS, num_requests)
    items = rng.integers(0, NUM_ITEMS, num_requests)
    sel = selectors.DefaultSelector()
    conns = []
    for sock in socks:
        conn = _Conn(sock)
        sel.register(sock, selectors.EVENT_READ, conn)
        conns.append(conn)
    interval = 1.0 / rate
    send_times: dict[int, float] = {}
    latencies: list[float] = []
    errors = 0
    sent = received = 0
    start = time.monotonic()
    next_send = start
    hard_deadline = start + num_requests * interval + DRAIN_DEADLINE
    while received < num_requests and time.monotonic() < hard_deadline:
        now = time.monotonic()
        if sent < num_requests and now >= next_send:
            conn = conns[sent % len(conns)]
            if not conn.dead:
                request = PredictApiRequest(
                    uid=int(uids[sent]), item=int(items[sent])
                )
                conn.outbuf += wire.encode_request_frame(request, sent)
                send_times[sent] = next_send
                _flush(sel, conn)
            else:
                received += 1  # a dead conn's slot; count it lost below
            sent += 1
            next_send += interval
            continue
        wait = 0.05
        if sent < num_requests:
            wait = max(0.0, min(next_send - now, wait))
        for key, mask in sel.select(timeout=wait):
            conn = key.data
            if mask & selectors.EVENT_WRITE:
                _flush(sel, conn)
            if not (mask & selectors.EVENT_READ) or conn.dead:
                continue
            try:
                chunk = conn.sock.recv(1 << 16)
            except (BlockingIOError, InterruptedError):
                continue
            except OSError:
                chunk = b""
            if not chunk:
                conn.dead = True
                sel.unregister(conn.sock)
                continue
            conn.decoder.feed(chunk)
            for _opcode, corr_id, payload in conn.decoder.drain():
                scheduled = send_times.pop(corr_id, None)
                if scheduled is None:
                    continue
                latencies.append(time.monotonic() - scheduled)
                if not wire.decode_response_payload(payload).ok:
                    errors += 1
                received += 1
    sel.close()
    return {
        "offered": num_requests,
        "answered": len(latencies),
        "lost": num_requests - len(latencies),
        "errors": errors,
        "p50_ms": _percentile(latencies, 50) * 1e3,
        "p99_ms": _percentile(latencies, 99) * 1e3,
    }


def _closed_loop(
    socks: list[socket.socket], window: int, num_requests: int, seed: int
) -> dict:
    """Closed-loop throughput: each connection keeps ``window`` requests
    in flight and refills on every response."""
    rng = np.random.default_rng(seed)
    uids = rng.integers(0, NUM_USERS, num_requests)
    items = rng.integers(0, NUM_ITEMS, num_requests)
    sel = selectors.DefaultSelector()
    conns = []
    for sock in socks:
        conn = _Conn(sock)
        sel.register(sock, selectors.EVENT_READ, conn)
        conns.append(conn)
    sent = received = errors = 0

    def fire(conn: _Conn) -> None:
        nonlocal sent
        request = PredictApiRequest(uid=int(uids[sent]), item=int(items[sent]))
        conn.outbuf += wire.encode_request_frame(request, sent)
        sent += 1
        _flush(sel, conn)

    start = time.monotonic()
    for conn in conns:
        for _ in range(window):
            if sent < num_requests:
                fire(conn)
    deadline = start + 120.0
    while received < sent and time.monotonic() < deadline:
        for key, mask in sel.select(timeout=0.2):
            conn = key.data
            if mask & selectors.EVENT_WRITE:
                _flush(sel, conn)
            if not (mask & selectors.EVENT_READ) or conn.dead:
                continue
            try:
                chunk = conn.sock.recv(1 << 16)
            except (BlockingIOError, InterruptedError):
                continue
            except OSError:
                chunk = b""
            if not chunk:
                conn.dead = True
                sel.unregister(conn.sock)
                continue
            conn.decoder.feed(chunk)
            for _opcode, _corr_id, payload in conn.decoder.drain():
                received += 1
                if not wire.decode_response_payload(payload).ok:
                    errors += 1
                if sent < num_requests:
                    fire(conn)
    elapsed = time.monotonic() - start
    sel.close()
    return {
        "completed": received,
        "errors": errors,
        "throughput_rps": received / elapsed if elapsed > 0 else 0.0,
    }


def _close_all(socks: list[socket.socket]) -> None:
    for sock in socks:
        try:
            sock.close()
        except OSError:
            pass


def _sweep(frontend: str) -> list[dict]:
    rows = []
    for clients in RUNGS:
        with _stack(frontend) as server:
            socks, refused, establish_s = _establish(
                server.host, server.port, clients, CONNECT_DEADLINE
            )
            if socks:
                result = _open_loop(socks, RATE, OPEN_LOOP_REQUESTS, seed=clients)
            else:
                result = {
                    "offered": OPEN_LOOP_REQUESTS,
                    "answered": 0,
                    "lost": OPEN_LOOP_REQUESTS,
                    "errors": 0,
                    "p50_ms": float("nan"),
                    "p99_ms": float("nan"),
                }
            _close_all(socks)
            rows.append(
                {
                    "frontend": frontend,
                    "clients": clients,
                    "established": len(socks),
                    "refused": refused,
                    "establish_s": establish_s,
                    **result,
                }
            )
    return rows


def _throughput16(frontend: str) -> dict:
    with _stack(frontend) as server:
        socks, refused, _ = _establish(
            server.host, server.port, 16, CONNECT_DEADLINE
        )
        assert refused == 0, f"{frontend}: refused at 16 connections"
        result = _closed_loop(
            socks, CLOSED_LOOP_WINDOW, CLOSED_LOOP_REQUESTS, seed=99
        )
        _close_all(socks)
    return result


def test_frontend_summary(benchmark):
    sweeps = {frontend: _sweep(frontend) for frontend in ("eventloop", "threaded")}
    throughput = {
        frontend: _throughput16(frontend)
        for frontend in ("eventloop", "threaded")
    }

    lines = [
        f"== open loop: fixed {RATE:.0f} rps aggregate, "
        f"{OPEN_LOOP_REQUESTS} predicts, client-count sweep =="
    ]
    lines.append(
        "frontend   clients  established  refused  establish_s  "
        "answered  lost  p50_ms   p99_ms"
    )
    for frontend, rows in sweeps.items():
        for row in rows:
            lines.append(
                f"{frontend:<11}{row['clients']:<9d}{row['established']:<13d}"
                f"{row['refused']:<9d}{row['establish_s']:<13.2f}"
                f"{row['answered']:<10d}{row['lost']:<6d}"
                f"{row['p50_ms']:<9.2f}{row['p99_ms']:.2f}"
            )
    lines.append("")
    lines.append(
        f"== closed loop: 16 connections x window {CLOSED_LOOP_WINDOW}, "
        f"{CLOSED_LOOP_REQUESTS} predicts =="
    )
    lines.append("frontend   throughput_rps  completed  errors")
    for frontend, row in throughput.items():
        lines.append(
            f"{frontend:<11}{row['throughput_rps']:<16.1f}"
            f"{row['completed']:<11d}{row['errors']:d}"
        )
    write_result("ablation_frontend", lines)
    write_json_summary(
        REPO_ROOT / "BENCH_frontend.json",
        "ablation_frontend",
        {
            "smoke": SMOKE,
            "rate_rps": RATE,
            "open_loop_requests": OPEN_LOOP_REQUESTS,
            "rungs": RUNGS,
            "sweep": sweeps,
            "throughput_16_clients": throughput,
        },
    )

    ev = {row["clients"]: row for row in sweeps["eventloop"]}
    th = {row["clients"]: row for row in sweeps["threaded"]}
    ev_base, ev_top = ev[RUNGS[0]], ev[RUNGS[-1]]

    # The tentpole claim: the event loop serves every client at the top
    # rung and holds p99 within 2x of the 16-connection baseline.
    assert ev_top["refused"] == 0, f"event loop refused: {ev_top}"
    assert ev_top["lost"] == 0, f"event loop lost requests: {ev_top}"
    assert ev_top["p99_ms"] <= max(
        2.0 * ev_base["p99_ms"], ev_base["p99_ms"] + 5.0
    ), f"event loop p99 not flat: base={ev_base} top={ev_top}"

    # The event loop gives up no meaningful throughput at a connection
    # count where thread-per-connection is comfortable.
    ev_rps = throughput["eventloop"]["throughput_rps"]
    th_rps = throughput["threaded"]["throughput_rps"]
    assert ev_rps >= 0.9 * th_rps, f"eventloop {ev_rps:.0f} vs threaded {th_rps:.0f}"

    # The threaded design visibly breaks at the big rungs: refused
    # connections, unanswered requests, or a p99 blow-up.
    if RUNGS[-1] >= 1024:
        th_top, th_base = th[RUNGS[-1]], th[RUNGS[0]]
        degraded = (
            th_top["answered"] == 0
            or not np.isfinite(th_top["p99_ms"])
            or th_top["p99_ms"] > 4.0 * th_base["p99_ms"]
        )
        assert th_top["refused"] > 0 or th_top["lost"] > 0 or degraded, (
            f"threaded survived the top rung: base={th_base} top={th_top}"
        )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

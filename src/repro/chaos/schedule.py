"""Declarative, seeded fault schedules.

A :class:`FaultSchedule` is a list of :class:`FaultRule` entries plus a
seed. Each rule names one *injection point* (a string like
``"wire.drop_response"``), a firing probability, an optional magnitude
(seconds, for latency-like faults), an optional active time window, and
an optional fault budget. The schedule itself is pure data — it decides
nothing — so it can be serialized into a benchmark artifact
(``to_dict``/``from_dict``) and replayed bit-for-bit by a fresh
:class:`~repro.chaos.injector.ChaosInjector`.

Determinism model: every decision a rule makes is a pure function of
``(schedule seed, rule index, decision key)``, where the key is either
an explicit caller-provided value (e.g. a partition index or node id)
or the rule's own consultation counter. Keyed decisions are therefore
independent of thread interleaving and even of process boundaries —
the property the batch tier's fork workers and the chaos ablation's
two-run determinism check both rely on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.common.errors import ConfigError
from repro.common.rng import DEFAULT_SEED, stable_hash

#: The injection points the library consults, with the subsystem that
#: owns each. A schedule may name points outside this list (custom test
#: hooks); these are the ones wired into production code paths.
KNOWN_POINTS = (
    # wire codec (response path of the TCP front ends)
    "wire.delay_response",   # magnitude: seconds of added latency
    "wire.drop_response",    # response frame silently discarded
    "wire.garble_response",  # one payload byte corrupted (typed decode error)
    "wire.reset",            # connection closed mid-conversation
    # frontend (event-loop intake)
    "frontend.slow_accept",  # magnitude: seconds before reads begin
    "frontend.stall_write",  # magnitude: seconds the outbound buffer stalls
    # replication
    "replication.ship_delay",  # magnitude: seconds added to a ship round
    "replication.dead_node",   # key: node id — node is killed
    "replication.slow_node",   # key: node id — heartbeat suppressed one tick
    # serving engine
    "engine.slow_handler",   # magnitude: seconds added before batch compute
    # batch tier (fork executor)
    "batch.worker_kill",     # key: partition — fork worker dies pre-task
)


@dataclass(frozen=True)
class FaultRule:
    """One fault source: where, how often, how hard, and for how long.

    Attributes:
        point: Injection-point name this rule applies to.
        probability: Chance each consultation fires, in [0, 1].
        magnitude: Seconds of delay for latency-like points (ignored by
            boolean points like drops and resets).
        jitter: Uniform ±jitter added to ``magnitude`` per firing, drawn
            from the same deterministic stream as the firing decision.
        max_faults: Fault budget — the rule stops firing after this many
            faults (None = unbounded).
        start: Schedule-relative activation time (seconds since the
            injector's epoch). Decisions before this never fire.
        stop: Schedule-relative deactivation time (exclusive).
    """

    point: str
    probability: float = 1.0
    magnitude: float = 0.0
    jitter: float = 0.0
    max_faults: int | None = None
    start: float = 0.0
    stop: float = math.inf

    def __post_init__(self) -> None:
        if not self.point:
            raise ConfigError("fault rule needs a non-empty point name")
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.magnitude < 0:
            raise ConfigError(f"magnitude must be >= 0, got {self.magnitude}")
        if self.jitter < 0:
            raise ConfigError(f"jitter must be >= 0, got {self.jitter}")
        if self.jitter > self.magnitude:
            raise ConfigError(
                f"jitter {self.jitter} exceeds magnitude {self.magnitude}: "
                "a fault delay cannot go negative"
            )
        if self.max_faults is not None and self.max_faults < 0:
            raise ConfigError(
                f"max_faults must be >= 0, got {self.max_faults}"
            )
        if self.start < 0:
            raise ConfigError(f"start must be >= 0, got {self.start}")
        if self.stop <= self.start:
            raise ConfigError(
                f"window must satisfy start ({self.start}) < stop ({self.stop})"
            )

    def active_at(self, elapsed: float) -> bool:
        """Whether the rule's window covers ``elapsed`` schedule seconds."""
        return self.start <= elapsed < self.stop

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-safe; ``inf`` stop becomes ``None``)."""
        return {
            "point": self.point,
            "probability": self.probability,
            "magnitude": self.magnitude,
            "jitter": self.jitter,
            "max_faults": self.max_faults,
            "start": self.start,
            "stop": None if math.isinf(self.stop) else self.stop,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultRule":
        """Inverse of :meth:`to_dict`, rejecting unknown keys loudly."""
        if not isinstance(data, dict):
            raise ConfigError(
                f"fault rule must be an object, got {type(data).__name__}"
            )
        known = {
            "point", "probability", "magnitude", "jitter", "max_faults",
            "start", "stop",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError(f"unknown fault rule keys: {unknown}")
        body = dict(data)
        if body.get("stop") is None:
            body["stop"] = math.inf
        return cls(**body)


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as recorded by the injector.

    ``key`` is the decision key: the caller-provided value for keyed
    points (partition index, node id) or the rule's consultation index.
    ``magnitude`` is the jittered delay actually applied (0.0 for
    boolean faults). Events are hashable and ordered, so two runs'
    fault sequences compare directly.
    """

    point: str
    rule_index: int
    key: object
    magnitude: float

    def as_tuple(self) -> tuple:
        """Canonical comparable form."""
        return (self.point, self.rule_index, repr(self.key), self.magnitude)


class FaultSchedule:
    """A seed plus an ordered list of :class:`FaultRule`.

    The schedule is immutable data; hand it to a
    :class:`~repro.chaos.injector.ChaosInjector` to make decisions.
    Rules are matched to a consultation in declaration order, and the
    first rule that fires wins, so placing a narrow windowed rule before
    a broad background rule gives the window precedence.
    """

    def __init__(self, rules, seed: int = DEFAULT_SEED):
        self.rules: tuple[FaultRule, ...] = tuple(rules)
        for rule in self.rules:
            if not isinstance(rule, FaultRule):
                raise ConfigError(
                    f"schedule rules must be FaultRule, got {type(rule).__name__}"
                )
        self.seed = int(seed)

    def __len__(self) -> int:
        return len(self.rules)

    def rules_for(self, point: str) -> list[tuple[int, FaultRule]]:
        """``(rule_index, rule)`` pairs matching one injection point."""
        return [
            (index, rule)
            for index, rule in enumerate(self.rules)
            if rule.point == point
        ]

    def points(self) -> list[str]:
        """Every distinct injection point named by this schedule."""
        seen: dict[str, None] = {}
        for rule in self.rules:
            seen.setdefault(rule.point, None)
        return list(seen)

    def to_dict(self) -> dict:
        """JSON-safe form recorded into benchmark artifacts."""
        return {
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSchedule":
        """Inverse of :meth:`to_dict`."""
        if not isinstance(data, dict):
            raise ConfigError(
                f"fault schedule must be an object, got {type(data).__name__}"
            )
        unknown = sorted(set(data) - {"seed", "rules"})
        if unknown:
            raise ConfigError(f"unknown fault schedule keys: {unknown}")
        return cls(
            rules=[FaultRule.from_dict(r) for r in data.get("rules", [])],
            seed=data.get("seed", DEFAULT_SEED),
        )

    # -- deterministic draws -------------------------------------------------

    def draw(self, rule_index: int, key: object) -> tuple[float, float]:
        """The (uniform firing draw, jitter draw in [-1, 1]) for a decision.

        A pure function of ``(seed, rule_index, key)``: the same
        schedule asked about the same decision always answers the same,
        regardless of call order, thread, or process.
        """
        import numpy as np

        entropy = (
            self.seed & 0xFFFFFFFFFFFFFFFF,
            rule_index,
            stable_hash(key),
        )
        rng = np.random.default_rng(np.random.SeedSequence(entropy))
        return float(rng.random()), float(rng.uniform(-1.0, 1.0))

"""A single partition of a veloxstore table: dict state + journal + snapshot.

Partitions are the unit of placement (the cluster assigns partitions to
nodes) and the unit of failure/recovery. ``fail()`` drops the volatile
dict, modeling a node losing its memory; ``recover()`` rebuilds it from
the last snapshot plus journal replay — the Tachyon lineage story.
"""

from __future__ import annotations

import copy
from typing import Iterator

from repro.common.errors import PartitionError
from repro.store.journal import Journal, JournalOp


class Partition:
    """In-memory state for one shard of a table.

    Values are stored alongside a per-key integer version that starts at 1
    and increments on every overwrite. Deletes remove the key entirely;
    re-inserting restarts its version at 1 (versions are per-incarnation,
    like Tachyon block generations).
    """

    def __init__(self, index: int):
        if index < 0:
            raise ValueError(f"partition index must be >= 0, got {index}")
        self.index = index
        self._data: dict[object, tuple[object, int]] = {}
        self._journal = Journal()
        self._snapshot: dict[object, tuple[object, int]] | None = None
        self._snapshot_sequence = 0
        self._failed = False
        #: failover delegate (duck-typed like this partition's mapping
        #: surface). When set on a *failed* partition, reads and writes
        #: route through it instead of raising — the replication layer
        #: installs a promoted follower replica here so serving survives
        #: the owner node's loss.
        self.failover = None
        #: optional callable(partition) fired after every journaled
        #: mutation; the replication layer uses it to bound replica lag.
        self.on_mutate = None

    # -- basic state ---------------------------------------------------

    def __len__(self) -> int:
        delegate = self._delegate()
        if delegate is not None:
            return len(delegate)
        self._check_alive()
        return len(self._data)

    def __contains__(self, key: object) -> bool:
        delegate = self._delegate()
        if delegate is not None:
            return key in delegate
        self._check_alive()
        return key in self._data

    @property
    def failed(self) -> bool:
        """Whether this partition has lost its volatile state."""
        return self._failed

    @property
    def journal(self) -> Journal:
        """The durable journal (survives :meth:`fail`; the lineage tier)."""
        return self._journal

    @property
    def journal_length(self) -> int:
        """Total records ever appended to the journal."""
        return len(self._journal)

    def _delegate(self):
        """The failover target serving this partition, when failed."""
        if self._failed and self.failover is not None:
            return self.failover
        return None

    def _check_alive(self) -> None:
        if self._failed:
            raise PartitionError(
                f"partition {self.index} is failed; call recover() first"
            )

    def _mutated(self) -> None:
        if self.on_mutate is not None:
            self.on_mutate(self)

    # -- reads ----------------------------------------------------------

    def get(self, key: object) -> tuple[object, int] | None:
        """Return ``(value, version)`` or ``None`` when absent."""
        delegate = self._delegate()
        if delegate is not None:
            return delegate.get(key)
        self._check_alive()
        return self._data.get(key)

    def keys(self) -> Iterator[object]:
        """Snapshot of the partition's keys."""
        delegate = self._delegate()
        if delegate is not None:
            return delegate.keys()
        self._check_alive()
        return iter(list(self._data.keys()))

    def items(self) -> Iterator[tuple[object, object]]:
        """Iterate ``(key, value)`` pairs (versions stripped)."""
        delegate = self._delegate()
        if delegate is not None:
            return delegate.items()
        self._check_alive()
        return iter([(k, v) for k, (v, _) in self._data.items()])

    # -- writes (journaled) ----------------------------------------------

    def put(self, key: object, value: object) -> int:
        """Insert or overwrite; returns the new per-key version."""
        delegate = self._delegate()
        if delegate is not None:
            return delegate.put(key, value)
        self._check_alive()
        existing = self._data.get(key)
        version = 1 if existing is None else existing[1] + 1
        self._journal.append(JournalOp.PUT, key, value, version)
        self._data[key] = (value, version)
        self._mutated()
        return version

    def install(self, key: object, value: object, version: int) -> None:
        """Install an entry at an explicit version (checkpoint restore).

        Journaled as a single PUT carrying the version, so recovery
        replay reproduces it exactly without replaying the key's
        pre-checkpoint history.
        """
        if version < 1:
            raise ValueError(f"version must be >= 1, got {version}")
        delegate = self._delegate()
        if delegate is not None:
            delegate.install(key, value, version)
            return
        self._check_alive()
        self._journal.append(JournalOp.PUT, key, value, version)
        self._data[key] = (value, version)
        self._mutated()

    def delete(self, key: object) -> bool:
        """Remove a key; returns whether it existed."""
        delegate = self._delegate()
        if delegate is not None:
            return delegate.delete(key)
        self._check_alive()
        if key not in self._data:
            return False
        self._journal.append(JournalOp.DELETE, key, None, 0)
        del self._data[key]
        self._mutated()
        return True

    def truncate(self) -> None:
        """Remove every key (journaled as a single record)."""
        delegate = self._delegate()
        if delegate is not None:
            delegate.truncate()
            return
        self._check_alive()
        self._journal.append(JournalOp.TRUNCATE, None, None, 0)
        self._data.clear()
        self._mutated()

    # -- durability & recovery -------------------------------------------

    def snapshot(self) -> None:
        """Checkpoint current state; compacts the journal prefix it covers."""
        self._check_alive()
        self._snapshot = copy.deepcopy(self._data)
        self._snapshot_sequence = self._journal.next_sequence
        self._journal.compact(self._snapshot_sequence)

    def fail(self) -> None:
        """Simulate loss of volatile memory. Journal and snapshot survive
        (they model durable/lineage state)."""
        self._data = {}
        self._failed = True

    def _rebuild_from_journal(self) -> tuple[dict, int]:
        """Reconstruct ``(state, records_replayed)`` from snapshot + journal."""
        base: dict[object, tuple[object, int]] = (
            copy.deepcopy(self._snapshot) if self._snapshot is not None else {}
        )
        replayed = 0
        for record in self._journal.replay(self._snapshot_sequence):
            replayed += 1
            if record.op is JournalOp.PUT:
                base[record.key] = (record.value, record.version)
            elif record.op is JournalOp.DELETE:
                base.pop(record.key, None)
            elif record.op is JournalOp.TRUNCATE:
                base.clear()
        return base, replayed

    def recover(self) -> int:
        """Rebuild state from snapshot + journal replay.

        Returns the number of journal records replayed. Idempotent on a
        healthy partition (replaying a journal over its own snapshot-plus-
        suffix state reproduces the same dict).
        """
        self._data, replayed = self._rebuild_from_journal()
        self._failed = False
        return replayed

    def export_state(self) -> tuple[dict[object, tuple[object, int]], int]:
        """A ``(state, sequence)`` copy for replica snapshot transfer.

        Valid even while failed: the durable snapshot + journal are
        replayed without reviving the partition, so a follower that fell
        behind the compaction horizon can still be caught up.
        """
        if not self._failed:
            return copy.deepcopy(self._data), self._journal.next_sequence
        state, _ = self._rebuild_from_journal()
        return state, self._journal.next_sequence

"""A small feed-forward network as the feature function.

The paper's "computational feature function (e.g., a deep neural
network)" case: θ is the network's weights, trained offline; serving
evaluates the forward pass (expensive relative to a table lookup, which
is exactly why the feature cache matters), and the last hidden layer is
the d-dimensional embedding over which users learn linear weights.

Implemented in pure numpy: tanh hidden layers, squared-error output
head used only during offline training to shape the representation.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ValidationError
from repro.common.rng import as_generator
from repro.core.model import VeloxModel


class MlpFeatureModel(VeloxModel):
    """Two-layer tanh MLP whose hidden activations are the features."""

    materialized = False

    def __init__(
        self,
        name: str,
        input_dimension: int,
        hidden_dimension: int = 32,
        seed: int = 0,
        version: int = 0,
        layers: list[tuple[np.ndarray, np.ndarray]] | None = None,
    ):
        if input_dimension < 1:
            raise ValidationError(
                f"input_dimension must be >= 1, got {input_dimension}"
            )
        if hidden_dimension < 1:
            raise ValidationError(
                f"hidden_dimension must be >= 1, got {hidden_dimension}"
            )
        super().__init__(name, dimension=hidden_dimension + 1, version=version)
        self.input_dimension = input_dimension
        self.hidden_dimension = hidden_dimension
        self.seed = seed
        if layers is None:
            rng = as_generator(seed)
            scale1 = 1.0 / np.sqrt(input_dimension)
            scale2 = 1.0 / np.sqrt(hidden_dimension)
            layers = [
                (rng.normal(0, scale1, (hidden_dimension, input_dimension)),
                 np.zeros(hidden_dimension)),
                (rng.normal(0, scale2, (hidden_dimension, hidden_dimension)),
                 np.zeros(hidden_dimension)),
            ]
        if len(layers) != 2:
            raise ValidationError("MlpFeatureModel expects exactly two layers")
        self.layers = layers

    def _forward(self, x: np.ndarray) -> np.ndarray:
        h = x
        for weights, bias in self.layers:
            h = np.tanh(weights @ h + bias)
        return h

    def features(self, x: object) -> np.ndarray:
        """The network's final hidden activations, plus intercept."""
        arr = np.asarray(x, dtype=float)
        if arr.shape != (self.input_dimension,):
            raise ValidationError(
                f"model {self.name!r} expects inputs of shape "
                f"({self.input_dimension},), got {arr.shape}"
            )
        return np.concatenate([self._forward(arr), [1.0]])

    def retrain(self, batch_context, observations, user_weights: dict):
        """Offline representation learning: SGD on a shared linear head.

        Trains the network (with one global output head) to regress the
        logged labels, then discards the head — users keep their own
        linear models over the improved embedding. Minibatch SGD is
        inherently sequential, so this UDF runs on the driver; the batch
        context is part of the retrain contract but unused here.
        """
        if not observations:
            raise ValidationError(
                f"cannot retrain model {self.name!r} with no observations"
            )
        inputs = np.vstack(
            [np.asarray(ob.item_data, dtype=float) for ob in observations]
        )
        labels = np.asarray([ob.label for ob in observations], dtype=float)
        rng = as_generator(self.seed + self.version + 1)

        w1, b1 = (layer.copy() for layer in self.layers[0])
        w2, b2 = (layer.copy() for layer in self.layers[1])
        head = rng.normal(0, 0.1, self.hidden_dimension)
        head_bias = float(labels.mean())
        rate = 0.01

        for _epoch in range(20):
            order = rng.permutation(len(labels))
            for start in range(0, len(order), 32):
                rows = order[start : start + 32]
                x = inputs[rows]
                y = labels[rows]
                h1 = np.tanh(x @ w1.T + b1)
                h2 = np.tanh(h1 @ w2.T + b2)
                pred = h2 @ head + head_bias
                err = (pred - y) / len(rows)
                grad_head = h2.T @ err
                grad_h2 = np.outer(err, head) * (1 - h2 * h2)
                grad_w2 = grad_h2.T @ h1
                grad_b2 = grad_h2.sum(axis=0)
                grad_h1 = (grad_h2 @ w2) * (1 - h1 * h1)
                grad_w1 = grad_h1.T @ x
                grad_b1 = grad_h1.sum(axis=0)
                head -= rate * grad_head
                head_bias -= rate * float(err.sum())
                w2 -= rate * grad_w2
                b2 -= rate * grad_b2
                w1 -= rate * grad_w1
                b1 -= rate * grad_b1

        new_model = MlpFeatureModel(
            self.name,
            self.input_dimension,
            hidden_dimension=self.hidden_dimension,
            seed=self.seed,
            version=self.version + 1,
            layers=[(w1, b1), (w2, b2)],
        )
        # The embedding changed: re-solve every user's linear weights
        # over the new hidden representation.
        from repro.core.offline import solve_user_weights

        solved = solve_user_weights(
            batch_context, observations, new_model.features, new_model.dimension
        )
        new_weights = {
            uid: solved.get(uid, new_model.initial_user_weights())
            for uid in set(user_weights) | set(solved)
        }
        return new_model, new_weights

"""Consistent-hash ring: placement determinism, balance, churn stability."""

from __future__ import annotations

import pytest

from repro.common.errors import ReplicationError
from repro.replication import HashRing


class TestConstruction:
    def test_requires_at_least_one_node(self):
        with pytest.raises(ReplicationError):
            HashRing([])

    def test_rejects_nonpositive_virtual_nodes(self):
        with pytest.raises(ReplicationError):
            HashRing([0, 1], virtual_nodes=0)

    def test_node_ids_sorted(self):
        assert HashRing([3, 1, 2]).node_ids == [1, 2, 3]

    def test_len_counts_physical_nodes(self):
        assert len(HashRing([0, 1, 2], virtual_nodes=8)) == 3


class TestReplicas:
    def test_deterministic(self):
        a = HashRing([0, 1, 2, 3])
        b = HashRing([0, 1, 2, 3])
        for key in ("user:0", "user:17", 42, ("t", 3)):
            assert a.replicas(key, 2) == b.replicas(key, 2)

    def test_distinct_physical_nodes(self):
        ring = HashRing(range(5))
        for key in range(50):
            chosen = ring.replicas(key, 3)
            assert len(chosen) == len(set(chosen)) == 3

    def test_caps_at_ring_size(self):
        ring = HashRing([0, 1])
        assert sorted(ring.replicas("k", 5)) == [0, 1]

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ReplicationError):
            HashRing([0]).replicas("k", 0)

    def test_primary_is_first_replica(self):
        ring = HashRing(range(4))
        for key in range(20):
            assert ring.primary(key) == ring.replicas(key, 3)[0]

    def test_rough_balance(self):
        """Virtual nodes spread primaries across the cluster (no node
        owns everything, none is starved)."""
        ring = HashRing(range(4), virtual_nodes=64)
        counts = {n: 0 for n in range(4)}
        for key in range(400):
            counts[ring.primary(f"partition:{key}")] += 1
        assert min(counts.values()) > 0
        assert max(counts.values()) < 400 * 0.6


class TestChurn:
    def test_remove_only_reassigns_departed_nodes_keys(self):
        """Consistent hashing's point: removing a node leaves every key
        that did not map to it untouched."""
        ring = HashRing(range(4))
        before = {key: ring.replicas(key, 1)[0] for key in range(200)}
        ring.remove_node(2)
        for key, owner in before.items():
            if owner != 2:
                assert ring.replicas(key, 1)[0] == owner
            else:
                assert ring.replicas(key, 1)[0] != 2

    def test_add_then_remove_round_trips(self):
        ring = HashRing(range(3))
        before = {key: ring.replicas(key, 2) for key in range(100)}
        ring.add_node(9)
        ring.remove_node(9)
        after = {key: ring.replicas(key, 2) for key in range(100)}
        assert before == after

    def test_add_and_remove_idempotent(self):
        ring = HashRing(range(3))
        ring.add_node(1)
        assert len(ring) == 3
        ring.remove_node(7)
        assert len(ring) == 3

"""Typed API objects and the JSON-lines wire codec.

Requests mirror Listing 1 (``predict``, ``topK``, ``observe``) plus two
management endpoints (``health``, ``retrain``). Item payloads may be
integers (materialized models) or lists of floats (computed models);
the codec round-trips both.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ValidationError


@dataclass(frozen=True)
class PredictApiRequest:
    """Point prediction for (uid, item).

    ``deadline`` is the request's remaining end-to-end budget in seconds
    (relative, so it survives clock skew between client and server); the
    serving engine sheds the request — always before model compute —
    once the budget is spent. ``degraded`` asks for the cache-only rung
    of the degradation ladder: answer from the prediction cache without
    queueing, or fail fast. Both are optional trailing wire fields, so
    old peers interoperate unchanged.
    """
    uid: int
    item: object
    model: str | None = None
    deadline: float | None = None
    degraded: bool = False
    method = "predict"


@dataclass(frozen=True)
class TopKApiRequest:
    """Best-k over a provided candidate set.

    ``deadline``/``degraded`` as on :class:`PredictApiRequest`.
    """
    uid: int
    items: tuple
    k: int = 1
    model: str | None = None
    policy: str | None = None
    deadline: float | None = None
    degraded: bool = False
    method = "top_k"


@dataclass(frozen=True)
class ObserveApiRequest:
    """One labelled feedback observation."""
    uid: int
    item: object
    label: float
    model: str | None = None
    #: marks bandit-collected feedback for the unbiased validation pool
    #: (paper Section 4.3)
    validation: bool = False
    method = "observe"


@dataclass(frozen=True)
class HealthApiRequest:
    """Model-health snapshot."""
    model: str | None = None
    method = "health"


@dataclass(frozen=True)
class RetrainApiRequest:
    """Trigger an offline retrain."""
    model: str | None = None
    reason: str = "api request"
    method = "retrain"


@dataclass(frozen=True)
class TopKCatalogApiRequest:
    """Exact best-k over the model's whole catalog (indexed engine)."""

    uid: int
    k: int = 10
    model: str | None = None
    method = "top_k_catalog"


@dataclass(frozen=True)
class StatusApiRequest:
    """Deployment status report (the admin endpoint)."""

    method = "status"


@dataclass(frozen=True)
class AnalyticsApiRequest:
    """One rollup query over a model's observation log.

    Mirrors :class:`~repro.analytics.AnalyticsQuery` field for field
    (filters on ``uid``/``item``/timestamp range, optional ``group_by``,
    aggregate over labels), plus the routing escape hatch
    ``force_scan`` and the usual optional ``model`` selector.
    """

    uid: int | None = None
    item: int | None = None
    time_start: float | None = None
    time_end: float | None = None
    group_by: str | None = None
    agg: str = "count"
    force_scan: bool = False
    model: str | None = None
    method = "analytics"

    def to_query(self):
        """The engine-side :class:`~repro.analytics.AnalyticsQuery`
        (validates filters/aggregate at conversion time)."""
        from repro.analytics import AnalyticsQuery

        return AnalyticsQuery(
            uid=self.uid,
            item_id=self.item,
            time_start=self.time_start,
            time_end=self.time_end,
            group_by=self.group_by,
            agg=self.agg,
        )


@dataclass(frozen=True)
class ApiResponse:
    """Uniform response envelope."""

    ok: bool
    payload: dict = field(default_factory=dict)
    error: str = ""


_REQUEST_TYPES = {
    "predict": PredictApiRequest,
    "top_k": TopKApiRequest,
    "observe": ObserveApiRequest,
    "health": HealthApiRequest,
    "retrain": RetrainApiRequest,
    "top_k_catalog": TopKCatalogApiRequest,
    "status": StatusApiRequest,
    "analytics": AnalyticsApiRequest,
}


def _jsonable_item(item: object) -> object:
    if isinstance(item, (int, str, float, bool)):
        return item
    if isinstance(item, np.integer):
        return int(item)
    if isinstance(item, np.ndarray):
        return {"__ndarray__": item.tolist()}
    if isinstance(item, (list, tuple)):
        return list(item)
    raise ValidationError(f"cannot serialize item payload {item!r}")


def _item_from_json(value: object) -> object:
    if isinstance(value, dict) and "__ndarray__" in value:
        return np.asarray(value["__ndarray__"], dtype=float)
    return value


def encode_request(request) -> str:
    """One request → one JSON line."""
    body = {"method": request.method}
    if isinstance(request, PredictApiRequest):
        body.update(uid=request.uid, item=_jsonable_item(request.item), model=request.model)
        if request.deadline is not None:
            body["deadline"] = request.deadline
        if request.degraded:
            body["degraded"] = True
    elif isinstance(request, TopKApiRequest):
        body.update(
            uid=request.uid,
            items=[_jsonable_item(i) for i in request.items],
            k=request.k,
            model=request.model,
            policy=request.policy,
        )
        if request.deadline is not None:
            body["deadline"] = request.deadline
        if request.degraded:
            body["degraded"] = True
    elif isinstance(request, ObserveApiRequest):
        body.update(
            uid=request.uid,
            item=_jsonable_item(request.item),
            label=request.label,
            model=request.model,
            validation=request.validation,
        )
    elif isinstance(request, HealthApiRequest):
        body.update(model=request.model)
    elif isinstance(request, RetrainApiRequest):
        body.update(model=request.model, reason=request.reason)
    elif isinstance(request, TopKCatalogApiRequest):
        body.update(uid=request.uid, k=request.k, model=request.model)
    elif isinstance(request, StatusApiRequest):
        pass  # no fields
    elif isinstance(request, AnalyticsApiRequest):
        body.update(
            uid=request.uid,
            item=request.item,
            time_start=request.time_start,
            time_end=request.time_end,
            group_by=request.group_by,
            agg=request.agg,
            force_scan=request.force_scan,
            model=request.model,
        )
    else:
        raise ValidationError(f"unknown request type {type(request).__name__}")
    return json.dumps(body)


def decode_request(line: str):
    """One JSON line → one request object."""
    try:
        body = json.loads(line)
    except json.JSONDecodeError as err:
        raise ValidationError(f"malformed request JSON: {err}") from err
    method = body.get("method")
    if method not in _REQUEST_TYPES:
        raise ValidationError(f"unknown API method {method!r}")
    if method == "predict":
        deadline = body.get("deadline")
        return PredictApiRequest(
            uid=int(body["uid"]),
            item=_item_from_json(body["item"]),
            model=body.get("model"),
            deadline=None if deadline is None else float(deadline),
            degraded=bool(body.get("degraded", False)),
        )
    if method == "top_k":
        deadline = body.get("deadline")
        return TopKApiRequest(
            uid=int(body["uid"]),
            items=tuple(_item_from_json(i) for i in body["items"]),
            k=int(body.get("k", 1)),
            model=body.get("model"),
            policy=body.get("policy"),
            deadline=None if deadline is None else float(deadline),
            degraded=bool(body.get("degraded", False)),
        )
    if method == "observe":
        return ObserveApiRequest(
            uid=int(body["uid"]),
            item=_item_from_json(body["item"]),
            label=float(body["label"]),
            model=body.get("model"),
            validation=bool(body.get("validation", False)),
        )
    if method == "health":
        return HealthApiRequest(model=body.get("model"))
    if method == "top_k_catalog":
        return TopKCatalogApiRequest(
            uid=int(body["uid"]), k=int(body.get("k", 10)), model=body.get("model")
        )
    if method == "status":
        return StatusApiRequest()
    if method == "analytics":
        uid = body.get("uid")
        item = body.get("item")
        time_start = body.get("time_start")
        time_end = body.get("time_end")
        return AnalyticsApiRequest(
            uid=None if uid is None else int(uid),
            item=None if item is None else int(item),
            time_start=None if time_start is None else float(time_start),
            time_end=None if time_end is None else float(time_end),
            group_by=body.get("group_by"),
            agg=body.get("agg", "count"),
            force_scan=bool(body.get("force_scan", False)),
            model=body.get("model"),
        )
    return RetrainApiRequest(
        model=body.get("model"), reason=body.get("reason", "api request")
    )


def encode_response(response: ApiResponse) -> str:
    """One response -> one JSON line."""
    return json.dumps(
        {"ok": response.ok, "payload": response.payload, "error": response.error}
    )


def decode_response(line: str) -> ApiResponse:
    """One JSON line -> one response object."""
    try:
        body = json.loads(line)
    except json.JSONDecodeError as err:
        raise ValidationError(f"malformed response JSON: {err}") from err
    return ApiResponse(
        ok=bool(body.get("ok")),
        payload=body.get("payload", {}),
        error=body.get("error", ""),
    )

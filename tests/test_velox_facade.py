"""The Velox facade: deployment wiring, default-model behavior, errors."""

import numpy as np
import pytest

from repro import Velox, VeloxConfig
from repro.common.errors import ModelNotFoundError
from repro.core.bandits import LinUcbPolicy
from tests.conftest import make_initial_weights, make_mf_model


class TestDeploy:
    def test_deploy_wires_everything(self):
        velox = Velox.deploy(VeloxConfig(num_nodes=3))
        assert velox.cluster.num_nodes == 3
        assert velox.batch_context.default_parallelism == 3
        assert velox.service.registry is velox.registry
        assert velox.manager.service is velox.service

    def test_deploy_respects_network_config(self):
        cfg = VeloxConfig(remote_hop_latency=7e-3, remote_bandwidth=5e8)
        velox = Velox.deploy(cfg)
        assert velox.cluster.network.hop_latency == 7e-3
        assert velox.cluster.network.bandwidth == 5e8

    def test_batch_parallelism_override(self):
        velox = Velox.deploy(VeloxConfig(num_nodes=2), batch_parallelism=7)
        assert velox.batch_context.default_parallelism == 7


class TestDefaultModel:
    def test_no_models_raises_model_not_found(self):
        velox = Velox.deploy(VeloxConfig(num_nodes=1))
        with pytest.raises(ModelNotFoundError):
            velox.predict(None, 1, 2)
        with pytest.raises(ModelNotFoundError):
            velox.observe(uid=1, x=2, y=3.0)

    def test_first_model_becomes_default(self, trained_als):
        model = make_mf_model(trained_als, name="first")
        velox = Velox.deploy(VeloxConfig(num_nodes=2), auto_retrain=False)
        velox.add_model(model, make_initial_weights(model, trained_als))
        velox.add_model(make_mf_model(trained_als, name="second"))
        assert velox.model().name == "first"
        __, score = velox.predict(None, 1, 3)
        assert np.isfinite(score)

    def test_explicit_name_overrides_default(self, trained_als):
        velox = Velox.deploy(VeloxConfig(num_nodes=2), auto_retrain=False)
        velox.add_model(make_mf_model(trained_als, name="a"))
        velox.add_model(make_mf_model(trained_als, name="b"))
        assert velox.model("b").name == "b"


class TestFacadePassthroughs:
    def test_predict_and_detailed_agree(self, deployed_velox):
        item, score = deployed_velox.predict(None, 1, 4)
        detailed = deployed_velox.predict_detailed(None, 1, 4)
        assert detailed.item == item
        assert detailed.score == pytest.approx(score)

    def test_top_k_with_policy_and_filter(self, deployed_velox):
        results = deployed_velox.top_k(
            None,
            2,
            list(range(12)),
            k=3,
            policy=LinUcbPolicy(alpha=0.1),
            item_filter=lambda x: x >= 6,
        )
        assert len(results) == 3
        assert all(item >= 6 for item, __ in results)

    def test_health_passthrough(self, deployed_velox):
        deployed_velox.observe(uid=1, x=2, y=3.0)
        assert deployed_velox.health().observations == 1

    def test_rollback_passthrough(self, deployed_velox, small_split):
        for r in small_split.stream[:40]:
            deployed_velox.observe(uid=r.uid, x=r.item_id, y=r.rating)
        deployed_velox.retrain()
        revived = deployed_velox.rollback(version=0)
        assert revived.version == 2

"""Ensemble-of-SVMs feature function (the paper's Section 6 example).

The shared state θ is a set of linear SVMs trained offline; the feature
transformation evaluates every SVM's margin on the input, producing a
d-dimensional embedding over which each user learns a personal linear
model. Retraining refits the SVMs on the full observation log (labels
are binarized around their median) using Pegasos-style SGD — the kind
of opaque batch UDF the paper envisions handing to Spark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ValidationError
from repro.common.rng import as_generator
from repro.core.model import VeloxModel


@dataclass(frozen=True)
class LinearSvm:
    """One linear SVM: margin(x) = w . x + b."""

    weights: np.ndarray
    bias: float

    def margin(self, x: np.ndarray) -> float:
        """The SVM's signed margin for an input."""
        return float(self.weights @ x + self.bias)


def train_linear_svm(
    features: np.ndarray,
    labels: np.ndarray,
    regularization: float = 0.01,
    epochs: int = 5,
    seed: int = 0,
) -> LinearSvm:
    """Pegasos (primal SGD) for a hinge-loss linear SVM.

    ``labels`` must be in {-1, +1}. Deterministic given the seed.
    """
    samples, dim = features.shape
    if labels.shape != (samples,):
        raise ValidationError(
            f"labels must have shape ({samples},), got {labels.shape}"
        )
    if not np.all(np.isin(labels, (-1.0, 1.0))):
        raise ValidationError("SVM labels must be -1 or +1")
    rng = as_generator(seed)
    weights = np.zeros(dim)
    bias = 0.0
    step = 0
    for _epoch in range(epochs):
        for index in rng.permutation(samples):
            step += 1
            rate = 1.0 / (regularization * step)
            x, y = features[index], labels[index]
            if y * (weights @ x + bias) < 1.0:
                weights = (1 - rate * regularization) * weights + rate * y * x
                bias += rate * y
            else:
                weights = (1 - rate * regularization) * weights
    return LinearSvm(weights=weights, bias=bias)


class EnsembleSvmModel(VeloxModel):
    """Computed features: the margins of ``num_svms`` linear SVMs.

    The SVMs are differentiated by bootstrap resampling of the training
    data plus random label thresholds, so their margins form a useful
    (if simple) embedding.
    """

    materialized = False

    def __init__(
        self,
        name: str,
        svms: list[LinearSvm],
        input_dimension: int,
        version: int = 0,
    ):
        if not svms:
            raise ValidationError("EnsembleSvmModel needs at least one SVM")
        for svm in svms:
            if svm.weights.shape != (input_dimension,):
                raise ValidationError(
                    f"every SVM must have weights of shape ({input_dimension},), "
                    f"got {svm.weights.shape}"
                )
        super().__init__(name, dimension=len(svms) + 1, version=version)
        self.svms = list(svms)
        self.input_dimension = input_dimension

    @classmethod
    def untrained(
        cls,
        name: str,
        input_dimension: int,
        num_svms: int = 8,
        seed: int = 0,
    ) -> "EnsembleSvmModel":
        """Random-projection SVMs (pre-training placeholder)."""
        rng = as_generator(seed)
        svms = [
            LinearSvm(rng.normal(0, 1, input_dimension), float(rng.normal()))
            for _ in range(num_svms)
        ]
        return cls(name, svms, input_dimension)

    def features(self, x: object) -> np.ndarray:
        """Margins of every SVM plus an intercept slot."""
        arr = np.asarray(x, dtype=float)
        if arr.shape != (self.input_dimension,):
            raise ValidationError(
                f"model {self.name!r} expects inputs of shape "
                f"({self.input_dimension},), got {arr.shape}"
            )
        margins = [svm.margin(arr) for svm in self.svms]
        return np.asarray(margins + [1.0])

    def retrain(self, batch_context, observations, user_weights: dict):
        """Refit every SVM on the full log as parallel batch tasks.

        Each SVM sees a bootstrap resample with labels binarized around
        a per-SVM quantile of the label distribution, giving a diverse
        ensemble from one scalar-labelled log.
        """
        if not observations:
            raise ValidationError(
                f"cannot retrain model {self.name!r} with no observations"
            )
        inputs = np.vstack(
            [np.asarray(ob.item_data, dtype=float) for ob in observations]
        )
        raw_labels = np.asarray([ob.label for ob in observations], dtype=float)
        num_svms = len(self.svms)
        quantiles = np.linspace(0.25, 0.75, num_svms)

        def fit_one(index: int) -> tuple[int, LinearSvm]:
            """Train one ensemble member on a bootstrap resample."""
            rng = as_generator((index, 1234))
            rows = rng.integers(0, len(raw_labels), size=len(raw_labels))
            threshold = float(np.quantile(raw_labels, quantiles[index]))
            labels = np.where(raw_labels[rows] > threshold, 1.0, -1.0)
            if len(set(labels.tolist())) < 2:  # degenerate resample
                labels[0] = -labels[0]
            return index, train_linear_svm(inputs[rows], labels, seed=index)

        fitted = dict(
            batch_context.parallelize(list(range(num_svms)), num_svms)
            .map(fit_one)
            .collect()
        )
        new_svms = [fitted[i] for i in range(num_svms)]
        new_model = EnsembleSvmModel(
            self.name, new_svms, self.input_dimension, version=self.version + 1
        )
        # The feature space changed, so every user's weights must be
        # re-solved against the new margins.
        from repro.core.offline import solve_user_weights

        solved = solve_user_weights(
            batch_context, observations, new_model.features, new_model.dimension
        )
        new_weights = {
            uid: solved.get(uid, new_model.initial_user_weights())
            for uid in set(user_weights) | set(solved)
        }
        return new_model, new_weights

"""UserWeightAverager: exact current-weight mean maintenance."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.core.bootstrap import UserWeightAverager


class TestAverager:
    def test_mean_of_current_weights(self):
        averager = UserWeightAverager(2)
        averager.update(1, np.array([1.0, 0.0]))
        averager.update(2, np.array([3.0, 2.0]))
        assert np.allclose(averager.mean(), [2.0, 1.0])

    def test_rewrite_replaces_contribution(self):
        averager = UserWeightAverager(2)
        averager.update(1, np.array([1.0, 0.0]))
        averager.update(1, np.array([5.0, 4.0]))
        assert len(averager) == 1
        assert np.allclose(averager.mean(), [5.0, 4.0])

    def test_matches_brute_force_after_many_updates(self):
        rng = np.random.default_rng(2)
        averager = UserWeightAverager(3)
        current = {}
        for __ in range(500):
            uid = int(rng.integers(20))
            weights = rng.normal(size=3)
            averager.update(uid, weights)
            current[uid] = weights
        expected = np.mean(list(current.values()), axis=0)
        assert np.allclose(averager.mean(), expected)

    def test_remove(self):
        averager = UserWeightAverager(1)
        averager.update(1, np.array([2.0]))
        averager.update(2, np.array([4.0]))
        assert averager.remove(1) is True
        assert np.allclose(averager.mean(), [4.0])
        assert averager.remove(99) is False

    def test_contribution_copied_not_aliased(self):
        averager = UserWeightAverager(2)
        weights = np.array([1.0, 1.0])
        averager.update(1, weights)
        weights[:] = 100.0  # caller mutates their array
        assert np.allclose(averager.mean(), [1.0, 1.0])

    def test_empty_mean_rejected(self):
        with pytest.raises(ValidationError):
            UserWeightAverager(2).mean()

    def test_shape_checked(self):
        with pytest.raises(ValidationError):
            UserWeightAverager(2).update(1, np.zeros(3))

    def test_reset(self):
        averager = UserWeightAverager(1)
        averager.update(1, np.array([1.0]))
        averager.reset()
        assert len(averager) == 0

"""Wide (shuffle) transformations: aggregation, joins, sort, repartition."""

import pytest

from repro.batch import BatchContext


@pytest.fixture
def ctx():
    return BatchContext(default_parallelism=3)


class TestReduceByKey:
    def test_sums_per_key(self, ctx):
        pairs = ctx.parallelize([(i % 4, i) for i in range(40)], 5)
        result = pairs.reduce_by_key(lambda a, b: a + b).collect_as_map()
        expected = {k: sum(i for i in range(40) if i % 4 == k) for k in range(4)}
        assert result == expected

    def test_single_key(self, ctx):
        pairs = ctx.parallelize([("k", 1)] * 10, 4)
        assert pairs.reduce_by_key(lambda a, b: a + b).collect() == [("k", 10)]

    def test_explicit_output_partitions(self, ctx):
        pairs = ctx.parallelize([(i, i) for i in range(20)], 4)
        reduced = pairs.reduce_by_key(lambda a, b: a + b, num_partitions=7)
        assert reduced.num_partitions == 7
        assert len(reduced.collect()) == 20


class TestGroupByKey:
    def test_groups_all_values(self, ctx):
        pairs = ctx.parallelize([(i % 3, i) for i in range(12)], 4)
        grouped = pairs.group_by_key().collect_as_map()
        for key, values in grouped.items():
            assert sorted(values) == [i for i in range(12) if i % 3 == key]

    def test_group_sizes(self, ctx):
        pairs = ctx.parallelize([("a", 1), ("a", 2), ("b", 3)], 2)
        grouped = pairs.group_by_key().collect_as_map()
        assert len(grouped["a"]) == 2
        assert len(grouped["b"]) == 1


class TestCombineAndAggregateByKey:
    def test_combine_by_key_mean(self, ctx):
        pairs = ctx.parallelize([(i % 2, float(i)) for i in range(10)], 3)
        combined = pairs.combine_by_key(
            lambda v: (v, 1),
            lambda acc, v: (acc[0] + v, acc[1] + 1),
            lambda a, b: (a[0] + b[0], a[1] + b[1]),
        ).map_values(lambda acc: acc[0] / acc[1])
        means = combined.collect_as_map()
        assert means[0] == pytest.approx(4.0)
        assert means[1] == pytest.approx(5.0)

    def test_aggregate_by_key_zero_not_shared(self, ctx):
        pairs = ctx.parallelize([("a", 1), ("b", 2), ("a", 3)], 2)
        result = pairs.aggregate_by_key(
            [], lambda acc, v: acc + [v], lambda a, b: a + b
        ).collect_as_map()
        assert sorted(result["a"]) == [1, 3]
        assert result["b"] == [2]


class TestDistinct:
    def test_removes_duplicates(self, ctx):
        data = [1, 2, 2, 3, 3, 3]
        assert sorted(ctx.parallelize(data, 3).distinct().collect()) == [1, 2, 3]

    def test_distinct_on_unique_data(self, ctx):
        assert ctx.parallelize(range(10), 4).distinct().count() == 10


class TestJoins:
    def test_inner_join(self, ctx):
        left = ctx.parallelize([("a", 1), ("b", 2), ("c", 3)], 2)
        right = ctx.parallelize([("a", "x"), ("b", "y"), ("d", "z")], 2)
        joined = left.join(right).collect_as_map()
        assert joined == {"a": (1, "x"), "b": (2, "y")}

    def test_join_many_to_many(self, ctx):
        left = ctx.parallelize([("k", 1), ("k", 2)], 1)
        right = ctx.parallelize([("k", "a"), ("k", "b")], 1)
        joined = sorted(left.join(right).values().collect())
        assert joined == [(1, "a"), (1, "b"), (2, "a"), (2, "b")]

    def test_left_outer_join(self, ctx):
        left = ctx.parallelize([("a", 1), ("b", 2)], 2)
        right = ctx.parallelize([("a", "x")], 1)
        joined = left.left_outer_join(right).collect_as_map()
        assert joined == {"a": (1, "x"), "b": (2, None)}

    def test_right_outer_join(self, ctx):
        left = ctx.parallelize([("a", 1)], 1)
        right = ctx.parallelize([("a", "x"), ("b", "y")], 2)
        joined = left.right_outer_join(right).collect_as_map()
        assert joined == {"a": (1, "x"), "b": (None, "y")}

    def test_full_outer_join(self, ctx):
        left = ctx.parallelize([("a", 1), ("b", 2)], 2)
        right = ctx.parallelize([("b", "y"), ("c", "z")], 2)
        joined = left.full_outer_join(right).collect_as_map()
        assert joined == {"a": (1, None), "b": (2, "y"), "c": (None, "z")}

    def test_outer_joins_agree_with_inner_on_shared_keys(self, ctx):
        left = ctx.parallelize([(i, i) for i in range(10)], 3)
        right = ctx.parallelize([(i, -i) for i in range(5, 15)], 3)
        inner = left.join(right).collect_as_map()
        full = left.full_outer_join(right).collect_as_map()
        for key, pair in inner.items():
            assert full[key] == pair
        assert len(full) == 15

    def test_cogroup(self, ctx):
        left = ctx.parallelize([("a", 1), ("a", 2)], 2)
        right = ctx.parallelize([("a", "x"), ("b", "y")], 2)
        grouped = left.cogroup(right).collect_as_map()
        assert sorted(grouped["a"][0]) == [1, 2]
        assert grouped["a"][1] == ["x"]
        assert grouped["b"] == ([], ["y"])


class TestSortBy:
    def test_ascending_global_order(self, ctx):
        data = [5, 1, 9, 3, 7, 2, 8]
        assert ctx.parallelize(data, 3).sort_by(lambda x: x).collect() == sorted(data)

    def test_descending(self, ctx):
        data = [5, 1, 9, 3]
        result = ctx.parallelize(data, 2).sort_by(lambda x: x, ascending=False).collect()
        assert result == sorted(data, reverse=True)

    def test_sort_by_derived_key(self, ctx):
        words = ["ccc", "a", "bb"]
        assert ctx.parallelize(words, 2).sort_by(len).collect() == ["a", "bb", "ccc"]

    def test_sort_with_duplicates(self, ctx):
        data = [3, 1, 3, 1, 2]
        assert ctx.parallelize(data, 3).sort_by(lambda x: x).collect() == sorted(data)

    def test_sort_empty(self, ctx):
        assert ctx.parallelize([], 2).sort_by(lambda x: x).collect() == []

    def test_sort_single_partition_output(self, ctx):
        data = [4, 2, 6]
        result = ctx.parallelize(data, 3).sort_by(lambda x: x, num_partitions=1)
        assert result.num_partitions == 1
        assert result.collect() == [2, 4, 6]


class TestRepartition:
    def test_preserves_records(self, ctx):
        ds = ctx.parallelize(range(20), 2).repartition(5)
        assert ds.num_partitions == 5
        assert sorted(ds.collect()) == list(range(20))

    def test_balances_load(self, ctx):
        ds = ctx.parallelize(range(100), 1).repartition(4)
        sizes = [len(p) for p in ds.collect_partitions()]
        assert max(sizes) - min(sizes) <= 1

    def test_invalid_count(self, ctx):
        with pytest.raises(ValueError):
            ctx.parallelize([1]).repartition(0)


class TestChainedShuffles:
    def test_two_stage_pipeline(self, ctx):
        # word-count then filter then re-aggregate — two shuffles.
        words = ["a b a", "c b", "a c c"]
        counts = (
            ctx.parallelize(words, 2)
            .flat_map(str.split)
            .map(lambda w: (w, 1))
            .reduce_by_key(lambda x, y: x + y)
        )
        big = counts.filter(lambda kv: kv[1] >= 2).map(lambda kv: (kv[1], [kv[0]]))
        regrouped = big.reduce_by_key(lambda a, b: sorted(a + b)).collect_as_map()
        assert regrouped == {3: ["a", "c"], 2: ["b"]}

    def test_shuffle_reuse_across_jobs(self, ctx):
        pairs = ctx.parallelize([(i % 3, 1) for i in range(9)], 3)
        reduced = pairs.reduce_by_key(lambda a, b: a + b)
        assert reduced.count() == 3
        maps_after_first = ctx.metrics.map_tasks
        assert reduced.collect_as_map() == {0: 3, 1: 3, 2: 3}
        # The shuffle was materialized once; the second job reuses it.
        assert ctx.metrics.map_tasks == maps_after_first

"""A threaded TCP JSON-lines server and matching client.

One JSON request per line in, one JSON response per line out. The
server wraps the in-process :class:`VeloxClient` dispatcher, so wire
behaviour matches in-process behaviour exactly. Intended for the
examples and integration tests, not as a hardened production server.
"""

from __future__ import annotations

import socket
import socketserver
import threading

from repro.common.errors import ValidationError
from repro.frontend.api import (
    ApiResponse,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)
from repro.frontend.client import VeloxClient


class _RequestHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        """Serve JSON-line requests until the client disconnects.

        Every failure — malformed JSON, validation, or an unexpected
        error out of dispatch — becomes an error envelope on the same
        connection; the line protocol keeps serving, never dying with a
        half-open socket and no response.
        """
        client: VeloxClient = self.server.velox_client
        for raw in self.rfile:
            line = raw.decode("utf-8").strip()
            if not line:
                continue
            try:
                request = decode_request(line)
                response = client.dispatch(request)
            except ValidationError as err:
                response = ApiResponse(ok=False, error=str(err))
            except Exception as err:  # keep the connection alive
                response = ApiResponse(
                    ok=False, error=f"{type(err).__name__}: {err}"
                )
            self.wfile.write((encode_response(response) + "\n").encode("utf-8"))
            self.wfile.flush()


class _ThreadedTcpServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class VeloxServer:
    """Serves a Velox deployment on a TCP port.

    Usage::

        server = VeloxServer(velox, port=0)   # 0 = ephemeral port
        server.start()
        ... RemoteClient("127.0.0.1", server.port) ...
        server.stop()

    With ``engine`` set to a :class:`~repro.serving.ServingEngine`,
    predict/top-k requests are enqueued through the serving engine
    (adaptive batching across connections, admission control, load
    shedding) instead of dispatched inline on the connection thread; the
    engine's lifecycle follows the server's.
    """

    def __init__(
        self, velox, host: str = "127.0.0.1", port: int = 0, engine=None
    ):
        self._server = _ThreadedTcpServer((host, port), _RequestHandler)
        self._server.velox_client = VeloxClient(velox, engine=engine)
        self._engine = engine
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        """Bound host address."""
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        """Bound port (useful with port 0 / ephemeral binding)."""
        return self._server.server_address[1]

    def start(self) -> "VeloxServer":
        """Start serving on a background thread; returns self.

        An attached serving engine that is not yet running is started
        alongside the listener.
        """
        if self._thread is not None:
            raise ValidationError("server already started")
        if self._engine is not None and not self._engine.running:
            self._engine.start()
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="velox-server", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down (and any attached engine), join threads."""
        if self._thread is None:
            return
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5)
        self._thread = None
        if self._engine is not None:
            self._engine.stop()

    def __enter__(self) -> "VeloxServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


class RemoteClient:
    """Socket client speaking the JSON-lines protocol."""

    def __init__(self, host: str, port: int, timeout: float = 10.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("r", encoding="utf-8")
        self._writer = self._sock.makefile("w", encoding="utf-8")

    def call(self, request) -> ApiResponse:
        """Send one request and block for its response."""
        self._writer.write(encode_request(request) + "\n")
        self._writer.flush()
        line = self._reader.readline()
        if not line:
            raise ValidationError("server closed the connection")
        return decode_response(line)

    def close(self) -> None:
        """Close the socket and its file wrappers."""
        self._reader.close()
        self._writer.close()
        self._sock.close()

    def __enter__(self) -> "RemoteClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

"""The MV catalog: every rollup maintained over one observation log.

One :class:`MVCatalog` owns the standard trio of views — per-user,
per-item, per-time-window — for one model's observation log. Each view
is wired to the log through an append listener registered with
``replay=True``, so a catalog attached to a non-empty log backfills
atomically and then stays current: maintenance runs inline with every
append, under the log lock, in offset order. The marginal cost per
``observe`` is three dict upserts, which is what keeps MV answers
exact (watermark W == fold of ``log[0:W)``) without a maintenance
daemon or a staleness window.

Maintenance time is metered per view application so the status endpoint
can report what the analytics tier costs the write path.
"""

from __future__ import annotations

import time

from repro.analytics.views import ItemRollup, RollupView, UserRollup, WindowRollup
from repro.common.errors import ValidationError
from repro.store.oblog import ObservationLog

#: Tumbling-window width (in timestamp units) used when none is given.
DEFAULT_WINDOW_WIDTH = 100


class MVCatalog:
    """The materialized views maintained over one observation log."""

    def __init__(
        self,
        name: str,
        log: ObservationLog,
        window_width: int = DEFAULT_WINDOW_WIDTH,
        metrics=None,
    ):
        self.name = name
        self.log = log
        self.window_width = int(window_width)
        self.metrics = metrics
        self.views: dict[str, RollupView] = {}
        self.register(UserRollup())
        self.register(ItemRollup())
        self.register(WindowRollup(self.window_width))

    def register(self, view: RollupView) -> RollupView:
        """Add a view and subscribe it to the log's append stream.

        Registration replays the existing log through the view first
        (atomically with the subscription), so a view added against a
        non-empty log starts at the live watermark with exact state.
        """
        if view.name in self.views:
            raise ValidationError(
                f"catalog {self.name!r} already has a view named {view.name!r}"
            )
        self.views[view.name] = view
        metrics = self.metrics

        def maintain(offset: int, observation) -> None:
            started = time.perf_counter()
            view.apply(offset, observation)
            if metrics is not None:
                metrics.record_maintenance(time.perf_counter() - started)

        self.log.add_listener(maintain, replay=True)
        return view

    def view(self, name: str) -> RollupView:
        """Look up a registered view by name."""
        try:
            return self.views[name]
        except KeyError:
            raise ValidationError(
                f"catalog {self.name!r} has no view named {name!r}"
            ) from None

    def staleness_records(self) -> int:
        """How many records the laggiest view is behind the live log.

        Always 0 between appends with inline maintenance; nonzero only
        mid-append (observed from another thread) or if maintenance is
        ever moved off the append path.
        """
        length = len(self.log)
        return max(
            (length - view.high_watermark for view in self.views.values()),
            default=0,
        )

    def describe(self) -> dict:
        """Status-endpoint summary: per-view watermark and key count."""
        return {
            "log": self.name,
            "window_width": self.window_width,
            "staleness_records": self.staleness_records(),
            "views": {
                name: {
                    "high_watermark": view.high_watermark,
                    "key_count": view.key_count,
                }
                for name, view in self.views.items()
            },
        }

"""Journal: append ordering, replay, compaction rules."""

import pytest

from repro.store.journal import Journal, JournalOp


class TestAppendAndReplay:
    def test_sequences_are_dense(self):
        journal = Journal()
        records = [journal.append(JournalOp.PUT, i, i, 1) for i in range(5)]
        assert [r.sequence for r in records] == [0, 1, 2, 3, 4]

    def test_replay_all(self):
        journal = Journal()
        journal.append(JournalOp.PUT, "a", 1, 1)
        journal.append(JournalOp.DELETE, "a", None, 0)
        ops = [r.op for r in journal.replay()]
        assert ops == [JournalOp.PUT, JournalOp.DELETE]

    def test_replay_from_offset(self):
        journal = Journal()
        for i in range(5):
            journal.append(JournalOp.PUT, i, i, 1)
        assert [r.key for r in journal.replay(3)] == [3, 4]

    def test_replay_from_end_is_empty(self):
        journal = Journal()
        journal.append(JournalOp.PUT, "a", 1, 1)
        assert list(journal.replay(1)) == []

    def test_len_counts_all_ever_appended(self):
        journal = Journal()
        for i in range(4):
            journal.append(JournalOp.PUT, i, i, 1)
        assert len(journal) == 4


class TestCompaction:
    def test_compact_drops_prefix(self):
        journal = Journal()
        for i in range(6):
            journal.append(JournalOp.PUT, i, i, 1)
        dropped = journal.compact(4)
        assert dropped == 4
        assert [r.key for r in journal.replay(4)] == [4, 5]

    def test_replay_before_compaction_horizon_fails(self):
        journal = Journal()
        for i in range(4):
            journal.append(JournalOp.PUT, i, i, 1)
        journal.compact(2)
        with pytest.raises(ValueError):
            list(journal.replay(0))

    def test_compact_beyond_end_rejected(self):
        journal = Journal()
        journal.append(JournalOp.PUT, 0, 0, 1)
        with pytest.raises(ValueError):
            journal.compact(5)

    def test_compact_idempotent(self):
        journal = Journal()
        for i in range(4):
            journal.append(JournalOp.PUT, i, i, 1)
        journal.compact(2)
        assert journal.compact(2) == 0

    def test_sequences_continue_after_compaction(self):
        journal = Journal()
        for i in range(3):
            journal.append(JournalOp.PUT, i, i, 1)
        journal.compact(3)
        record = journal.append(JournalOp.PUT, "x", 1, 1)
        assert record.sequence == 3
        assert len(journal) == 4


class TestCompactReplayInteraction:
    """replay(start) against a compacted journal must either resume
    cleanly (start at or past the horizon) or raise — never silently
    skip records the caller thinks it is getting."""

    def test_replay_from_exact_horizon_resumes_cleanly(self):
        journal = Journal()
        for i in range(6):
            journal.append(JournalOp.PUT, i, i, 1)
        journal.compact(3)
        records = list(journal.replay(3))
        assert [r.sequence for r in records] == [3, 4, 5]
        assert [r.key for r in records] == [3, 4, 5]

    def test_replay_one_before_horizon_raises(self):
        journal = Journal()
        for i in range(6):
            journal.append(JournalOp.PUT, i, i, 1)
        journal.compact(3)
        with pytest.raises(ValueError):
            list(journal.replay(2))

    def test_replayed_sequences_are_gapless_after_compaction(self):
        journal = Journal()
        for i in range(8):
            journal.append(JournalOp.PUT, i, i, 1)
        journal.compact(5)
        sequences = [r.sequence for r in journal.replay(5)]
        assert sequences == list(range(5, 8))

    def test_replay_from_head_of_compacted_journal_is_empty(self):
        """start == next_sequence is a clean no-op, not an error — the
        replication shipper polls this constantly."""
        journal = Journal()
        for i in range(4):
            journal.append(JournalOp.PUT, i, i, 1)
        journal.compact(4)
        assert list(journal.replay(4)) == []

    def test_append_after_compact_then_replay_from_horizon(self):
        journal = Journal()
        for i in range(3):
            journal.append(JournalOp.PUT, i, i, 1)
        journal.compact(3)
        journal.append(JournalOp.PUT, "late", 9, 1)
        records = list(journal.replay(3))
        assert [(r.sequence, r.key) for r in records] == [(3, "late")]

    def test_repeated_compaction_moves_the_raise_boundary(self):
        journal = Journal()
        for i in range(10):
            journal.append(JournalOp.PUT, i, i, 1)
        journal.compact(4)
        journal.compact(7)
        with pytest.raises(ValueError):
            list(journal.replay(6))
        assert [r.key for r in journal.replay(7)] == [7, 8, 9]

    def test_error_fires_even_for_lazy_iteration(self):
        """The generator must not defer the horizon check past the point
        where a caller could mistake it for an empty journal."""
        journal = Journal()
        for i in range(4):
            journal.append(JournalOp.PUT, i, i, 1)
        journal.compact(2)
        iterator = journal.replay(0)
        with pytest.raises(ValueError):
            next(iterator)

"""Network model: cost accounting, locality stats, virtual time."""

import pytest

from repro.cluster import NetworkModel
from repro.common.clock import SimulatedClock


class TestAccessAccounting:
    def test_local_access_is_free(self):
        net = NetworkModel(hop_latency=1e-3)
        assert net.access(0, 0, 1024) == 0.0
        assert net.stats.local_accesses == 1
        assert net.stats.remote_accesses == 0

    def test_remote_access_charged(self):
        net = NetworkModel(hop_latency=1e-3, bandwidth=1e6)
        cost = net.access(0, 1, 1000)
        assert cost == pytest.approx(1e-3 + 1e-3)
        assert net.stats.remote_accesses == 1
        assert net.stats.bytes_transferred == 1000

    def test_clock_advances_on_remote_access(self):
        clock = SimulatedClock()
        net = NetworkModel(hop_latency=2e-3, bandwidth=1e9, clock=clock)
        net.access(0, 1, 0)
        assert clock.now() == pytest.approx(2e-3)

    def test_transfer_cost_formula(self):
        net = NetworkModel(hop_latency=0.5e-3, bandwidth=1e9)
        assert net.transfer_cost(8_000_000) == pytest.approx(0.5e-3 + 0.008)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel().transfer_cost(-1)


class TestLocalityStats:
    def test_locality_rate(self):
        net = NetworkModel()
        net.access(0, 0, 10)
        net.access(0, 0, 10)
        net.access(0, 1, 10)
        assert net.stats.locality_rate == pytest.approx(2 / 3)

    def test_locality_rate_idle(self):
        assert NetworkModel().stats.locality_rate == 1.0

    def test_reset(self):
        net = NetworkModel()
        net.access(0, 1, 100)
        net.stats.reset()
        assert net.stats.total_accesses == 0
        assert net.stats.modeled_latency == 0.0


class TestValidation:
    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel(hop_latency=-1)

    def test_nonpositive_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel(bandwidth=0)

"""A larger end-to-end scale smoke: everything at 10x the unit-test size.

One test, deliberately heavier (~15-25s): a MovieLens-shaped corpus, a
full train → deploy → heavy mixed traffic → staleness-driven retrain →
shadow-checked candidate run, across an 8-node cluster with the
threaded batch scheduler. Guards against regressions that only appear
at scale (quadratic loops, per-request allocations, cache thrash).
"""

import numpy as np
import pytest

from repro import Velox, VeloxConfig
from repro.batch import BatchContext
from repro.core.models import MatrixFactorizationModel
from repro.core.offline import als_train
from repro.data import SynthLensConfig, generate_synthlens, paper_protocol_split
from repro.metrics import rmse
from repro.store import Observation
from repro.workloads import ObserveRequest, ZipfItemSampler, generate_request_stream


@pytest.fixture(scope="module")
def big_deployment():
    lens = generate_synthlens(
        SynthLensConfig(
            num_users=600,
            num_items=400,
            rank=10,
            ratings_per_user_mean=45.0,
            min_ratings_per_user=24,
            zipf_exponent=0.9,
            seed=77,
        )
    )
    split = paper_protocol_split(lens.ratings)
    ctx = BatchContext(default_parallelism=6)
    als = als_train(
        ctx,
        [(r.uid, r.item_id, r.rating) for r in split.init],
        rank=10,
        num_items=lens.num_items,
        num_iterations=6,
    )
    model = MatrixFactorizationModel(
        "songs", als.item_factors, als.item_bias, als.global_mean
    )
    weights = {
        uid: model.pack_user_weights(als.user_factors[uid], als.user_bias[uid])
        for uid in als.user_factors
    }
    velox = Velox.deploy(
        VeloxConfig(num_nodes=8), batch_parallelism=6, auto_retrain=False
    )
    velox.add_model(
        model,
        initial_user_weights=weights,
        seed_observations=[
            Observation(r.uid, r.item_id, r.rating, item_data=r.item_id)
            for r in split.init
        ],
    )
    return velox, lens, split


class TestScale:
    def test_full_lifecycle_at_scale(self, big_deployment):
        velox, lens, split = big_deployment
        truth = [r.rating for r in split.holdout]

        def holdout_rmse():
            return rmse(
                truth,
                [velox.predict(None, r.uid, r.item_id)[1] for r in split.holdout],
            )

        baseline = holdout_rmse()

        # Heavy mixed traffic: 20k predicts + the full stream as observes.
        sampler = ZipfItemSampler(lens.num_items, 0.9, rng=1)
        traffic = generate_request_stream(
            20_000, lens.num_users, sampler, observe_fraction=0.0, rng=2
        )
        for request in traffic:
            __, score = velox.predict(None, request.uid, request.item_id)
            assert np.isfinite(score)
        for r in split.stream:
            velox.observe(uid=r.uid, x=r.item_id, y=r.rating)

        online = holdout_rmse()
        assert online < baseline

        # Zipf traffic should make the feature caches genuinely hot.
        stats = velox.service.cache_stats()
        hit_rate = stats["feature_hits"] / (
            stats["feature_hits"] + stats["feature_misses"]
        )
        assert hit_rate > 0.6

        # Retrain on ~ >30k logged observations via the threaded scheduler.
        event = velox.retrain(reason="scale test")
        retrained = holdout_rmse()
        assert retrained < baseline
        assert event.observations_used > 20_000

        # Routing stayed local for user traffic across all 8 nodes.
        loads = [n.stats.requests_served for n in velox.cluster.nodes]
        assert min(loads) > 0
        assert max(loads) < 2.0 * (sum(loads) / len(loads))

        # Catalog-wide indexed topK at scale.
        top = velox.top_k_catalog(None, uid=11, k=20)
        assert len(top) == 20
        scores = [s for __i, s in top]
        assert scores == sorted(scores, reverse=True)


class TestHundredThousandUsers:
    """Bulk-install 100k users into the columnar slab store and serve
    from it: flat per-user memory, correct point/batch reads."""

    NUM_USERS = 100_000
    RANK = 10

    def test_bulk_deploy_and_serve_100k_users(self):
        rng = np.random.default_rng(9)
        model = MatrixFactorizationModel(
            "mf100k",
            item_factors=rng.normal(size=(200, self.RANK)),
            item_bias=rng.normal(size=200) * 0.1,
            global_mean=3.4,
        )
        ids = np.arange(self.NUM_USERS, dtype=np.int64)
        matrix = rng.normal(size=(self.NUM_USERS, model.dimension))
        from repro.store import ArrayMapping

        velox = Velox.deploy(VeloxConfig(num_nodes=8), auto_retrain=False)
        velox.add_model(model, initial_user_weights=ArrayMapping(ids, matrix))

        table = velox.manager.user_state_table("mf100k")
        exported = table.export_weight_matrix()
        assert len(exported) == self.NUM_USERS

        # Columnar storage: per-user bytes stay near rank * 8, not the
        # ~1KB a dict of boxed state objects costs.
        per_user = table.memory_bytes() / self.NUM_USERS
        assert per_user < 512

        # Point reads serve the installed rows exactly.
        for uid in rng.integers(self.NUM_USERS, size=20):
            read = table.read_weights(int(uid))
            np.testing.assert_array_equal(read.weights, matrix[uid])

        # Batch reads gather the same rows in one fancy-index pass.
        sample = [int(u) for u in rng.integers(self.NUM_USERS, size=500)]
        batch = table.read_weights_batch(sample)
        assert set(batch) == set(sample)
        for uid in sample:
            np.testing.assert_array_equal(batch[uid].weights, matrix[uid])

        # And the serving path scores finite predictions end to end.
        for uid in (0, 1, self.NUM_USERS - 1):
            __, score = velox.predict(None, uid, int(rng.integers(200)))
            assert np.isfinite(score)
        velox.shutdown()

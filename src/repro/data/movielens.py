"""Loader for the real MovieLens ratings format.

The paper evaluates on MovieLens10M. This environment cannot download
it, so the benchmarks run on SynthLens — but a user who *has* the
GroupLens files can reproduce the experiments on the genuine data:

    lens = load_movielens("ml-10M100K/ratings.dat")
    split = paper_protocol_split(lens.ratings)

Supports both GroupLens layouts: the ``::``-separated ``ratings.dat``
of ML-1M/10M and the CSV ``ratings.csv`` of ML-20M/25M (header
auto-detected). User and movie ids are remapped to dense 0-based ids
(the rest of the library indexes items densely); timestamps are
preserved as ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.common.errors import ValidationError
from repro.data.synthlens import Rating


@dataclass(frozen=True)
class MovieLensCorpus:
    """Ratings plus the id remappings back to GroupLens ids."""

    ratings: list[Rating]
    num_users: int
    num_items: int
    user_ids: dict[int, int]  # original -> dense
    movie_ids: dict[int, int]  # original -> dense


def _parse_line(line: str, separator: str) -> tuple[int, int, float, float]:
    parts = line.strip().split(separator)
    if len(parts) < 4:
        raise ValidationError(f"malformed ratings line: {line!r}")
    return int(parts[0]), int(parts[1]), float(parts[2]), float(parts[3])


def load_movielens(
    path: str | Path,
    max_ratings: int | None = None,
    min_ratings_per_user: int = 1,
) -> MovieLensCorpus:
    """Parse a GroupLens ratings file into library-native ratings.

    Args:
        path: ``ratings.dat`` (``::`` separated) or ``ratings.csv``.
        max_ratings: Optional cap (reads the file head) for subsampled
            experiments.
        min_ratings_per_user: Drop users with fewer ratings than this
            (the paper's protocol needs enough per-user history).
    """
    file_path = Path(path)
    if not file_path.exists():
        raise ValidationError(f"no ratings file at {file_path}")
    separator = "::" if file_path.suffix == ".dat" else ","

    raw: list[tuple[int, int, float, float]] = []
    with open(file_path, encoding="utf-8") as handle:
        for index, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            if index == 0 and separator == "," and line.lower().startswith("userid"):
                continue  # CSV header
            raw.append(_parse_line(line, separator))
            if max_ratings is not None and len(raw) >= max_ratings:
                break
    if not raw:
        raise ValidationError(f"{file_path} contains no ratings")

    # Filter thin users, then densify ids in first-seen order.
    if min_ratings_per_user > 1:
        counts: dict[int, int] = {}
        for user, __m, __r, __t in raw:
            counts[user] = counts.get(user, 0) + 1
        raw = [row for row in raw if counts[row[0]] >= min_ratings_per_user]
        if not raw:
            raise ValidationError(
                f"no users have >= {min_ratings_per_user} ratings"
            )

    user_ids: dict[int, int] = {}
    movie_ids: dict[int, int] = {}
    # Sort by timestamp so Rating.timestamp ordering matches real time.
    raw.sort(key=lambda row: row[3])
    ratings = []
    for order, (user, movie, value, __timestamp) in enumerate(raw):
        uid = user_ids.setdefault(user, len(user_ids))
        item = movie_ids.setdefault(movie, len(movie_ids))
        if not 0.0 < value <= 5.0:
            raise ValidationError(f"rating {value} outside (0, 5]")
        ratings.append(Rating(uid, item, value, float(order)))

    return MovieLensCorpus(
        ratings=ratings,
        num_users=len(user_ids),
        num_items=len(movie_ids),
        user_ids=user_ids,
        movie_ids=movie_ids,
    )

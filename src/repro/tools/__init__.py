"""Operational tooling: install self-check and deployment reporting CLI."""

"""Partition: versioned mutations, failure, snapshot + journal recovery."""

import pytest

from repro.common.errors import PartitionError
from repro.store import Partition


class TestMutations:
    def test_put_returns_incrementing_versions(self):
        part = Partition(0)
        assert part.put("k", "v1") == 1
        assert part.put("k", "v2") == 2

    def test_get_returns_value_and_version(self):
        part = Partition(0)
        part.put("k", "v")
        assert part.get("k") == ("v", 1)

    def test_get_absent_returns_none(self):
        assert Partition(0).get("k") is None

    def test_delete_and_reinsert_restarts_version(self):
        part = Partition(0)
        part.put("k", "v")
        assert part.delete("k") is True
        assert part.put("k", "v2") == 1

    def test_delete_absent_returns_false(self):
        assert Partition(0).delete("k") is False

    def test_truncate_clears(self):
        part = Partition(0)
        for i in range(3):
            part.put(i, i)
        part.truncate()
        assert len(part) == 0

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            Partition(-1)


class TestFailureAndRecovery:
    def test_failed_partition_rejects_access(self):
        part = Partition(0)
        part.put("k", "v")
        part.fail()
        with pytest.raises(PartitionError):
            part.get("k")
        with pytest.raises(PartitionError):
            part.put("k", "v2")

    def test_recover_replays_journal_from_scratch(self):
        part = Partition(0)
        part.put("a", 1)
        part.put("b", 2)
        part.delete("a")
        part.put("b", 3)
        part.fail()
        replayed = part.recover()
        assert replayed == 4
        assert part.get("a") is None
        assert part.get("b") == (3, 2)

    def test_recover_with_snapshot_replays_suffix_only(self):
        part = Partition(0)
        for i in range(10):
            part.put(i, i)
        part.snapshot()
        part.put("post", 1)
        part.fail()
        replayed = part.recover()
        assert replayed == 1  # only the post-snapshot record
        assert part.get(5) == (5, 1)
        assert part.get("post") == (1, 1)

    def test_recover_preserves_versions(self):
        part = Partition(0)
        part.put("k", "v1")
        part.put("k", "v2")
        part.fail()
        part.recover()
        assert part.get("k") == ("v2", 2)
        assert part.put("k", "v3") == 3

    def test_recover_after_truncate(self):
        part = Partition(0)
        part.put("a", 1)
        part.truncate()
        part.put("b", 2)
        part.fail()
        part.recover()
        assert part.get("a") is None
        assert part.get("b") == (2, 1)

    def test_recover_healthy_partition_is_idempotent(self):
        part = Partition(0)
        part.put("a", 1)
        part.recover()
        assert part.get("a") == (1, 1)

    def test_snapshot_compacts_journal(self):
        part = Partition(0)
        for i in range(5):
            part.put(i, i)
        before = part.journal_length
        part.snapshot()
        part.put("x", 1)
        part.fail()
        part.recover()
        assert len(part) == 6
        assert part.journal_length == before + 1

"""Request-stream generation: Zipf item sampling and serving mixes."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ValidationError
from repro.common.rng import as_generator


class ZipfItemSampler:
    """Samples item ids with Zipf(s) popularity over a fixed catalog.

    ``exponent=0`` degenerates to uniform sampling — the unskewed
    baseline for the cache-skew ablation. Popularity rank order is
    shuffled by seed so item id does not encode popularity.
    """

    def __init__(
        self,
        num_items: int,
        exponent: float,
        rng: np.random.Generator | int | None = None,
    ):
        if num_items < 1:
            raise ValidationError(f"num_items must be >= 1, got {num_items}")
        if exponent < 0:
            raise ValidationError(f"exponent must be >= 0, got {exponent}")
        self.num_items = num_items
        self.exponent = exponent
        self._rng = as_generator(rng)
        ranks = np.arange(1, num_items + 1, dtype=float)
        weights = ranks ** (-exponent) if exponent > 0 else np.ones(num_items)
        weights /= weights.sum()
        self._weights = weights[self._rng.permutation(num_items)]

    def sample(self, size: int | None = None):
        """One item id (``size=None``) or an array of ids."""
        if size is None:
            return int(self._rng.choice(self.num_items, p=self._weights))
        return self._rng.choice(self.num_items, size=size, p=self._weights)

    def sample_distinct(self, size: int) -> list[int]:
        """``size`` distinct item ids, popularity-weighted."""
        if size > self.num_items:
            raise ValidationError(
                f"cannot sample {size} distinct items from {self.num_items}"
            )
        return [
            int(i)
            for i in self._rng.choice(
                self.num_items, size=size, replace=False, p=self._weights
            )
        ]


@dataclass(frozen=True)
class PredictRequest:
    """One point-prediction request."""
    uid: int
    item_id: int


@dataclass(frozen=True)
class TopKRequest:
    """One topK request over a fixed itemset."""
    uid: int
    item_ids: tuple[int, ...]
    k: int = 1


@dataclass(frozen=True)
class ObserveRequest:
    """One labelled observation request."""
    uid: int
    item_id: int
    label: float


RequestStream = list  # a list of the request dataclasses above


def generate_request_stream(
    num_requests: int,
    num_users: int,
    item_sampler: ZipfItemSampler,
    observe_fraction: float = 0.1,
    label_fn=None,
    rng: np.random.Generator | int | None = None,
) -> RequestStream:
    """A mixed predict/observe stream with uniformly random users.

    ``label_fn(uid, item_id) -> float`` supplies observation labels; by
    default labels are drawn uniform in [1, 5].
    """
    if num_requests < 0:
        raise ValidationError(f"num_requests must be >= 0, got {num_requests}")
    if num_users < 1:
        raise ValidationError(f"num_users must be >= 1, got {num_users}")
    if not 0.0 <= observe_fraction <= 1.0:
        raise ValidationError(
            f"observe_fraction must be in [0, 1], got {observe_fraction}"
        )
    generator = as_generator(rng)
    stream: RequestStream = []
    for _ in range(num_requests):
        uid = int(generator.integers(num_users))
        item_id = item_sampler.sample()
        if generator.random() < observe_fraction:
            if label_fn is not None:
                label = float(label_fn(uid, item_id))
            else:
                label = float(generator.uniform(1.0, 5.0))
            stream.append(ObserveRequest(uid, item_id, label))
        else:
            stream.append(PredictRequest(uid, item_id))
    return stream


def generate_drifting_stream(
    num_users: int,
    item_sampler: ZipfItemSampler,
    phases: list[tuple[int, object]],
    rng: np.random.Generator | int | None = None,
) -> list[ObserveRequest]:
    """A labelled observation stream whose concept drifts in phases.

    ``phases`` is a list of ``(count, label_fn)`` segments: the stream
    emits ``count`` observations labelled by that phase's
    ``label_fn(uid, item_id)``, then moves to the next phase. This is
    the workload shape behind the paper's staleness story (a model
    trained on phase 1 degrades on phase 2, which the manager's
    staleness detector must catch).
    """
    if num_users < 1:
        raise ValidationError(f"num_users must be >= 1, got {num_users}")
    if not phases:
        raise ValidationError("need at least one phase")
    generator = as_generator(rng)
    stream: list[ObserveRequest] = []
    for count, label_fn in phases:
        if count < 0:
            raise ValidationError(f"phase count must be >= 0, got {count}")
        if not callable(label_fn):
            raise ValidationError("phase label_fn must be callable")
        for __ in range(count):
            uid = int(generator.integers(num_users))
            item_id = item_sampler.sample()
            stream.append(
                ObserveRequest(uid, item_id, float(label_fn(uid, item_id)))
            )
    return stream


def generate_topk_batches(
    num_batches: int,
    itemset_size: int,
    num_users: int,
    item_sampler: ZipfItemSampler,
    k: int = 1,
    rng: np.random.Generator | int | None = None,
) -> list[TopKRequest]:
    """Figure 4's workload: topK queries over random itemsets."""
    if num_batches < 0:
        raise ValidationError(f"num_batches must be >= 0, got {num_batches}")
    if itemset_size < 1:
        raise ValidationError(f"itemset_size must be >= 1, got {itemset_size}")
    generator = as_generator(rng)
    batches = []
    for _ in range(num_batches):
        uid = int(generator.integers(num_users))
        items = tuple(item_sampler.sample_distinct(itemset_size))
        batches.append(TopKRequest(uid=uid, item_ids=items, k=k))
    return batches

"""Property-based tests (hypothesis) on core data structures and algebra."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import BatchContext
from repro.common.rng import stable_hash
from repro.core.online import (
    NormalEquationsUpdater,
    ShermanMorrisonUpdater,
    UserModelState,
)
from repro.metrics.streaming import StreamingMeanVar
from repro.store import LRUCache, Partition
from repro.cluster.partitioner import HashPartitioner, RangePartitioner


keys = st.one_of(st.integers(-1000, 1000), st.text(max_size=8))
small_floats = st.floats(-100, 100, allow_nan=False, allow_infinity=False)


class TestLruProperties:
    @given(
        capacity=st.integers(1, 8),
        ops=st.lists(st.tuples(keys, st.integers()), max_size=60),
    )
    @settings(max_examples=60, deadline=None)
    def test_never_exceeds_capacity_and_serves_latest(self, capacity, ops):
        cache = LRUCache(capacity)
        latest = {}
        for key, value in ops:
            cache.put(key, value)
            latest[key] = value
        assert len(cache) <= capacity
        # whatever is cached must be the latest written value
        for key in cache.keys():
            assert cache.peek(key) == latest[key]

    @given(ops=st.lists(st.tuples(keys, st.integers()), min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_unbounded_cache_is_a_dict(self, ops):
        cache = LRUCache(10_000)
        expected = {}
        for key, value in ops:
            cache.put(key, value)
            expected[key] = value
        assert dict(cache.items()) == expected


class TestJournalRecoveryProperty:
    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(["put", "delete"]), keys, st.integers()),
            max_size=50,
        ),
        snapshot_at=st.integers(0, 50),
    )
    @settings(max_examples=60, deadline=None)
    def test_fail_recover_reproduces_state(self, ops, snapshot_at):
        """Recovery from snapshot+journal always equals the pre-failure
        state, wherever the snapshot landed in the op stream."""
        partition = Partition(0)
        for index, (op, key, value) in enumerate(ops):
            if index == snapshot_at:
                partition.snapshot()
            if op == "put":
                partition.put(key, value)
            else:
                partition.delete(key)
        expected = dict(partition.items())
        partition.fail()
        partition.recover()
        assert dict(partition.items()) == expected


class TestShermanMorrisonProperty:
    @given(
        dimension=st.integers(1, 6),
        count=st.integers(1, 15),
        lam=st.floats(0.1, 5.0),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_sm_equals_normal_equations(self, dimension, count, lam, seed):
        """The O(d^2) incremental update is algebraically identical to the
        paper's Eq. 2 solve, for any data."""
        rng = np.random.default_rng(seed)
        prior = rng.normal(size=dimension)
        ne_state = UserModelState(dimension, lam, prior.copy())
        sm_state = UserModelState(dimension, lam, prior.copy())
        ne, sm = NormalEquationsUpdater(), ShermanMorrisonUpdater()
        for __ in range(count):
            f = rng.normal(size=dimension)
            y = float(rng.normal())
            ne.update(ne_state, f, y)
            sm.update(sm_state, f, y)
        assert np.allclose(ne_state.weights, sm_state.weights, atol=1e-6)


class TestWelfordProperty:
    @given(st.lists(small_floats, min_size=2, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_matches_numpy(self, values):
        acc = StreamingMeanVar()
        acc.update_many(values)
        assert np.isclose(acc.mean, np.mean(values), atol=1e-8)
        assert np.isclose(acc.variance, np.var(values, ddof=1), atol=1e-6)

    @given(
        left=st.lists(small_floats, min_size=1, max_size=50),
        right=st.lists(small_floats, min_size=1, max_size=50),
    )
    @settings(max_examples=40, deadline=None)
    def test_merge_associativity(self, left, right):
        a, b = StreamingMeanVar(), StreamingMeanVar()
        a.update_many(left)
        b.update_many(right)
        merged = a.merge(b)
        combined = StreamingMeanVar()
        combined.update_many(left + right)
        assert np.isclose(merged.mean, combined.mean, atol=1e-8)
        assert np.isclose(merged.variance, combined.variance, atol=1e-6)


class TestPartitionerProperties:
    @given(st.lists(keys, min_size=1, max_size=100), st.integers(1, 16))
    @settings(max_examples=40, deadline=None)
    def test_hash_partitioner_in_range_and_stable(self, key_list, n):
        partitioner = HashPartitioner(n)
        for key in key_list:
            index = partitioner.partition(key)
            assert 0 <= index < n
            assert index == partitioner.partition(key)

    @given(
        boundaries=st.lists(st.integers(-100, 100), max_size=6).map(sorted),
        probes=st.lists(st.integers(-200, 200), min_size=1, max_size=50),
    )
    @settings(max_examples=40, deadline=None)
    def test_range_partitioner_is_monotone(self, boundaries, probes):
        partitioner = RangePartitioner(boundaries)
        ordered = sorted(probes)
        indices = [partitioner.partition(p) for p in ordered]
        assert indices == sorted(indices)

    @given(st.lists(keys, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_stable_hash_deterministic(self, key_list):
        assert [stable_hash(k) for k in key_list] == [
            stable_hash(k) for k in key_list
        ]


class TestBatchProperties:
    @given(st.lists(st.integers(-50, 50), max_size=60), st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_collect_identity(self, data, partitions):
        ctx = BatchContext(default_parallelism=1)
        assert ctx.parallelize(data, partitions).collect() == data

    @given(st.lists(st.integers(-50, 50), min_size=1, max_size=60), st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_sort_by_sorts(self, data, partitions):
        ctx = BatchContext(default_parallelism=1)
        result = ctx.parallelize(data, partitions).sort_by(lambda x: x).collect()
        assert result == sorted(data)

    @given(
        st.lists(st.tuples(st.integers(0, 5), st.integers(-10, 10)), max_size=60),
        st.integers(1, 5),
    )
    @settings(max_examples=30, deadline=None)
    def test_reduce_by_key_equals_dict_reduce(self, pairs, partitions):
        ctx = BatchContext(default_parallelism=1)
        result = (
            ctx.parallelize(pairs, partitions)
            .reduce_by_key(lambda a, b: a + b)
            .collect_as_map()
        )
        expected = {}
        for key, value in pairs:
            expected[key] = expected.get(key, 0) + value
        assert result == expected


class TestFrontendCodecProperty:
    @given(
        uid=st.integers(0, 10**9),
        item=st.one_of(st.integers(0, 10**6), st.text(max_size=12)),
        label=small_floats,
    )
    @settings(max_examples=50, deadline=None)
    def test_observe_roundtrip(self, uid, item, label):
        from repro.frontend import ObserveApiRequest, decode_request, encode_request

        original = ObserveApiRequest(uid=uid, item=item, label=label)
        decoded = decode_request(encode_request(original))
        assert decoded == original

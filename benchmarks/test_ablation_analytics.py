"""Ablation: MV-routed analytics vs log scans over the observation log.

The analytics tier's claim is architectural: dashboard rollups answered
from incrementally-maintained materialized views cost whatever the
answer *touches* (one key, a few hundred group entries), while the
fallback pays the full log. At 100k+ observations that gap should be
orders of magnitude — and because maintenance runs inline with append,
the routed answers are provably the same numbers the scan would
produce (the integrity replay checks every key).

Three measurements:

* **Routing speedup** — per-query latency of the planner-routed path vs
  ``force_scan=True`` on reporting shapes whose fallback is a full log
  scan (per-item breakdown, windowed range rollup, global scalar). The
  tentpole assertion: >= 10x on at least the two breakdown shapes. The
  user-filtered shape is reported too, but its fallback is the indexed
  per-user scan (itself a PR-9 satellite), so the gap is honest but
  smaller.
* **Integrity** — the MV catalog replayed against the log prefix at its
  own high-watermark must match exactly: every key, every count, zero
  sum drift.
* **Serving interference** — closed-loop predict p99 through the TCP
  front end with a concurrent analytics query stream hammering the same
  node, vs the same loop with analytics idle. MV routing (plus the
  client-side analytics side pool keeping queries off the event-loop
  thread) should hold p99 within 1.3x of baseline.

Set ``ANALYTICS_SMOKE=1`` for the fast CI configuration (smaller log,
fewer repetitions; the assertions are unchanged).
"""

from __future__ import annotations

import os
import pathlib
import threading
import time

import numpy as np

from repro.analytics import AnalyticsQuery
from repro.frontend import AnalyticsApiRequest, PipelinedClient, PredictApiRequest, VeloxServer
from repro.store import Observation
from repro.tools.bench_report import write_json_summary

from conftest import build_mf_serving, write_result

SMOKE = os.environ.get("ANALYTICS_SMOKE", "") not in ("", "0")
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

DIMENSION = 12
NUM_ITEMS = 500
NUM_USERS = 200
NUM_OBSERVATIONS = 12_000 if SMOKE else 120_000
ROUTED_REPS = 20 if SMOKE else 50
SCAN_REPS = 3 if SMOKE else 5
SERVING_REQUESTS = 300 if SMOKE else 1200
#: p99-interference bound: within 1.3x of baseline (+2 ms noise floor).
INTERFERENCE_RATIO = 1.3
INTERFERENCE_SLACK_MS = 2.0
#: Dashboard-style pacing for the concurrent analytics stream (500 qps
#: across the shape mix — far above any human-driven dashboard).
STREAM_INTERVAL_S = 0.002
WARMUP_REQUESTS = 50


def _build() -> tuple:
    """A serving deployment with a 100k+ observation corpus loaded
    straight into the log (canonical ``timestamp = offset`` stamping),
    maintaining every MV inline along the way."""
    velox = build_mf_serving(
        DIMENSION, NUM_ITEMS, num_users=NUM_USERS, num_nodes=1
    )
    log = velox.manager.observation_log("bench")
    rng = np.random.default_rng(17)
    uids = rng.integers(0, NUM_USERS, NUM_OBSERVATIONS)
    items = rng.integers(0, NUM_ITEMS, NUM_OBSERVATIONS)
    labels = rng.normal(3.5, 1.0, NUM_OBSERVATIONS)
    load_start = time.perf_counter()
    for i in range(NUM_OBSERVATIONS):
        log.append(
            Observation(
                uid=int(uids[i]),
                item_id=int(items[i]),
                label=float(labels[i]),
                timestamp=float(len(log)),
            )
        )
    load_s = time.perf_counter() - load_start
    return velox, log, load_s


def _median_latency_ms(run, reps: int) -> float:
    samples = []
    for _ in range(reps):
        start = time.perf_counter()
        run()
        samples.append((time.perf_counter() - start) * 1e3)
    return float(np.median(samples))


def _query_shapes(width: int) -> list[tuple[str, AnalyticsQuery, bool]]:
    """(name, query, counts_toward_10x_claim). The claim shapes are the
    ones whose forced fallback is a *full* log scan."""
    span = (NUM_OBSERVATIONS // (2 * width)) * width  # aligned half-log
    return [
        ("item_mean_breakdown", AnalyticsQuery(group_by="item", agg="mean"), True),
        (
            "window_range_count",
            AnalyticsQuery(
                time_start=0.0, time_end=float(span),
                group_by="window", agg="count",
            ),
            True,
        ),
        ("global_label_sum", AnalyticsQuery(agg="sum"), True),
        ("user_count", AnalyticsQuery(uid=7, agg="count"), False),
    ]


def _measure_routing(velox) -> list[dict]:
    rows = []
    for name, query, claim in _query_shapes(velox.analytics.window_width):
        routed = velox.analytics_query(query)
        scanned = velox.analytics_query(query, force_scan=True)
        routed_ms = _median_latency_ms(
            lambda: velox.analytics_query(query), ROUTED_REPS
        )
        scan_ms = _median_latency_ms(
            lambda: velox.analytics_query(query, force_scan=True), SCAN_REPS
        )
        if query.group_by is None:
            agree = (
                routed.value == scanned.value
                or abs(routed.value - scanned.value)
                <= 1e-9 * max(1.0, abs(scanned.value))
            )
        else:
            agree = routed.groups == scanned.groups
        rows.append(
            {
                "shape": name,
                "route": routed.plan.route,
                "scan_route": scanned.plan.route,
                "routed_ms": routed_ms,
                "scan_ms": scan_ms,
                "speedup": scan_ms / routed_ms if routed_ms > 0 else float("inf"),
                "answers_agree": agree,
                "claim_shape": claim,
            }
        )
    return rows


def _measure_integrity(velox, log) -> dict:
    report = velox.analytics_integrity()
    return {
        "ok": report.ok,
        "log_length": len(log),
        "views": [verdict.payload() for verdict in report.views],
    }


def _predict_p99_ms(server, analytics_stream: bool) -> dict:
    """Closed-loop predict RTTs through the TCP front end; optionally
    with a second connection streaming analytics queries throughout."""
    rng = np.random.default_rng(23)
    uids = rng.integers(0, NUM_USERS, SERVING_REQUESTS)
    items = rng.integers(0, NUM_ITEMS, SERVING_REQUESTS)
    stop = threading.Event()
    analytics_queries = 0
    streamer = None
    if analytics_stream:
        def stream() -> None:
            nonlocal analytics_queries
            # A dashboard-shaped mix: one full per-item breakdown plus
            # scoped lookups (single user, recent window range).
            width = 100
            hi = (NUM_OBSERVATIONS // width) * width
            shapes = [
                AnalyticsApiRequest(group_by="item", agg="mean"),
                AnalyticsApiRequest(uid=3, agg="count"),
                AnalyticsApiRequest(
                    time_start=float(max(0, hi - 10 * width)),
                    time_end=float(hi),
                    group_by="window",
                    agg="sum",
                ),
            ]
            with PipelinedClient(server.host, server.port) as client:
                index = 0
                while not stop.is_set():
                    response = client.call(shapes[index % len(shapes)])
                    assert response.ok, response.error
                    analytics_queries += 1
                    index += 1
                    stop.wait(STREAM_INTERVAL_S)

        streamer = threading.Thread(target=stream, daemon=True)
        streamer.start()
        time.sleep(0.05)  # let the stream reach steady state
    latencies = []
    with PipelinedClient(server.host, server.port) as client:
        for i in range(WARMUP_REQUESTS):
            client.call(PredictApiRequest(uid=int(uids[i]), item=int(items[i])))
        for i in range(SERVING_REQUESTS):
            start = time.perf_counter()
            response = client.call(
                PredictApiRequest(uid=int(uids[i]), item=int(items[i]))
            )
            latencies.append((time.perf_counter() - start) * 1e3)
            assert response.ok, response.error
    stop.set()
    if streamer is not None:
        streamer.join(timeout=10)
    return {
        "requests": SERVING_REQUESTS,
        "p50_ms": float(np.percentile(latencies, 50)),
        "p99_ms": float(np.percentile(latencies, 99)),
        "analytics_queries_concurrent": analytics_queries,
    }


def test_analytics_summary(benchmark):
    velox, log, load_s = _build()
    routing = _measure_routing(velox)
    integrity = _measure_integrity(velox, log)
    with VeloxServer(velox) as server:
        baseline = _predict_p99_ms(server, analytics_stream=False)
        contended = _predict_p99_ms(server, analytics_stream=True)
    maintenance = velox.analytics.metrics.snapshot()

    lines = [
        f"== MV routing vs log scan: {NUM_OBSERVATIONS} observations, "
        f"{NUM_USERS} users x {NUM_ITEMS} items "
        f"(corpus load {load_s:.2f}s incl. inline maintenance) =="
    ]
    lines.append(
        "shape                 route       scan_route       "
        "routed_ms  scan_ms   speedup  agree"
    )
    for row in routing:
        lines.append(
            f"{row['shape']:<22}{row['route']:<12}{row['scan_route']:<17}"
            f"{row['routed_ms']:<11.3f}{row['scan_ms']:<10.3f}"
            f"{row['speedup']:<9.1f}{row['answers_agree']}"
        )
    lines.append("")
    lines.append(
        f"== integrity: replay at watermark {integrity['log_length']} =="
    )
    for verdict in integrity["views"]:
        lines.append(
            f"view={verdict['view']:<8} watermark={verdict['high_watermark']} "
            f"keys={verdict['keys_checked']} "
            f"mismatched={verdict['mismatched_keys']} "
            f"drift={verdict['max_abs_drift']:.1e} ok={verdict['ok']}"
        )
    lines.append("")
    lines.append("== serving p99 with a concurrent analytics stream ==")
    lines.append(
        f"baseline : p50={baseline['p50_ms']:.3f}ms "
        f"p99={baseline['p99_ms']:.3f}ms"
    )
    lines.append(
        f"contended: p50={contended['p50_ms']:.3f}ms "
        f"p99={contended['p99_ms']:.3f}ms "
        f"({contended['analytics_queries_concurrent']} analytics queries "
        "ran alongside)"
    )
    lines.append(
        f"maintenance: {maintenance['maintenance_applies']} view applies, "
        f"{maintenance['maintenance_seconds'] * 1e6 / max(1, maintenance['maintenance_applies']):.1f}us/apply"
    )
    write_result("ablation_analytics", lines)
    write_json_summary(
        REPO_ROOT / "BENCH_analytics.json",
        "ablation_analytics",
        {
            "smoke": SMOKE,
            "num_observations": NUM_OBSERVATIONS,
            "num_users": NUM_USERS,
            "num_items": NUM_ITEMS,
            "corpus_load_s": load_s,
            "routing": routing,
            "integrity": integrity,
            "serving_baseline": baseline,
            "serving_with_analytics": contended,
            "maintenance": maintenance,
        },
    )

    # Tentpole: >= 10x on the full-scan reporting shapes, answers agree.
    claim_rows = [row for row in routing if row["claim_shape"]]
    assert len(claim_rows) >= 2
    for row in claim_rows:
        assert row["scan_route"] == "scan", row
        assert row["speedup"] >= 10.0, (
            f"{row['shape']}: {row['speedup']:.1f}x < 10x "
            f"(routed {row['routed_ms']:.3f}ms vs scan {row['scan_ms']:.3f}ms)"
        )
    assert all(row["answers_agree"] for row in routing), routing

    # Integrity: exact MV-vs-scan match at the common offset prefix.
    assert integrity["ok"], integrity
    for verdict in integrity["views"]:
        assert verdict["high_watermark"] == integrity["log_length"]
        assert verdict["max_abs_drift"] == 0.0

    # Interference: analytics alongside serving holds predict p99.
    assert contended["analytics_queries_concurrent"] > 0
    bound = max(
        INTERFERENCE_RATIO * baseline["p99_ms"],
        baseline["p99_ms"] + INTERFERENCE_SLACK_MS,
    )
    assert contended["p99_ms"] <= bound, (
        f"p99 {contended['p99_ms']:.3f}ms vs baseline "
        f"{baseline['p99_ms']:.3f}ms (bound {bound:.3f}ms)"
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

"""Partitioners: deterministic key → partition maps.

The user-weight table W is partitioned by uid (paper Section 5) so the
router and the storage layer agree on placement; item-feature tables are
hash-partitioned. All partitioners are pure functions of the key, so a
partition map never needs to be communicated.
"""

from __future__ import annotations

import bisect
from abc import ABC, abstractmethod

from repro.common.errors import PartitionError
from repro.common.rng import stable_hash


class Partitioner(ABC):
    """Maps keys into ``num_partitions`` buckets."""

    def __init__(self, num_partitions: int):
        if num_partitions < 1:
            raise PartitionError(
                f"num_partitions must be >= 1, got {num_partitions}"
            )
        self.num_partitions = num_partitions

    @abstractmethod
    def partition(self, key: object) -> int:
        """The partition index owning ``key`` (in ``[0, num_partitions)``)."""

    def __call__(self, key: object) -> int:
        return self.partition(key)

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.__dict__ == other.__dict__

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.num_partitions))


class HashPartitioner(Partitioner):
    """Stable-hash partitioning; the default for item/feature tables."""

    def partition(self, key: object) -> int:
        """The partition index owning ``key``."""
        return stable_hash(key) % self.num_partitions


class ModuloPartitioner(Partitioner):
    """Integer modulo partitioning; the default for uid-keyed tables.

    Keeps placement transparent (uid 17 on a 4-node cluster lives on
    node 1) which makes locality assertions in tests trivial.
    """

    def partition(self, key: object) -> int:
        """The partition index owning ``key``."""
        if not isinstance(key, int):
            raise PartitionError(
                f"ModuloPartitioner requires integer keys, got {key!r}"
            )
        return key % self.num_partitions


class RangePartitioner(Partitioner):
    """Partition by sorted boundary list: bucket i holds keys in
    ``(boundaries[i-1], boundaries[i]]`` with open ends."""

    def __init__(self, boundaries: list):
        super().__init__(len(boundaries) + 1)
        ordered = list(boundaries)
        if ordered != sorted(ordered):
            raise PartitionError(f"boundaries must be sorted, got {boundaries!r}")
        self.boundaries = ordered

    def partition(self, key: object) -> int:
        """The partition index owning ``key``."""
        return bisect.bisect_left(self.boundaries, key)

"""Offline ALS: convergence, signal recovery, cold entities, validation."""

import numpy as np
import pytest

from repro.batch import BatchContext
from repro.common.errors import ValidationError
from repro.core.offline import als_train, predict_rating
from repro.data import SynthLensConfig, generate_synthlens
from repro.metrics import rmse


class TestAlsConvergence:
    def test_training_rmse_decreases(self, small_split, batch_ctx):
        result = als_train(
            batch_ctx,
            [(r.uid, r.item_id, r.rating) for r in small_split.init],
            rank=5,
            num_items=120,
            num_iterations=6,
        )
        assert result.train_rmse[-1] < result.train_rmse[0]
        assert result.train_rmse[-1] < 0.3

    def test_recovers_planted_signal(self, batch_ctx):
        lens = generate_synthlens(
            SynthLensConfig(
                num_users=80, num_items=150, rank=4, ratings_per_user_mean=35,
                min_ratings_per_user=25, noise_std=0.2, seed=13,
            )
        )
        half = len(lens.ratings) // 2
        train, test = lens.ratings[:half], lens.ratings[half:]
        result = als_train(
            batch_ctx,
            [(r.uid, r.item_id, r.rating) for r in train],
            rank=4,
            num_items=150,
            num_iterations=10,
        )
        predictions = [predict_rating(result, r.uid, r.item_id) for r in test]
        truth = [r.rating for r in test]
        error = rmse(truth, predictions)
        # Must clearly beat the global-mean baseline and approach noise.
        baseline = rmse(truth, [result.global_mean] * len(truth))
        assert error < 0.75 * baseline
        assert error < 0.6

    def test_more_data_helps(self, small_lens, batch_ctx):
        ratings = [(r.uid, r.item_id, r.rating) for r in small_lens.ratings]
        test = ratings[-400:]
        small = als_train(batch_ctx, ratings[:400], rank=5, num_items=120, num_iterations=6)
        large = als_train(batch_ctx, ratings[:-400], rank=5, num_items=120, num_iterations=6)
        small_err = rmse([r[2] for r in test], [predict_rating(small, r[0], r[1]) for r in test])
        large_err = rmse([r[2] for r in test], [predict_rating(large, r[0], r[1]) for r in test])
        assert large_err < small_err


class TestAlsOutputs:
    def test_shapes(self, batch_ctx):
        ratings = [(u, i, 3.0) for u in range(5) for i in range(8)]
        result = als_train(batch_ctx, ratings, rank=3, num_items=10, num_iterations=2)
        assert result.item_factors.shape == (10, 3)
        assert result.item_bias.shape == (10,)
        assert set(result.user_factors) == set(range(5))
        assert all(f.shape == (3,) for f in result.user_factors.values())

    def test_global_mean(self, batch_ctx):
        ratings = [(0, 0, 2.0), (0, 1, 4.0), (1, 0, 3.0)]
        result = als_train(batch_ctx, ratings, rank=1, num_items=2, num_iterations=1)
        assert result.global_mean == pytest.approx(3.0)

    def test_cold_items_keep_zero_bias(self, batch_ctx):
        ratings = [(0, 0, 3.0), (0, 1, 4.0), (1, 0, 2.0), (1, 1, 5.0)]
        result = als_train(batch_ctx, ratings, rank=2, num_items=10, num_iterations=2)
        assert result.item_bias[7] == 0.0  # item 7 never rated

    def test_predict_rating_cold_user_falls_back(self, batch_ctx):
        ratings = [(0, 0, 4.0), (0, 1, 4.0), (1, 0, 4.0), (1, 1, 4.0)]
        result = als_train(batch_ctx, ratings, rank=1, num_items=2, num_iterations=2)
        cold = predict_rating(result, uid=99, item_id=0)
        assert cold == pytest.approx(result.global_mean + result.item_bias[0])

    def test_deterministic_given_seed(self, batch_ctx):
        ratings = [(u, i, float(2 + (u + i) % 3)) for u in range(6) for i in range(6)]
        a = als_train(batch_ctx, ratings, rank=2, num_items=6, num_iterations=3, seed=5)
        b = als_train(batch_ctx, ratings, rank=2, num_items=6, num_iterations=3, seed=5)
        assert np.array_equal(a.item_factors, b.item_factors)


def _dense_ratings(num_users=12, num_items=15):
    return [
        (u, i, float(2 + (u * 3 + i) % 4))
        for u in range(num_users)
        for i in range(num_items)
        if (u + i) % 3  # irregular per-entity counts
    ]


class TestSolverEquivalence:
    def test_vectorized_matches_scalar(self, batch_ctx):
        ratings = _dense_ratings()
        vec = als_train(batch_ctx, ratings, rank=3, num_items=15,
                        num_iterations=4, seed=9, solver="vectorized")
        sca = als_train(batch_ctx, ratings, rank=3, num_items=15,
                        num_iterations=4, seed=9, solver="scalar")
        assert np.allclose(vec.item_factors, sca.item_factors, atol=1e-9)
        assert np.allclose(vec.item_bias, sca.item_bias, atol=1e-9)
        for uid in vec.user_factors:
            assert np.allclose(vec.user_factors[uid], sca.user_factors[uid],
                               atol=1e-9)
        assert np.allclose(vec.train_rmse, sca.train_rmse, atol=1e-10)

    def test_invalid_solver_rejected(self, batch_ctx):
        with pytest.raises(ValidationError):
            als_train(batch_ctx, [(0, 0, 3.0)], rank=1, num_items=1,
                      solver="gpu")

    def test_stacked_ridge_matches_per_entity_solves(self):
        from repro.core.offline import _stacked_ridge

        rng = np.random.default_rng(4)
        counts = np.array([3, 1, 5, 2], dtype=np.intp)
        dim = 4
        features = rng.normal(size=(int(counts.sum()), dim))
        targets = rng.normal(size=int(counts.sum()))
        eye = np.eye(dim)
        batched = _stacked_ridge(features, targets, counts, dim, 0.3, eye,
                                 scale_reg_by_count=True)
        offset = 0
        for index, count in enumerate(counts):
            block = features[offset:offset + count]
            labels = targets[offset:offset + count]
            gram = block.T @ block + 0.3 * count * eye
            expected = np.linalg.solve(gram, block.T @ labels)
            assert np.allclose(batched[index], expected, atol=1e-10)
            offset += count


class TestExecutorDeterminism:
    """Seeded ALS is bit-identical whatever runs the tasks, as long as
    the partitioning (the floating-point reduction order) is pinned."""

    def _train(self, executor, parallelism, ratings):
        ctx = BatchContext(default_parallelism=parallelism, executor=executor)
        return als_train(ctx, ratings, rank=4, num_items=15,
                         num_iterations=3, seed=21, num_partitions=4)

    def _assert_identical(self, a, b):
        assert np.array_equal(a.item_factors, b.item_factors)
        assert np.array_equal(a.item_bias, b.item_bias)
        assert set(a.user_factors) == set(b.user_factors)
        for uid in a.user_factors:
            assert np.array_equal(a.user_factors[uid], b.user_factors[uid])
        assert a.user_bias == b.user_bias
        assert a.train_rmse == b.train_rmse

    def test_thread_worker_count_invariant(self):
        ratings = _dense_ratings()
        self._assert_identical(
            self._train("thread", 1, ratings), self._train("thread", 4, ratings)
        )

    def test_fork_matches_serial(self):
        from repro.batch import forkexec

        if not forkexec.fork_available():
            pytest.skip("platform has no os.fork")
        ratings = _dense_ratings()
        serial = self._train("thread", 1, ratings)
        self._assert_identical(serial, self._train("fork", 2, ratings))
        self._assert_identical(serial, self._train("fork", 4, ratings))


class TestSolveUserWeights:
    def _observations(self):
        from repro.store.oblog import Observation

        rng = np.random.default_rng(6)
        return [
            Observation(uid=uid, item_id=i, label=float(rng.normal()),
                        item_data=i, timestamp=float(i))
            for uid in range(6)
            for i in range(3 + uid)  # varying per-user counts
        ]

    def test_vectorized_matches_scalar(self, batch_ctx):
        from repro.core.offline import solve_user_weights

        observations = self._observations()
        feature_fn = lambda i: np.array([1.0, float(i), float(i) ** 2])
        vec = solve_user_weights(batch_ctx, observations, feature_fn, 3,
                                 solver="vectorized")
        sca = solve_user_weights(batch_ctx, observations, feature_fn, 3,
                                 solver="scalar")
        assert set(vec) == set(sca) == set(range(6))
        for uid in vec:
            assert np.allclose(vec[uid], sca[uid], atol=1e-10)

    def test_invalid_solver_rejected(self, batch_ctx):
        from repro.core.offline import solve_user_weights

        with pytest.raises(ValidationError):
            solve_user_weights(batch_ctx, [], lambda x: np.zeros(2), 2,
                               solver="quantum")


class TestAlsValidation:
    def test_empty_ratings_rejected(self, batch_ctx):
        with pytest.raises(ValidationError):
            als_train(batch_ctx, [], rank=2, num_items=5)

    def test_item_out_of_range_rejected(self, batch_ctx):
        with pytest.raises(ValidationError):
            als_train(batch_ctx, [(0, 99, 3.0)], rank=2, num_items=5)

    def test_invalid_params(self, batch_ctx):
        ratings = [(0, 0, 3.0)]
        with pytest.raises(ValidationError):
            als_train(batch_ctx, ratings, rank=0, num_items=1)
        with pytest.raises(ValidationError):
            als_train(batch_ctx, ratings, rank=1, num_items=1, num_iterations=0)
        with pytest.raises(ValidationError):
            als_train(batch_ctx, ratings, rank=1, num_items=1, regularization=-1)

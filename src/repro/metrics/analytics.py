"""Analytics-tier counters, exported by the status endpoint.

One :class:`AnalyticsMetrics` instance meters the whole analytics tier
of a node: how queries were routed (MV hit vs. indexed vs. full scan),
what answers cost in latency, how stale the routed views were, what
inline MV maintenance costs the write path, and whether integrity
checks have ever failed. Published under the ``"analytics"`` key of the
status response so the MV-first claim is observable, not asserted.

Maintenance is metered per *view application* (one log append touches
every registered view, so three applications per observe with the
standard catalog); the snapshot exposes both the application count and
the cumulative seconds, from which mean per-apply overhead follows.
"""

from __future__ import annotations

import threading


class AnalyticsMetrics:
    """Thread-safe counters for one node's analytics tier.

    Query metering is keyed by plan route: ``mv:*`` routes count as
    ``mv_hits``, ``scan:user-index`` as ``indexed_scans``, plain
    ``scan`` as ``full_scans``. ``snapshot`` returns a plain dict safe
    to serialize over either wire codec.
    """

    def __init__(self):
        self._lock = threading.Lock()
        # queries
        self.queries_total = 0
        self.mv_hits = 0
        self.indexed_scans = 0
        self.full_scans = 0
        self.query_seconds = 0.0
        self.last_staleness_records = 0
        self.max_staleness_records = 0
        # maintenance
        self.maintenance_applies = 0
        self.maintenance_seconds = 0.0
        # integrity
        self.integrity_checks = 0
        self.integrity_failures = 0

    def record_query(
        self, route: str, seconds: float, staleness_records: int = 0
    ) -> None:
        """Meter one executed query by its chosen plan route."""
        with self._lock:
            self.queries_total += 1
            self.query_seconds += seconds
            if route.startswith("mv:"):
                self.mv_hits += 1
            elif route == "scan:user-index":
                self.indexed_scans += 1
            else:
                self.full_scans += 1
            self.last_staleness_records = staleness_records
            self.max_staleness_records = max(
                self.max_staleness_records, staleness_records
            )

    def record_maintenance(self, seconds: float) -> None:
        """Meter one inline view application on the append path."""
        with self._lock:
            self.maintenance_applies += 1
            self.maintenance_seconds += seconds

    def record_integrity(self, ok: bool) -> None:
        """Meter one integrity-check run."""
        with self._lock:
            self.integrity_checks += 1
            if not ok:
                self.integrity_failures += 1

    def snapshot(self) -> dict:
        """Point-in-time copy of every counter (JSON-serializable)."""
        with self._lock:
            return {
                "queries_total": self.queries_total,
                "mv_hits": self.mv_hits,
                "indexed_scans": self.indexed_scans,
                "full_scans": self.full_scans,
                "query_seconds": self.query_seconds,
                "last_staleness_records": self.last_staleness_records,
                "max_staleness_records": self.max_staleness_records,
                "maintenance_applies": self.maintenance_applies,
                "maintenance_seconds": self.maintenance_seconds,
                "integrity_checks": self.integrity_checks,
                "integrity_failures": self.integrity_failures,
            }

"""Durable persistence for veloxstore: checkpoint to and restore from disk.

Tachyon checkpoints its in-memory data to an under-filesystem (HDFS) so
state survives whole-cluster restarts; this module is that layer for
veloxstore. A checkpoint directory contains one pickle file per table
(values plus per-key versions, partition layout preserved) and one per
observation log, with a manifest recording the format version and
contents.

Pickle is the serialization format because table values are arbitrary
Python objects (numpy arrays, UserModelState instances); checkpoints
are trusted local state, not an interchange format.

Slab-backed tables (those with a :class:`~repro.store.slab.SlabPolicy`)
additionally write their columnar side as raw ``.npy`` arrays — one
(keys, rows, versions) triple per partition — and restore them with
``np.load(mmap_mode=...)``: recovery maps the weight matrix instead of
parsing a pickle, and pages materialize copy-on-write as rows are
touched. The manifest's per-table ``storage`` entry records the policy
(rank, dtype, codec) so a restore can rebuild it without the caller
supplying one.
"""

from __future__ import annotations

import json
import pickle
from pathlib import Path

import numpy as np

from repro.common.errors import StorageError
from repro.store.oblog import Observation, ObservationLog
from repro.store.slab import SlabPolicy
from repro.store.store import VeloxStore
from repro.store.table import Table

FORMAT_VERSION = 1
MANIFEST_NAME = "MANIFEST.json"


def checkpoint_store(store: VeloxStore, directory: str | Path) -> Path:
    """Write the whole store to ``directory``; returns the path.

    Existing checkpoint files in the directory are overwritten. Tables
    with failed partitions cannot be checkpointed (recover them first) —
    a checkpoint must be a consistent full snapshot.
    """
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)

    tables = {}
    for name in store.table_names():
        table = store.table(name)
        for index in range(table.num_partitions):
            if table.partition(index).failed:
                raise StorageError(
                    f"cannot checkpoint: table {name!r} partition {index} "
                    "is failed; recover it first"
                )
        file_name = f"table_{_safe_name(name)}.pkl"
        entry = {
            "file": file_name,
            "num_partitions": table.num_partitions,
        }
        if table.value_policy is not None:
            # Columnar side as raw .npy arrays (memory-mappable on
            # restore); only the object-resident remainder is pickled.
            partitions, slab_files = [], []
            for index in range(table.num_partitions):
                export, _sequence = table.partition(index).export_state()
                stem = f"table_{_safe_name(name)}_p{index}"
                files = {
                    "keys": f"{stem}_keys.npy",
                    "rows": f"{stem}_rows.npy",
                    "versions": f"{stem}_versions.npy",
                }
                np.save(path / files["keys"], export.slab.keys)
                np.save(path / files["rows"], export.slab.rows)
                np.save(path / files["versions"], export.slab.versions)
                slab_files.append(files)
                partitions.append(export.objects)
            entry["storage"] = {
                "kind": "slab",
                "policy": table.value_policy.manifest_info(),
                "partitions": slab_files,
            }
        else:
            partitions = []
            for index in range(table.num_partitions):
                partition = table.partition(index)
                partitions.append(
                    {key: partition.get(key) for key in partition.keys()}
                )
        with open(path / file_name, "wb") as handle:
            pickle.dump(partitions, handle)
        tables[name] = entry

    logs = {}
    for name in store.log_names():
        records = store.log(name).read_all()
        file_name = f"log_{_safe_name(name)}.pkl"
        with open(path / file_name, "wb") as handle:
            pickle.dump(records, handle)
        logs[name] = {"file": file_name, "records": len(records)}

    manifest = {
        "format_version": FORMAT_VERSION,
        "default_partitions": store.default_partitions,
        "tables": tables,
        "logs": logs,
    }
    with open(path / MANIFEST_NAME, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
    return path


def restore_store(
    directory: str | Path,
    partitioners: dict | None = None,
    value_policies: dict | None = None,
) -> VeloxStore:
    """Rebuild a :class:`VeloxStore` from a checkpoint directory.

    Custom partitioners are not serializable, so tables that used one
    must be given it again via ``partitioners={table_name: callable}``;
    keys land back in their recorded partitions either way (restore
    writes partition-by-partition), so lookups stay consistent as long
    as the supplied partitioner matches the original.

    Slab-backed tables rebuild their storage policy from the manifest
    (``value_policies={table_name: policy}`` overrides it) and map their
    row matrices with ``np.load(mmap_mode="c")`` — a copy-on-write
    adoption, not a parse. The checkpoint files back the mapping, so
    they must outlive the restored store.
    """
    path = Path(directory)
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.exists():
        raise StorageError(f"no checkpoint manifest at {manifest_path}")
    with open(manifest_path, encoding="utf-8") as handle:
        manifest = json.load(handle)
    if manifest.get("format_version") != FORMAT_VERSION:
        raise StorageError(
            f"unsupported checkpoint format {manifest.get('format_version')!r}"
        )

    store = VeloxStore(default_partitions=manifest["default_partitions"])
    supplied = partitioners or {}
    supplied_policies = value_policies or {}
    for name, info in manifest["tables"].items():
        with open(path / info["file"], "rb") as handle:
            partitions = pickle.load(handle)
        storage = info.get("storage")
        policy = supplied_policies.get(name)
        if policy is None and storage is not None:
            policy = _policy_from_manifest(storage["policy"])
        table = store.create_table(
            name,
            num_partitions=info["num_partitions"],
            partitioner=supplied.get(name),
            value_policy=policy,
        )
        if storage is not None:
            _load_slabs(table, path, storage["partitions"])
        _load_table(table, partitions)
    for name, info in manifest["logs"].items():
        with open(path / info["file"], "rb") as handle:
            records = pickle.load(handle)
        log = store.create_log(name)
        for record in records:
            if not isinstance(record, Observation):
                raise StorageError(
                    f"log {name!r} contains a non-observation record"
                )
            log.append(record)
    return store


def _load_slabs(table: Table, path: Path, partition_files: list[dict]) -> None:
    """Adopt each partition's checkpointed slab arrays.

    The journal keeps a read-only mapping of the row matrix for replay;
    a second, copy-on-write mapping of the same file becomes the live
    slab — load-not-parse recovery.
    """
    for index, files in enumerate(partition_files):
        keys = np.load(path / files["keys"])
        if len(keys) == 0:
            continue
        versions = np.load(path / files["versions"])
        journal_rows = np.load(path / files["rows"], mmap_mode="r")
        live_rows = np.load(path / files["rows"], mmap_mode="c")
        table.partition(index).restore_slab(
            keys, journal_rows, versions, live_rows=live_rows
        )


def _policy_from_manifest(info: dict) -> SlabPolicy:
    """Rebuild a table's storage policy from its manifest entry."""
    codec = None
    codec_info = info.get("codec")
    if codec_info is not None:
        if codec_info.get("kind") == "user_state":
            from repro.core.online import UserStateCodec

            codec = UserStateCodec(
                codec_info["dimension"], codec_info["regularization"]
            )
        else:
            raise StorageError(
                f"unknown slab codec kind {codec_info.get('kind')!r}"
            )
    return SlabPolicy(info["rank"], dtype=np.dtype(info["dtype"]), codec=codec)


def _load_table(table: Table, partitions: list[dict]) -> None:
    """Install checkpointed (value, version) entries partition-by-
    partition at their recorded versions."""
    for index, entries in enumerate(partitions):
        partition = table.partition(index)
        for key, (value, version) in entries.items():
            partition.install(key, value, version)


def _safe_name(name: str) -> str:
    """Filesystem-safe, collision-free encoding of a table/log name."""
    import hashlib

    cleaned = "".join(c if c.isalnum() or c in "-_" else "_" for c in name)
    if cleaned != name:
        digest = hashlib.blake2b(name.encode("utf-8"), digest_size=4).hexdigest()
        cleaned = f"{cleaned}_{digest}"
    return cleaned

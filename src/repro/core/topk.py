"""Efficient top-K over materialized linear models (paper Section 8).

The paper's future work names "more efficient top-K support for our
linear modeling tasks". For the materialized family, scoring the whole
catalog for one user is a matrix-vector product — so top-K does not
need a per-item serving loop at all. This module provides three exact
engines with identical results and very different cost profiles:

* :class:`NaiveTopK` — the per-item loop (what ``top_k`` over a full
  catalog would do); the baseline.
* :class:`BlockedMatrixTopK` — one BLAS matmul over the stacked item
  feature matrix, then ``argpartition``. Orders of magnitude faster in
  practice; rebuilt per model version.
* :class:`ThresholdTopK` — Fagin's Threshold Algorithm over
  per-dimension sorted lists: walks the highest-magnitude entries of
  each feature dimension in order of the user's weights, with an upper
  bound that certifies exactness before the whole catalog is touched.
  Wins when the weight vector is sparse/concentrated and k is small.

All engines answer ``top_k(weights, k)`` with ``(item_id, score)``
pairs sorted by descending score, ties broken by item id.
"""

from __future__ import annotations

import bisect
from abc import ABC, abstractmethod

import numpy as np

from repro.common.errors import ValidationError


def _check_inputs(feature_matrix: np.ndarray, weights: np.ndarray, k: int):
    if feature_matrix.ndim != 2:
        raise ValidationError(
            f"feature_matrix must be 2-D, got shape {feature_matrix.shape}"
        )
    num_items, dimension = feature_matrix.shape
    if weights.shape != (dimension,):
        raise ValidationError(
            f"weights must have shape ({dimension},), got {weights.shape}"
        )
    if not 1 <= k:
        raise ValidationError(f"k must be >= 1, got {k}")
    return min(k, num_items)


def _rank(scores: np.ndarray, k: int) -> list[tuple[int, float]]:
    """Exact top-k of a dense score vector (descending, ties by id)."""
    if k >= scores.shape[0]:
        order = np.lexsort((np.arange(scores.shape[0]), -scores))
        return [(int(i), float(scores[i])) for i in order]
    candidates = np.argpartition(-scores, k - 1)[:k]
    order = candidates[np.lexsort((candidates, -scores[candidates]))]
    return [(int(i), float(scores[i])) for i in order]


class TopKEngine(ABC):
    """Answers exact top-k queries against one model version's features."""

    def __init__(self, feature_matrix: np.ndarray):
        matrix = np.asarray(feature_matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] < 1:
            raise ValidationError(
                f"feature_matrix must be (num_items, d), got {matrix.shape}"
            )
        self.feature_matrix = matrix
        self.num_items, self.dimension = matrix.shape

    @classmethod
    def from_model(cls, model, **kwargs) -> "TopKEngine":
        """Stack a materialized model's per-item features into the engine.

        Works for any model whose inputs are the ids ``0..num_items-1``.
        """
        if not getattr(model, "materialized", False):
            raise ValidationError(
                f"model {model.name!r} is not materialized; indexed top-K "
                "requires a finite item catalog"
            )
        matrix = np.vstack([model.features(i) for i in range(model.num_items)])
        return cls(matrix, **kwargs)

    @abstractmethod
    def top_k(self, weights: np.ndarray, k: int) -> list[tuple[int, float]]:
        """The k best (item_id, score) pairs for this weight vector."""


class NaiveTopK(TopKEngine):
    """Per-item python loop — the baseline the serving path implies."""

    def top_k(self, weights: np.ndarray, k: int) -> list[tuple[int, float]]:
        """The k best (item_id, score) pairs (see TopKEngine.top_k)."""
        weights = np.asarray(weights, dtype=float)
        k = _check_inputs(self.feature_matrix, weights, k)
        scores = np.empty(self.num_items)
        for item in range(self.num_items):
            scores[item] = float(weights @ self.feature_matrix[item])
        return _rank(scores, k)


class BlockedMatrixTopK(TopKEngine):
    """One blocked matrix-vector product + argpartition.

    ``block_rows`` bounds the working set so catalogs far larger than
    cache still stream efficiently; exactness is unaffected.
    """

    def __init__(self, feature_matrix: np.ndarray, block_rows: int = 16_384):
        super().__init__(feature_matrix)
        if block_rows < 1:
            raise ValidationError(f"block_rows must be >= 1, got {block_rows}")
        self.block_rows = block_rows

    def top_k(self, weights: np.ndarray, k: int) -> list[tuple[int, float]]:
        """The k best (item_id, score) pairs (see TopKEngine.top_k)."""
        weights = np.asarray(weights, dtype=float)
        k = _check_inputs(self.feature_matrix, weights, k)
        scores = np.empty(self.num_items)
        for start in range(0, self.num_items, self.block_rows):
            stop = min(start + self.block_rows, self.num_items)
            scores[start:stop] = self.feature_matrix[start:stop] @ weights
        return _rank(scores, k)


class ThresholdTopK(TopKEngine):
    """Fagin's Threshold Algorithm (TA) over per-dimension sorted lists.

    Preprocessing sorts each feature dimension's column twice (ascending
    and descending item order by value). At query time, dimensions are
    walked in round-robin depth order; each dimension contributes its
    best remaining item *in the direction of the user's weight sign*.
    The running threshold ``sum_j |w_j| * column_extreme_j(depth)`` upper-
    bounds every unseen item's score, so the scan stops as soon as the
    k-th best seen score meets it — certified exact early termination.
    """

    def __init__(self, feature_matrix: np.ndarray):
        super().__init__(feature_matrix)
        # item ids per dimension, sorted by descending feature value,
        # and the matching sorted values; plus the ascending variants.
        self._desc_order = np.argsort(-self.feature_matrix, axis=0)
        self._desc_values = np.take_along_axis(
            self.feature_matrix, self._desc_order, axis=0
        )
        self._asc_order = self._desc_order[::-1]
        self._asc_values = self._desc_values[::-1]

    def top_k(self, weights: np.ndarray, k: int) -> list[tuple[int, float]]:
        """The k best (item_id, score) pairs (see TopKEngine.top_k)."""
        weights = np.asarray(weights, dtype=float)
        k = _check_inputs(self.feature_matrix, weights, k)
        # Dimensions with zero weight contribute nothing; skip them.
        active = [j for j in range(self.dimension) if weights[j] != 0.0]
        if not active:
            return _rank(np.zeros(self.num_items), k)

        # Hoist the weight-sign branch out of the depth loop: each
        # active dimension always walks one direction, so pick its
        # order/value column (zero-copy views) once per query.
        walk = []
        for j in active:
            if weights[j] > 0:
                walk.append(
                    (weights[j], self._desc_order[:, j], self._desc_values[:, j])
                )
            else:
                walk.append(
                    (weights[j], self._asc_order[:, j], self._asc_values[:, j])
                )

        seen: set[int] = set()
        self.last_items_scored = 0
        top: list[tuple[float, int]] = []  # (score, -item), kept sorted asc

        def push(item: int) -> None:
            if item in seen:
                return
            seen.add(item)
            self.last_items_scored += 1
            value = float(weights @ self.feature_matrix[item])
            entry = (value, -item)  # -item: ties prefer smaller id
            if len(top) < k:
                bisect.insort(top, entry)
            elif entry > top[0]:
                bisect.insort(top, entry)
                top.pop(0)

        for depth in range(self.num_items):
            threshold = 0.0
            for weight, order_col, value_col in walk:
                push(int(order_col[depth]))
                threshold += weight * value_col[depth]
            if len(top) == k and top[0][0] >= threshold:
                break

        result = [(-negative_id, value) for value, negative_id in reversed(top)]
        return [(int(item), float(value)) for item, value in result]

"""ObservationLog: offsets, range reads, per-user reads."""

import pytest

from repro.store import Observation, ObservationLog


def make_obs(uid: int, item: int, label: float = 1.0) -> Observation:
    return Observation(uid=uid, item_id=item, label=label)


class TestAppend:
    def test_append_returns_offset(self):
        log = ObservationLog()
        assert log.append(make_obs(1, 1)) == 0
        assert log.append(make_obs(1, 2)) == 1

    def test_len(self):
        log = ObservationLog()
        for i in range(5):
            log.append(make_obs(i, i))
        assert len(log) == 5

    def test_snapshot_offset_is_stable_reference(self):
        log = ObservationLog()
        log.append(make_obs(1, 1))
        offset = log.snapshot_offset()
        log.append(make_obs(2, 2))
        assert offset == 1
        assert len(log.read_range(0, offset)) == 1


class TestReads:
    def test_read_range(self):
        log = ObservationLog()
        for i in range(10):
            log.append(make_obs(i, i))
        chunk = log.read_range(3, 6)
        assert [ob.uid for ob in chunk] == [3, 4, 5]

    def test_read_range_open_end(self):
        log = ObservationLog()
        for i in range(4):
            log.append(make_obs(i, i))
        assert [ob.uid for ob in log.read_range(2)] == [2, 3]

    def test_read_all(self):
        log = ObservationLog()
        log.append(make_obs(1, 1))
        assert len(log.read_all()) == 1

    def test_read_range_validation(self):
        log = ObservationLog()
        log.append(make_obs(1, 1))
        with pytest.raises(ValueError):
            log.read_range(-1)
        with pytest.raises(ValueError):
            log.read_range(0, 5)
        with pytest.raises(ValueError):
            log.read_range(1, 0)

    def test_by_user(self):
        log = ObservationLog()
        for i in range(6):
            log.append(make_obs(i % 2, i))
        user0 = log.by_user(0)
        assert [ob.item_id for ob in user0] == [0, 2, 4]

    def test_by_user_respects_stop(self):
        log = ObservationLog()
        for i in range(6):
            log.append(make_obs(0, i))
        assert len(log.by_user(0, stop=3)) == 3

    def test_observation_is_immutable(self):
        ob = make_obs(1, 2)
        with pytest.raises(AttributeError):
            ob.label = 5.0

"""Metrics: prediction-error measures, streaming statistics, latency.

Used by the model manager for quality monitoring (paper Section 4.3) and
by the benchmark harness to report the figures' series (means with 95%
confidence intervals, as in Figures 3 and 4).
"""

from repro.metrics.errors import (
    squared_error,
    absolute_error,
    rmse,
    mae,
    precision_at_k,
    ndcg_at_k,
    mean_confidence_interval,
)
from repro.metrics.streaming import StreamingMeanVar, WindowedMean, Ewma
from repro.metrics.latency import LatencyRecorder, Timer
from repro.metrics.analytics import AnalyticsMetrics
from repro.metrics.replication import ReplicationMetrics
from repro.metrics.resilience import ResilienceMetrics
from repro.metrics.serving import Histogram, QueueMetrics

__all__ = [
    "squared_error",
    "absolute_error",
    "rmse",
    "mae",
    "precision_at_k",
    "ndcg_at_k",
    "mean_confidence_interval",
    "StreamingMeanVar",
    "WindowedMean",
    "Ewma",
    "LatencyRecorder",
    "Timer",
    "Histogram",
    "QueueMetrics",
    "AnalyticsMetrics",
    "ReplicationMetrics",
    "ResilienceMetrics",
]

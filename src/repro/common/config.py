"""Top-level configuration for a Velox deployment.

A single frozen dataclass gathers the knobs that cut across subsystems
(cluster size, model dimensionality, regularization, cache sizes,
staleness thresholds) with validation at construction time. Individual
components also accept their own narrower configs; :class:`VeloxConfig`
is the convenience bundle used by :func:`repro.deploy` and the examples.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class VeloxConfig:
    """Deployment-wide settings.

    Attributes:
        num_nodes: Simulated cluster size (manager+predictor per node).
        dimension: Feature/weight dimensionality ``d``.
        regularization: L2 penalty ``lambda`` used by online and offline
            learning (Eq. 2 of the paper).
        feature_cache_capacity: Per-node LRU capacity (entries) for
            materialized/computed item features.
        prediction_cache_capacity: Per-node LRU capacity (entries) for
            (user, item) prediction results.
        staleness_loss_ratio: Retrain trigger: retrain when recent loss
            exceeds baseline loss by this multiplicative factor.
        staleness_window: Number of recent observations in the loss window.
        min_observations_for_staleness: Do not evaluate staleness before
            this many observations have been seen for the model.
        online_update_method: ``"normal_equations"`` (naive, cubic in d,
            what Figure 3 plots), ``"sherman_morrison"`` (quadratic), or
            ``"sgd"``.
        bootstrap_new_users: Whether unknown users receive the mean of
            existing user weights (paper Section 5) instead of raising.
        bandit_exploration: LinUCB alpha / epsilon, interpreted by the
            configured bandit policy.
        remote_hop_latency: Modeled one-way network latency (seconds)
            charged per remote data access in the cluster simulator.
        remote_bandwidth: Modeled bytes/second for remote payloads.
        batch_executor: How the batch (sparklite) scheduler runs a
            stage's tasks: ``"thread"`` (GIL-bound pool sharing driver
            memory) or ``"fork"`` (process-per-worker, true multicore
            for CPU-bound retraining; falls back to threads where
            ``os.fork`` is unavailable).
        replication_factor: Copies of each user-weight/item partition
            (1 = the paper's single-copy store recovered by lineage
            replay only; N > 1 adds N-1 journal-shipped followers with
            heartbeat failure detection and automatic promotion, so
            serving survives node loss with bounded-stale reads).
            Must not exceed ``num_nodes``. Replication tuning knobs
            (heartbeat interval/timeout, max lag records, virtual
            nodes) ride in ``extra`` as ``replication_*`` keys.
        user_weight_store: Physical layout of the per-model user-weight
            tables: ``"slab"`` (contiguous columnar numpy partitions —
            row reads/writes, fancy-index batch gathers, O(bytes)
            snapshot transfer) or ``"dict"`` (one boxed state object
            per user key, the historical layout). Both are observably
            equivalent; slab is the default because per-request cost
            stays flat as user count grows.
        frontend: TCP front-end implementation used by
            :class:`~repro.frontend.server.VeloxServer`:
            ``"eventloop"`` (one selector thread multiplexing every
            connection — p99 stays flat into the thousands of
            pipelined clients) or ``"threaded"`` (thread per
            connection, the historical fallback).
        analytics: Whether to stand up the MV-first analytics tier
            (:class:`~repro.analytics.AnalyticsEngine`): per-user,
            per-item, and per-time-window rollups maintained inline
            from every observation append, plus the cost-based query
            planner behind ``Velox.analytics_query``. Maintenance costs
            three dict upserts per observe; disable for write-path
            microbenchmarks that want the log bare. The tumbling-window
            width (timestamp units) rides in ``extra`` as
            ``"analytics_window"`` (default 100).
    """

    num_nodes: int = 4
    dimension: int = 50
    regularization: float = 1.0
    feature_cache_capacity: int = 10_000
    prediction_cache_capacity: int = 100_000
    staleness_loss_ratio: float = 1.25
    staleness_window: int = 500
    min_observations_for_staleness: int = 1_000
    online_update_method: str = "sherman_morrison"
    bootstrap_new_users: bool = True
    bandit_exploration: float = 0.5
    remote_hop_latency: float = 0.5e-3
    remote_bandwidth: float = 1e9
    batch_executor: str = "thread"
    replication_factor: int = 1
    user_weight_store: str = "slab"
    frontend: str = "eventloop"
    analytics: bool = True
    extra: dict = field(default_factory=dict)

    _VALID_UPDATE_METHODS = (
        "normal_equations",
        "sherman_morrison",
        "sgd",
        "logistic",
    )
    # Mirrors repro.batch.scheduler.EXECUTORS (kept literal here so the
    # config layer stays import-free of the batch subsystem).
    _VALID_BATCH_EXECUTORS = ("thread", "fork")
    _VALID_USER_WEIGHT_STORES = ("slab", "dict")
    # Mirrors repro.frontend.server.FRONTENDS (kept literal here so the
    # config layer stays import-free of the frontend subsystem).
    _VALID_FRONTENDS = ("eventloop", "threaded")

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ConfigError(f"num_nodes must be >= 1, got {self.num_nodes}")
        if self.dimension < 1:
            raise ConfigError(f"dimension must be >= 1, got {self.dimension}")
        if self.regularization < 0:
            raise ConfigError(
                f"regularization must be >= 0, got {self.regularization}"
            )
        if self.feature_cache_capacity < 0:
            raise ConfigError(
                "feature_cache_capacity must be >= 0, "
                f"got {self.feature_cache_capacity}"
            )
        if self.prediction_cache_capacity < 0:
            raise ConfigError(
                "prediction_cache_capacity must be >= 0, "
                f"got {self.prediction_cache_capacity}"
            )
        if self.staleness_loss_ratio <= 1.0:
            raise ConfigError(
                "staleness_loss_ratio must be > 1.0 (a ratio of recent to "
                f"baseline loss), got {self.staleness_loss_ratio}"
            )
        if self.staleness_window < 1:
            raise ConfigError(
                f"staleness_window must be >= 1, got {self.staleness_window}"
            )
        if self.online_update_method not in self._VALID_UPDATE_METHODS:
            raise ConfigError(
                f"online_update_method must be one of "
                f"{self._VALID_UPDATE_METHODS}, got {self.online_update_method!r}"
            )
        if self.bandit_exploration < 0:
            raise ConfigError(
                f"bandit_exploration must be >= 0, got {self.bandit_exploration}"
            )
        if self.remote_hop_latency < 0:
            raise ConfigError(
                f"remote_hop_latency must be >= 0, got {self.remote_hop_latency}"
            )
        if self.remote_bandwidth <= 0:
            raise ConfigError(
                f"remote_bandwidth must be > 0, got {self.remote_bandwidth}"
            )
        if self.batch_executor not in self._VALID_BATCH_EXECUTORS:
            raise ConfigError(
                f"batch_executor must be one of {self._VALID_BATCH_EXECUTORS}, "
                f"got {self.batch_executor!r}"
            )
        if self.replication_factor < 1:
            raise ConfigError(
                f"replication_factor must be >= 1, got {self.replication_factor}"
            )
        if self.user_weight_store not in self._VALID_USER_WEIGHT_STORES:
            raise ConfigError(
                f"user_weight_store must be one of "
                f"{self._VALID_USER_WEIGHT_STORES}, "
                f"got {self.user_weight_store!r}"
            )
        if self.frontend not in self._VALID_FRONTENDS:
            raise ConfigError(
                f"frontend must be one of {self._VALID_FRONTENDS}, "
                f"got {self.frontend!r}"
            )
        if self.replication_factor > self.num_nodes:
            raise ConfigError(
                f"replication_factor {self.replication_factor} exceeds "
                f"num_nodes {self.num_nodes}: every replica needs a "
                "distinct node"
            )

    # -- serialization ------------------------------------------------------

    def to_json(self) -> str:
        """Serialize to a JSON object string (round-trips with
        :meth:`from_json`)."""
        return json.dumps(asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "VeloxConfig":
        """Parse a config from JSON, rejecting unknown keys loudly
        (silent typos in deployment configs are how staleness thresholds
        quietly never fire)."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as err:
            raise ConfigError(f"malformed config JSON: {err}") from err
        if not isinstance(data, dict):
            raise ConfigError(
                f"config JSON must be an object, got {type(data).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError(f"unknown config keys: {unknown}")
        return cls(**data)

    @classmethod
    def from_file(cls, path: str | Path) -> "VeloxConfig":
        """Load a config from a JSON file."""
        file_path = Path(path)
        if not file_path.exists():
            raise ConfigError(f"no config file at {file_path}")
        return cls.from_json(file_path.read_text(encoding="utf-8"))

"""Concurrency: parallel observes and predicts must not lose updates."""

import threading

import numpy as np
import pytest


class TestConcurrentObserve:
    def test_no_lost_updates_same_user(self, deployed_velox):
        """N threads hammering one user: the state must reflect all N
        observations (the classic lost-update race)."""
        uid, item = 4, 2
        per_thread = 25
        threads = 4
        errors = []

        def worker():
            try:
                for __ in range(per_thread):
                    deployed_velox.observe(uid=uid, x=item, y=4.0)
            except Exception as err:  # surfaced in the main thread
                errors.append(err)

        workers = [threading.Thread(target=worker) for __ in range(threads)]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        assert errors == []
        state = deployed_velox.manager.user_state_table("songs").get(uid)
        assert state.observation_count == per_thread * threads
        log = deployed_velox.manager.observation_log("songs")
        assert len(log) == per_thread * threads

    def test_concurrent_observe_across_users(self, deployed_velox):
        errors = []

        def worker(uid):
            try:
                for i in range(30):
                    deployed_velox.observe(uid=uid, x=i % 10, y=3.0 + (i % 3))
            except Exception as err:
                errors.append(err)

        workers = [threading.Thread(target=worker, args=(u,)) for u in range(6)]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        assert errors == []
        assert deployed_velox.health().observations == 180

    def test_predicts_concurrent_with_observes(self, deployed_velox):
        """Readers never crash or see non-finite scores while writers run."""
        stop = threading.Event()
        errors = []

        def writer():
            try:
                i = 0
                while not stop.is_set():
                    deployed_velox.observe(uid=i % 10, x=i % 8, y=3.5)
                    i += 1
            except Exception as err:
                errors.append(err)

        def reader():
            try:
                for i in range(300):
                    __, score = deployed_velox.predict(None, i % 10, i % 8)
                    assert np.isfinite(score)
            except Exception as err:
                errors.append(err)

        writer_thread = threading.Thread(target=writer)
        reader_threads = [threading.Thread(target=reader) for __ in range(3)]
        writer_thread.start()
        for t in reader_threads:
            t.start()
        for t in reader_threads:
            t.join()
        stop.set()
        writer_thread.join()
        assert errors == []


class TestSelectorDecay:
    """Exponential forgetting in the selectors (nonstationarity support)."""

    def test_hedge_decay_tracks_a_flip(self):
        from repro.core.selection import HedgeSelector

        selector = HedgeSelector(["a", "b"], eta=0.5, decay=0.9)
        for __ in range(100):
            selector.update({"a": 0.0, "b": 1.0})
        assert selector.weights()["a"] > 0.9
        for __ in range(60):
            selector.update({"a": 1.0, "b": 0.0})
        assert selector.weights()["b"] > 0.9

    def test_hedge_without_decay_is_cumulative(self):
        from repro.core.selection import HedgeSelector

        selector = HedgeSelector(["a", "b"], eta=0.5, decay=1.0)
        for __ in range(100):
            selector.update({"a": 0.0, "b": 1.0})
        for __ in range(60):
            selector.update({"a": 1.0, "b": 0.0})
        # cumulative: a is still ahead (100 vs 60 loss units against b)
        assert selector.weights()["a"] > 0.9

    def test_decay_validation(self):
        from repro.common.errors import ConfigError
        from repro.core.selection import Exp3Selector, HedgeSelector

        with pytest.raises(ConfigError):
            HedgeSelector(["a"], decay=0.0)
        with pytest.raises(ConfigError):
            HedgeSelector(["a"], decay=1.5)
        with pytest.raises(ConfigError):
            Exp3Selector(["a"], decay=0.0)

    def test_exp3_decay_tracks_a_flip(self):
        from repro.core.selection import Exp3Selector

        selector = Exp3Selector(["a", "b"], gamma=0.2, eta=0.3, decay=0.9, rng=1)
        for __ in range(300):
            served = selector.choose()
            selector.update({served: 0.0 if served == "a" else 1.0}, served=served)
        assert selector.weights()["a"] > 0.5
        for __ in range(300):
            served = selector.choose()
            selector.update({served: 1.0 if served == "a" else 0.0}, served=served)
        assert selector.weights()["b"] > 0.5

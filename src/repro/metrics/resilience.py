"""Resilience counters: retries, hedges, breaker transitions, sheds.

One :class:`ResilienceMetrics` instance aggregates everything the
resilience machinery does on behalf of requests — retries taken (and
ones the budget refused), hedged reads launched and won, circuit-breaker
state transitions, deadline-exceeded sheds by stage, and degraded
responses by ladder rung. The serving engine owns one (exported through
the status endpoint) and every
:class:`~repro.frontend.resilient.ResilientClient` owns its own.

Thread-safe; all writers take one lock and snapshots are plain dicts.
"""

from __future__ import annotations

import threading
from collections import Counter


class ResilienceMetrics:
    """Counters for one resilience domain (a client or an engine)."""

    def __init__(self, name: str = "resilience"):
        self.name = name
        self._lock = threading.Lock()
        self._retries = 0
        self._retry_budget_exhausted = 0
        self._hedges_launched = 0
        self._hedges_won = 0
        self._breaker_transitions: Counter = Counter()
        self._breaker_rejections = 0
        self._deadline_sheds: Counter = Counter()
        self._degraded: Counter = Counter()
        self._timed_out = 0

    # -- writers -------------------------------------------------------------

    def on_retry(self) -> None:
        """One retry attempt actually sent."""
        with self._lock:
            self._retries += 1

    def on_retry_budget_exhausted(self) -> None:
        """A retry the token budget refused (storm prevention)."""
        with self._lock:
            self._retry_budget_exhausted += 1

    def on_hedge_launched(self) -> None:
        """A hedged duplicate read was sent."""
        with self._lock:
            self._hedges_launched += 1

    def on_hedge_won(self) -> None:
        """The hedge answered before the primary attempt."""
        with self._lock:
            self._hedges_won += 1

    def on_breaker_transition(self, target: str, old: str, new: str) -> None:
        """One circuit-breaker state change (``closed``→``open`` etc.)."""
        with self._lock:
            self._breaker_transitions[f"{target}:{old}->{new}"] += 1

    def on_breaker_rejection(self) -> None:
        """A call refused at pick time because the breaker was open."""
        with self._lock:
            self._breaker_rejections += 1

    def on_deadline_shed(self, where: str) -> None:
        """A request shed because its deadline budget ran out.

        ``where`` names the shed stage: ``"admission"``, ``"queue"`` or
        ``"pre-compute"`` — never a post-compute stage, by construction.
        """
        with self._lock:
            self._deadline_sheds[where] += 1

    def on_degraded(self, rung: str) -> None:
        """A response served from a degradation-ladder rung
        (``"cached"``, ``"stale"``) or the typed bottom (``"error"``).
        """
        with self._lock:
            self._degraded[rung] += 1

    def on_timed_out(self) -> None:
        """A pipelined call abandoned by its caller at timeout."""
        with self._lock:
            self._timed_out += 1

    # -- readers -------------------------------------------------------------

    @property
    def retries(self) -> int:
        with self._lock:
            return self._retries

    @property
    def hedges_launched(self) -> int:
        with self._lock:
            return self._hedges_launched

    @property
    def hedges_won(self) -> int:
        with self._lock:
            return self._hedges_won

    @property
    def deadline_sheds(self) -> int:
        """Total deadline-exceeded sheds across all stages."""
        with self._lock:
            return sum(self._deadline_sheds.values())

    @property
    def degraded_responses(self) -> int:
        """Responses served degraded (any rung except the typed error)."""
        with self._lock:
            return sum(
                count for rung, count in self._degraded.items()
                if rung != "error"
            )

    @property
    def timed_out(self) -> int:
        with self._lock:
            return self._timed_out

    def snapshot(self) -> dict:
        """A plain-dict snapshot for status endpoints and benchmarks."""
        with self._lock:
            return {
                "retries": self._retries,
                "retry_budget_exhausted": self._retry_budget_exhausted,
                "hedges_launched": self._hedges_launched,
                "hedges_won": self._hedges_won,
                "breaker_transitions": dict(
                    sorted(self._breaker_transitions.items())
                ),
                "breaker_rejections": self._breaker_rejections,
                "deadline_sheds": dict(sorted(self._deadline_sheds.items())),
                "deadline_sheds_total": sum(self._deadline_sheds.values()),
                "degraded": dict(sorted(self._degraded.items())),
                "timed_out": self._timed_out,
            }

    def merge(self, other: "ResilienceMetrics") -> "ResilienceMetrics":
        """Fold another instance's counters into this one; returns self."""
        incoming = other.snapshot()
        with self._lock:
            self._retries += incoming["retries"]
            self._retry_budget_exhausted += incoming["retry_budget_exhausted"]
            self._hedges_launched += incoming["hedges_launched"]
            self._hedges_won += incoming["hedges_won"]
            for key, count in incoming["breaker_transitions"].items():
                self._breaker_transitions[key] += count
            self._breaker_rejections += incoming["breaker_rejections"]
            for where, count in incoming["deadline_sheds"].items():
                self._deadline_sheds[where] += count
            for rung, count in incoming["degraded"].items():
                self._degraded[rung] += count
            self._timed_out += incoming["timed_out"]
        return self

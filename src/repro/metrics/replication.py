"""Replication observability: lag, shipping volume, failover accounting.

The replication manager (:mod:`repro.replication`) keeps exactly one
:class:`ReplicationMetrics`. Everything is thread-safe — the heartbeat
loop, serving workers reporting read failures, and the reporting layer
all touch it concurrently.
"""

from __future__ import annotations

import threading

from repro.metrics.latency import LatencyRecorder
from repro.metrics.serving import Histogram


class ReplicationMetrics:
    """Counters and distributions for one replication manager."""

    def __init__(self, name: str = "replication"):
        self.name = name
        self._lock = threading.Lock()
        #: per-ship observed lag in records (how far behind a follower
        #: was when shipping started) — the bounded-staleness evidence.
        self.lag = Histogram(f"{name}:lag_records")
        #: wall-clock seconds from failure verdict to promoted serving.
        self.promotion_time = LatencyRecorder(f"{name}:promotion")
        self._records_shipped = 0
        self._snapshot_transfers = 0
        self._failovers = 0
        self._promotions = 0
        self._demotions = 0
        self._stale_reads = 0
        self._failure_reports = 0

    # -- writers -------------------------------------------------------------

    def on_shipped(self, records: int) -> None:
        with self._lock:
            self._records_shipped += records

    def on_snapshot_transfer(self) -> None:
        with self._lock:
            self._snapshot_transfers += 1

    def on_failover(self) -> None:
        """One node's partitions moved to followers (counted per node)."""
        with self._lock:
            self._failovers += 1

    def on_promotion(self) -> None:
        """One partition's follower began serving (counted per partition)."""
        with self._lock:
            self._promotions += 1

    def on_demotion(self) -> None:
        with self._lock:
            self._demotions += 1

    def on_stale_read(self) -> None:
        with self._lock:
            self._stale_reads += 1

    def on_failure_report(self) -> None:
        with self._lock:
            self._failure_reports += 1

    # -- readers -------------------------------------------------------------

    @property
    def records_shipped(self) -> int:
        with self._lock:
            return self._records_shipped

    @property
    def snapshot_transfers(self) -> int:
        with self._lock:
            return self._snapshot_transfers

    @property
    def failover_count(self) -> int:
        with self._lock:
            return self._failovers

    @property
    def promotion_count(self) -> int:
        with self._lock:
            return self._promotions

    @property
    def stale_reads(self) -> int:
        with self._lock:
            return self._stale_reads

    def snapshot(self) -> dict:
        """A plain-dict snapshot for status endpoints and benchmarks."""
        with self._lock:
            counters = {
                "records_shipped": self._records_shipped,
                "snapshot_transfers": self._snapshot_transfers,
                "failovers": self._failovers,
                "promotions": self._promotions,
                "demotions": self._demotions,
                "stale_reads": self._stale_reads,
                "failure_reports": self._failure_reports,
            }
        counters["lag_mean_records"] = self.lag.mean()
        # String bucket keys so the snapshot reads the same in-process
        # and through either wire codec (JSON coerces keys to strings).
        counters["lag_counts"] = {
            str(bucket): count for bucket, count in self.lag.counts().items()
        }
        if len(self.promotion_time):
            summary = self.promotion_time.summary()
            counters["promotion_mean_s"] = summary.mean
            counters["promotion_max_s"] = summary.max
        else:
            counters["promotion_mean_s"] = 0.0
            counters["promotion_max_s"] = 0.0
        return counters

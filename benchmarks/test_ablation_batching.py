"""Ablation: no batching vs fixed-delay vs adaptive (AIMD) batching.

Clipper (NSDI 2017), the successor to Velox, showed that an adaptive
batching queue in front of the model layer is the highest-leverage
serving optimization: coalescing concurrent requests into one vectorized
evaluation amortizes per-request overhead, and AIMD sizing rides just
under the latency SLO. This ablation offers increasing closed-loop load
(concurrent clients) to a deployment behind each batching policy and
reports throughput, p99 end-to-end latency, mean batch size, and SLO
attainment; a final experiment drives the engine far past capacity and
shows load shedding bounding latency instead of letting it collapse.

Shape assertions: at the highest load level adaptive batching beats
no-batching on throughput while holding the configured SLO, and under
overload requests are shed (typed rejections) while served requests keep
bounded latency.

Set ``BATCHING_SMOKE=1`` for the fast CI configuration.
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np
import pytest

from repro.common.errors import OverloadedError
from repro.serving import ServingConfig

from conftest import build_mf_serving, write_result

SMOKE = os.environ.get("BATCHING_SMOKE", "") not in ("", "0")

DIMENSION = 34
NUM_ITEMS = 1000
NUM_USERS = 64
SLO_P99 = 0.1

#: Closed-loop offered-load levels (concurrent clients).
LOAD_LEVELS = [1, 8] if SMOKE else [1, 4, 16]
REQUESTS_PER_CLIENT = 60 if SMOKE else 250

MODES = {
    "no_batching": dict(batching="none"),
    "fixed_delay": dict(batching="fixed_delay", batch_delay=0.002),
    # Clipper-style: serve whatever is queued the moment a worker frees
    # (no linger); AIMD only caps the batch.
    "adaptive": dict(batching="adaptive", batch_delay=0.0),
}


def run_load_level(mode: str, clients: int) -> dict[str, float]:
    """Drive one policy at one closed-loop load level; fresh deployment
    per run so caches and AIMD state never leak across series."""
    velox = build_mf_serving(
        DIMENSION, NUM_ITEMS, num_users=NUM_USERS, num_nodes=1
    )
    config = ServingConfig(
        num_workers=2,
        max_queue_depth=4096,
        max_queue_age=5.0,
        max_batch_size=64,
        slo_p99=SLO_P99,
        **MODES[mode],
    )
    engine = velox.serving_engine(config)
    rng = np.random.default_rng(17)
    plans = [
        list(
            zip(
                rng.integers(0, NUM_USERS, REQUESTS_PER_CLIENT).tolist(),
                rng.integers(0, NUM_ITEMS, REQUESTS_PER_CLIENT).tolist(),
            )
        )
        for _ in range(clients)
    ]
    errors: list[Exception] = []

    def client(plan) -> None:
        try:
            for uid, item in plan:
                engine.predict(uid, item, timeout=30)
        except Exception as err:  # pragma: no cover - surfaced below
            errors.append(err)

    with engine:
        threads = [
            threading.Thread(target=client, args=(plan,)) for plan in plans
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        snapshots = engine.metrics_snapshot()
    assert errors == []
    total = clients * REQUESTS_PER_CLIENT
    (snapshot,) = snapshots.values()  # single node -> single queue
    assert snapshot["completed"] == total
    return {
        "throughput_rps": total / elapsed,
        "p99_s": snapshot["end_to_end_p99_s"],
        "batch_mean": snapshot["batch_size_mean"],
        "slo_attainment": snapshot["slo_attainment"],
    }


def test_batching_summary(benchmark):
    results = {
        (mode, clients): run_load_level(mode, clients)
        for mode in MODES
        for clients in LOAD_LEVELS
    }
    lines = [
        "policy       clients  throughput_rps  p99_ms    batch_mean  slo_attainment"
    ]
    for (mode, clients), row in results.items():
        lines.append(
            f"{mode:<13}{clients:<9d}{row['throughput_rps']:<16.1f}"
            f"{row['p99_s'] * 1e3:<10.3f}{row['batch_mean']:<12.2f}"
            f"{row['slo_attainment']:.3f}"
        )
    write_result("ablation_batching", lines)

    top = LOAD_LEVELS[-1]
    adaptive = results[("adaptive", top)]
    none = results[("no_batching", top)]
    # The tentpole claim: at the highest offered load, adaptive batching
    # wins on throughput while holding the configured p99 SLO.
    assert adaptive["throughput_rps"] > none["throughput_rps"]
    assert adaptive["slo_attainment"] >= 0.9
    # Batching actually coalesced work (mean batch > 1 under load).
    assert adaptive["batch_mean"] > 1.0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_overload_sheds_instead_of_collapsing(benchmark):
    """Far past capacity: depth/age bounds shed requests with a typed
    error while latency for everything actually served stays bounded."""
    velox = build_mf_serving(
        DIMENSION, NUM_ITEMS, num_users=NUM_USERS, num_nodes=1
    )
    max_age = 0.05
    engine = velox.serving_engine(
        ServingConfig(
            num_workers=1,
            max_queue_depth=64,
            max_queue_age=max_age,
            batching="adaptive",
            max_batch_size=16,
            slo_p99=SLO_P99,
        )
    )
    burst = 1000 if SMOKE else 4000
    rng = np.random.default_rng(23)
    shed_at_admission = 0
    futures = []
    with engine:
        for uid, item in zip(
            rng.integers(0, NUM_USERS, burst), rng.integers(0, NUM_ITEMS, burst)
        ):
            try:
                futures.append(engine.submit_predict(int(uid), int(item)))
            except OverloadedError:
                shed_at_admission += 1
        served, shed_by_age = 0, 0
        for future in futures:
            try:
                future.result(timeout=30)
                served += 1
            except OverloadedError:
                shed_by_age += 1
        (snapshot,) = engine.metrics_snapshot().values()
    lines = [
        f"burst_size          {burst}",
        f"served              {served}",
        f"shed_admission      {shed_at_admission}",
        f"shed_age            {shed_by_age}",
        f"served_p99_ms       {snapshot['end_to_end_p99_s'] * 1e3:.3f}",
    ]
    write_result("ablation_batching_overload", lines)
    total_shed = shed_at_admission + shed_by_age
    assert served + total_shed == burst
    assert total_shed > 0  # overload was actually shed, not absorbed
    assert served > 0
    # Served requests never waited past the age bound, so their latency
    # is bounded by queue age + one batch's service time — far from the
    # unbounded queueing delay an unprotected queue would exhibit.
    assert snapshot["end_to_end_p99_s"] < max_age + SLO_P99
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

"""Leave-one-out cross-validation (paper Section 4.3) and its manager hook."""

import numpy as np
import pytest

from repro import Velox, VeloxConfig
from repro.common.errors import ValidationError
from repro.core.online import (
    NormalEquationsUpdater,
    ShermanMorrisonUpdater,
    UserModelState,
    cross_validation_score,
    leave_one_out_errors,
)
from tests.conftest import make_initial_weights, make_mf_model


def fit_state(rng, dimension=4, count=12, lam=0.8, prior=None):
    state = UserModelState(dimension, lam, prior)
    updater = NormalEquationsUpdater()
    for __ in range(count):
        features = rng.normal(size=dimension)
        label = float(rng.normal())
        updater.update(state, features, label)
    return state


def brute_force_loo(state: UserModelState) -> np.ndarray:
    """Refit without each observation and measure its held-out error."""
    f_matrix = np.vstack(state.feature_history)
    labels = np.asarray(state.label_history)
    n, d = f_matrix.shape
    lam = state.regularization
    errors = np.empty(n)
    for leave in range(n):
        keep = [i for i in range(n) if i != leave]
        f_keep, y_keep = f_matrix[keep], labels[keep]
        gram = f_keep.T @ f_keep + lam * np.eye(d)
        residual = y_keep - f_keep @ state.prior_mean
        weights = state.prior_mean + np.linalg.solve(gram, f_keep.T @ residual)
        errors[leave] = labels[leave] - float(weights @ f_matrix[leave])
    return errors


class TestLeaveOneOut:
    def test_matches_brute_force(self, rng):
        state = fit_state(rng)
        fast = leave_one_out_errors(state)
        slow = brute_force_loo(state)
        assert np.allclose(fast, slow, atol=1e-8)

    def test_matches_brute_force_with_prior(self, rng):
        prior = rng.normal(size=3)
        state = fit_state(rng, dimension=3, count=8, prior=prior)
        assert np.allclose(
            leave_one_out_errors(state), brute_force_loo(state), atol=1e-8
        )

    def test_score_is_mean_squared_loo(self, rng):
        state = fit_state(rng)
        errors = leave_one_out_errors(state)
        assert cross_validation_score(state) == pytest.approx(
            float(np.mean(errors**2))
        )

    def test_loo_exceeds_training_error(self, rng):
        """Generalization error should not be smaller than training error."""
        state = fit_state(rng, count=10)
        f_matrix = np.vstack(state.feature_history)
        labels = np.asarray(state.label_history)
        train_mse = float(np.mean((labels - f_matrix @ state.weights) ** 2))
        assert cross_validation_score(state) >= train_mse

    def test_requires_history(self, rng):
        state = UserModelState(3, 0.5)
        ShermanMorrisonUpdater().update(state, rng.normal(size=3), 1.0)
        with pytest.raises(ValidationError):
            leave_one_out_errors(state)


class TestManagerHook:
    def test_loo_generalization_with_history_updater(self, trained_als, small_split):
        model = make_mf_model(trained_als)
        velox = Velox.deploy(
            VeloxConfig(num_nodes=2, online_update_method="normal_equations"),
            auto_retrain=False,
        )
        velox.add_model(model, make_initial_weights(model, trained_als))
        uid = small_split.stream[0].uid
        for r in small_split.stream:
            if r.uid == uid:
                velox.observe(uid=uid, x=r.item_id, y=r.rating)
        score = velox.manager.user_generalization("songs", uid)
        assert np.isfinite(score) and score >= 0

    def test_progressive_fallback_for_history_free_updater(self, deployed_velox):
        deployed_velox.observe(uid=2, x=3, y=4.0)
        deployed_velox.observe(uid=2, x=5, y=3.0)
        score = deployed_velox.manager.user_generalization("songs", 2)
        state = deployed_velox.manager.user_state_table("songs").get(2)
        assert score == pytest.approx(state.progressive_loss.mean)

    def test_no_observations_rejected(self, deployed_velox):
        with pytest.raises(ValidationError):
            deployed_velox.manager.user_generalization("songs", 1)

"""repro: a from-scratch reproduction of Velox (CIDR 2015).

Velox is the model management and serving layer of the Berkeley Data
Analytics Stack: low-latency personalized predictions, online model
maintenance, automatic quality monitoring and retraining, and
bandit-based feedback control — layered over a distributed in-memory
store (here :mod:`repro.store`) and a batch compute framework (here
:mod:`repro.batch`), both also built from scratch in this package.

Quickstart::

    from repro import Velox, VeloxConfig
    from repro.core.models import MatrixFactorizationModel

    velox = Velox.deploy(VeloxConfig(num_nodes=4))
    velox.add_model(model, initial_user_weights=weights)
    item, score = velox.predict("songs", uid=7, x=42)
    velox.observe(uid=7, x=42, y=4.5)
"""

from repro.common import VeloxConfig
from repro.core import Velox
from repro.core.model import VeloxModel, ModelRegistry
from repro.core.prediction import PredictionService, PredictionResult
from repro.core.manager import ModelManager
from repro.serving import ServingConfig, ServingEngine

__version__ = "0.1.0"

__all__ = [
    "Velox",
    "VeloxConfig",
    "VeloxModel",
    "ModelRegistry",
    "PredictionService",
    "PredictionResult",
    "ModelManager",
    "ServingConfig",
    "ServingEngine",
    "__version__",
]

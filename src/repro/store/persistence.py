"""Durable persistence for veloxstore: checkpoint to and restore from disk.

Tachyon checkpoints its in-memory data to an under-filesystem (HDFS) so
state survives whole-cluster restarts; this module is that layer for
veloxstore. A checkpoint directory contains one pickle file per table
(values plus per-key versions, partition layout preserved) and one per
observation log, with a manifest recording the format version and
contents.

Pickle is the serialization format because table values are arbitrary
Python objects (numpy arrays, UserModelState instances); checkpoints
are trusted local state, not an interchange format.
"""

from __future__ import annotations

import json
import pickle
from pathlib import Path

from repro.common.errors import StorageError
from repro.store.oblog import Observation, ObservationLog
from repro.store.store import VeloxStore
from repro.store.table import Table

FORMAT_VERSION = 1
MANIFEST_NAME = "MANIFEST.json"


def checkpoint_store(store: VeloxStore, directory: str | Path) -> Path:
    """Write the whole store to ``directory``; returns the path.

    Existing checkpoint files in the directory are overwritten. Tables
    with failed partitions cannot be checkpointed (recover them first) —
    a checkpoint must be a consistent full snapshot.
    """
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)

    tables = {}
    for name in store.table_names():
        table = store.table(name)
        for index in range(table.num_partitions):
            if table.partition(index).failed:
                raise StorageError(
                    f"cannot checkpoint: table {name!r} partition {index} "
                    "is failed; recover it first"
                )
        partitions = []
        for index in range(table.num_partitions):
            partition = table.partition(index)
            partitions.append(
                {key: partition.get(key) for key in partition.keys()}
            )
        file_name = f"table_{_safe_name(name)}.pkl"
        with open(path / file_name, "wb") as handle:
            pickle.dump(partitions, handle)
        tables[name] = {
            "file": file_name,
            "num_partitions": table.num_partitions,
        }

    logs = {}
    for name in store.log_names():
        records = store.log(name).read_all()
        file_name = f"log_{_safe_name(name)}.pkl"
        with open(path / file_name, "wb") as handle:
            pickle.dump(records, handle)
        logs[name] = {"file": file_name, "records": len(records)}

    manifest = {
        "format_version": FORMAT_VERSION,
        "default_partitions": store.default_partitions,
        "tables": tables,
        "logs": logs,
    }
    with open(path / MANIFEST_NAME, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
    return path


def restore_store(
    directory: str | Path,
    partitioners: dict | None = None,
) -> VeloxStore:
    """Rebuild a :class:`VeloxStore` from a checkpoint directory.

    Custom partitioners are not serializable, so tables that used one
    must be given it again via ``partitioners={table_name: callable}``;
    keys land back in their recorded partitions either way (restore
    writes partition-by-partition), so lookups stay consistent as long
    as the supplied partitioner matches the original.
    """
    path = Path(directory)
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.exists():
        raise StorageError(f"no checkpoint manifest at {manifest_path}")
    with open(manifest_path, encoding="utf-8") as handle:
        manifest = json.load(handle)
    if manifest.get("format_version") != FORMAT_VERSION:
        raise StorageError(
            f"unsupported checkpoint format {manifest.get('format_version')!r}"
        )

    store = VeloxStore(default_partitions=manifest["default_partitions"])
    supplied = partitioners or {}
    for name, info in manifest["tables"].items():
        with open(path / info["file"], "rb") as handle:
            partitions = pickle.load(handle)
        table = store.create_table(
            name,
            num_partitions=info["num_partitions"],
            partitioner=supplied.get(name),
        )
        _load_table(table, partitions)
    for name, info in manifest["logs"].items():
        with open(path / info["file"], "rb") as handle:
            records = pickle.load(handle)
        log = store.create_log(name)
        for record in records:
            if not isinstance(record, Observation):
                raise StorageError(
                    f"log {name!r} contains a non-observation record"
                )
            log.append(record)
    return store


def _load_table(table: Table, partitions: list[dict]) -> None:
    """Install checkpointed (value, version) entries partition-by-
    partition at their recorded versions."""
    for index, entries in enumerate(partitions):
        partition = table.partition(index)
        for key, (value, version) in entries.items():
            partition.install(key, value, version)


def _safe_name(name: str) -> str:
    """Filesystem-safe, collision-free encoding of a table/log name."""
    import hashlib

    cleaned = "".join(c if c.isalnum() or c in "-_" else "_" for c in name)
    if cleaned != name:
        digest = hashlib.blake2b(name.encode("utf-8"), digest_size=4).hexdigest()
        cleaned = f"{cleaned}_{digest}"
    return cleaned

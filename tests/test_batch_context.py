"""BatchContext: table scans, id allocation, metrics plumbing."""

import pytest

from repro.batch import BatchContext
from repro.store import VeloxStore


@pytest.fixture
def ctx():
    return BatchContext(default_parallelism=3)


class TestFromTable:
    def test_scan_partitioned_table(self, ctx):
        store = VeloxStore(default_partitions=4)
        table = store.create_table("ratings", partitioner=lambda k: k % 4)
        for i in range(40):
            table.put(i, i * 2)
        dataset = ctx.from_table(table)
        assert dataset.num_partitions == 4
        assert dict(dataset.collect()) == {i: i * 2 for i in range(40)}

    def test_scan_sees_writes_made_before_execution(self, ctx):
        """Laziness: the scan reads table state at *job* time, so writes
        between dataset creation and the action are visible — exactly
        how offline retraining sees the freshest observation data."""
        store = VeloxStore(default_partitions=2)
        table = store.create_table("t")
        dataset = ctx.from_table(table).map(lambda kv: kv[1])
        table.put("k", 42)
        assert dataset.collect() == [42]

    def test_batch_aggregation_over_table(self, ctx):
        store = VeloxStore(default_partitions=3)
        table = store.create_table("scores")
        for i in range(30):
            table.put(i, float(i))
        total = ctx.from_table(table).values().sum()
        assert total == sum(range(30))

    def test_table_roundtrip_through_batch(self, ctx):
        """Read one table, transform, write another — the full
        batch<->storage loop."""
        store = VeloxStore(default_partitions=2)
        source = store.create_table("in")
        sink = store.create_table("out")
        for i in range(10):
            source.put(i, i)
        ctx.from_table(source).map_values(lambda v: v * v).save_to_table(sink)
        assert sink.get(7) == 49


class TestIdAllocation:
    def test_dataset_ids_unique(self, ctx):
        a = ctx.parallelize([1])
        b = ctx.parallelize([2])
        assert a.dataset_id != b.dataset_id

    def test_shuffle_ids_unique(self, ctx):
        pairs = ctx.parallelize([(1, 1)], 1)
        r1 = pairs.reduce_by_key(lambda a, b: a)
        r2 = pairs.reduce_by_key(lambda a, b: a)
        assert r1.shuffle_dependency.shuffle_id != r2.shuffle_dependency.shuffle_id


class TestMetricsProperty:
    def test_metrics_alias_scheduler_metrics(self, ctx):
        ctx.parallelize(range(4), 2).count()
        assert ctx.metrics is ctx.scheduler.metrics
        assert ctx.metrics.jobs == 1

    def test_metrics_reset(self, ctx):
        ctx.parallelize(range(4), 2).count()
        ctx.metrics.reset()
        assert ctx.metrics.jobs == 0
        assert ctx.metrics.result_tasks == 0

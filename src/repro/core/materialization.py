"""Prediction materialization strategies (paper Section 2.1).

The paper's straw-man analysis contrasts two ways to serve a trained
model — pre-compute *every* (user, item) prediction into a low-latency
store, or compute predictions online in the application tier — and
Velox's answer is a hybrid: compute online, cache aggressively. These
strategy objects make the trade-off measurable: each serves the same
(uid, item) queries and reports its build cost, storage footprint, and
per-query work, which the materialization ablation benchmark compares.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.common.errors import ValidationError
from repro.store.lru import LRUCache


@dataclass(frozen=True)
class MaterializationReport:
    """Costs of one strategy over one workload."""

    strategy: str
    build_entries: int
    storage_entries: int
    queries: int
    computed_on_demand: int


class MaterializationStrategy(ABC):
    """Serves w_u^T f(i) for a fixed population of users and items."""

    name = "abstract"

    def __init__(self, user_weights: dict[int, np.ndarray], model):
        if not user_weights:
            raise ValidationError("strategy needs at least one user")
        self.user_weights = user_weights
        self.model = model
        self.queries = 0
        self.computed_on_demand = 0

    @abstractmethod
    def build(self) -> int:
        """Precompute whatever the strategy materializes; returns the
        number of entries built."""

    @abstractmethod
    def serve(self, uid: int, item_id: int) -> float:
        """Answer one prediction query."""

    @abstractmethod
    def storage_entries(self) -> int:
        """Number of stored scalars/vectors the strategy holds."""

    def report(self) -> MaterializationReport:
        """Accumulated cost/usage counters for this strategy."""
        return MaterializationReport(
            strategy=self.name,
            build_entries=self._built,
            storage_entries=self.storage_entries(),
            queries=self.queries,
            computed_on_demand=self.computed_on_demand,
        )

    _built = 0

    def _score(self, uid: int, item_id: int) -> float:
        weights = self.user_weights.get(uid)
        if weights is None:
            raise ValidationError(f"unknown user {uid}")
        return float(weights @ self.model.features(item_id))


class FullPrematerialization(MaterializationStrategy):
    """Precompute all |users| x |items| predictions (the first straw man).

    Serving is a dict lookup; the cost is the enormous build time and
    footprint, almost all of it for pairs never queried.
    """

    name = "full_prematerialization"

    def __init__(self, user_weights, model, num_items: int):
        super().__init__(user_weights, model)
        self.num_items = num_items
        self._table: dict[tuple[int, int], float] = {}

    def build(self) -> int:
        """Precompute whatever this strategy materializes."""
        for uid in self.user_weights:
            for item_id in range(self.num_items):
                self._table[(uid, item_id)] = self._score(uid, item_id)
        self._built = len(self._table)
        return self._built

    def serve(self, uid: int, item_id: int) -> float:
        """Answer one (uid, item) prediction query."""
        self.queries += 1
        try:
            return self._table[(uid, item_id)]
        except KeyError:
            # Pairs outside the materialized population (e.g. new users)
            # fall back to online computation.
            self.computed_on_demand += 1
            return self._score(uid, item_id)

    def storage_entries(self) -> int:
        """Number of stored entries the strategy holds."""
        return len(self._table)


class OnlineComputation(MaterializationStrategy):
    """Compute every prediction on demand (the second straw man):
    zero build cost and footprint, full compute on every query."""

    name = "online_computation"

    def build(self) -> int:
        """Precompute whatever this strategy materializes."""
        self._built = 0
        return 0

    def serve(self, uid: int, item_id: int) -> float:
        """Answer one (uid, item) prediction query."""
        self.queries += 1
        self.computed_on_demand += 1
        return self._score(uid, item_id)

    def storage_entries(self) -> int:
        """Number of stored entries the strategy holds."""
        return 0


class HybridCaching(MaterializationStrategy):
    """Velox's approach: compute online through an LRU prediction cache.

    Build cost zero; footprint bounded by the cache capacity; per-query
    compute only on cache misses — which Zipfian workloads make rare.
    """

    name = "hybrid_caching"

    def __init__(self, user_weights, model, cache_capacity: int = 10_000):
        super().__init__(user_weights, model)
        self._cache: LRUCache = LRUCache(cache_capacity)

    def build(self) -> int:
        """Precompute whatever this strategy materializes."""
        self._built = 0
        return 0

    def serve(self, uid: int, item_id: int) -> float:
        """Answer one (uid, item) prediction query."""
        self.queries += 1
        cached = self._cache.get((uid, item_id))
        if cached is not None:
            return cached
        self.computed_on_demand += 1
        score = self._score(uid, item_id)
        self._cache.put((uid, item_id), score)
        return score

    def storage_entries(self) -> int:
        """Number of stored entries the strategy holds."""
        return len(self._cache)

    @property
    def cache(self) -> LRUCache:
        """The underlying LRU cache (for inspection in tests/benches)."""
        return self._cache

"""Clock abstraction: wall-clock for benchmarks, virtual time for simulation.

The cluster network model charges virtual latency for remote operations;
those charges accumulate on a :class:`SimulatedClock` so experiments can
report modeled latency deterministically. Real compute latency (Figures 3
and 4) is measured against :class:`SystemClock`.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod


class Clock(ABC):
    """Minimal clock interface: read time and advance/sleep."""

    @abstractmethod
    def now(self) -> float:
        """Current time in seconds (monotonic within one clock instance)."""

    @abstractmethod
    def advance(self, seconds: float) -> None:
        """Move time forward by ``seconds`` (sleep or virtual jump)."""


class SystemClock(Clock):
    """Wall-clock time backed by ``time.perf_counter``."""

    def now(self) -> float:
        """Current time in seconds."""
        return time.perf_counter()

    def advance(self, seconds: float) -> None:
        """Move time forward by ``seconds``."""
        if seconds < 0:
            raise ValueError(f"cannot sleep a negative duration: {seconds}")
        time.sleep(seconds)


class SimulatedClock(Clock):
    """Deterministic virtual clock; ``advance`` is free and instantaneous."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        """Current time in seconds."""
        return self._now

    def advance(self, seconds: float) -> None:
        """Move time forward by ``seconds``."""
        if seconds < 0:
            raise ValueError(f"cannot advance time backwards: {seconds}")
        self._now += seconds

"""Error metrics and confidence intervals."""

import math

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.metrics import (
    absolute_error,
    mae,
    mean_confidence_interval,
    precision_at_k,
    rmse,
    squared_error,
)
from repro.metrics.errors import _normal_quantile


class TestPointErrors:
    def test_squared_error(self):
        assert squared_error(3.0, 1.0) == 4.0
        assert squared_error(1.0, 3.0) == 4.0

    def test_absolute_error(self):
        assert absolute_error(3.0, 1.5) == 1.5


class TestAggregateErrors:
    def test_rmse_known_value(self):
        assert rmse([1, 2, 3], [1, 2, 5]) == pytest.approx(math.sqrt(4 / 3))

    def test_mae_known_value(self):
        assert mae([1, 2, 3], [2, 2, 5]) == pytest.approx(1.0)

    def test_perfect_prediction(self):
        assert rmse([1, 2], [1, 2]) == 0.0
        assert mae([1, 2], [1, 2]) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            rmse([1, 2], [1])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            mae([], [])

    def test_accepts_numpy_arrays(self):
        assert rmse(np.ones(4), np.zeros(4)) == pytest.approx(1.0)


class TestPrecisionAtK:
    def test_all_relevant(self):
        assert precision_at_k({1, 2, 3}, [1, 2, 3], 3) == 1.0

    def test_partial(self):
        assert precision_at_k({1, 9}, [1, 2, 3, 9], 2) == 0.5

    def test_k_larger_than_list(self):
        assert precision_at_k({1}, [1, 2], 10) == 0.5

    def test_empty_ranked_list(self):
        assert precision_at_k({1}, [], 3) == 0.0

    def test_invalid_k(self):
        with pytest.raises(ValidationError):
            precision_at_k({1}, [1], 0)


class TestNdcgAtK:
    def test_perfect_ranking_scores_one(self):
        from repro.metrics import ndcg_at_k

        relevance = {1: 3.0, 2: 2.0, 3: 1.0}
        assert ndcg_at_k(relevance, [1, 2, 3], 3) == pytest.approx(1.0)

    def test_reversed_ranking_scores_below_one(self):
        from repro.metrics import ndcg_at_k

        relevance = {1: 3.0, 2: 2.0, 3: 1.0}
        score = ndcg_at_k(relevance, [3, 2, 1], 3)
        assert 0 < score < 1

    def test_known_value(self):
        from repro.metrics import ndcg_at_k

        # DCG = 1/log2(2) + 3/log2(3); IDCG = 3/log2(2) + 1/log2(3)
        relevance = {"a": 3.0, "b": 1.0}
        expected = (1.0 + 3.0 / math.log2(3)) / (3.0 + 1.0 / math.log2(3))
        assert ndcg_at_k(relevance, ["b", "a"], 2) == pytest.approx(expected)

    def test_irrelevant_items_score_zero_gain(self):
        from repro.metrics import ndcg_at_k

        assert ndcg_at_k({"a": 2.0}, ["x", "y"], 2) == 0.0

    def test_no_relevance_at_all(self):
        from repro.metrics import ndcg_at_k

        assert ndcg_at_k({}, ["x"], 1) == 0.0

    def test_k_validation(self):
        from repro.metrics import ndcg_at_k

        with pytest.raises(ValidationError):
            ndcg_at_k({"a": 1.0}, ["a"], 0)


class TestConfidenceInterval:
    def test_mean_is_sample_mean(self):
        mean, __ = mean_confidence_interval([1.0, 2.0, 3.0])
        assert mean == pytest.approx(2.0)

    def test_constant_samples_zero_width(self):
        __, half = mean_confidence_interval([5.0] * 100)
        assert half == 0.0

    def test_single_sample_zero_width(self):
        mean, half = mean_confidence_interval([4.2])
        assert mean == 4.2 and half == 0.0

    def test_width_shrinks_with_samples(self):
        rng = np.random.default_rng(0)
        small = mean_confidence_interval(rng.normal(0, 1, 50))[1]
        large = mean_confidence_interval(rng.normal(0, 1, 5000))[1]
        assert large < small

    def test_95_coverage_roughly_correct(self):
        # Over many repetitions, ~95% of intervals should cover the truth.
        rng = np.random.default_rng(7)
        covered = 0
        trials = 300
        for __ in range(trials):
            samples = rng.normal(10.0, 2.0, 40)
            mean, half = mean_confidence_interval(samples)
            if abs(mean - 10.0) <= half:
                covered += 1
        assert 0.90 <= covered / trials <= 0.99

    def test_invalid_inputs(self):
        with pytest.raises(ValidationError):
            mean_confidence_interval([])
        with pytest.raises(ValidationError):
            mean_confidence_interval([1.0], confidence=1.5)


class TestNormalQuantile:
    @pytest.mark.parametrize(
        "p,expected",
        [(0.5, 0.0), (0.975, 1.959964), (0.025, -1.959964), (0.995, 2.575829)],
    )
    def test_known_quantiles(self, p, expected):
        assert _normal_quantile(p) == pytest.approx(expected, abs=1e-4)

    def test_tails(self):
        assert _normal_quantile(1e-9) < -5
        assert _normal_quantile(1 - 1e-9) > 5

    def test_bounds_rejected(self):
        with pytest.raises(ValidationError):
            _normal_quantile(0.0)

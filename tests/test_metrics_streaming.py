"""Streaming statistics: Welford, windowed mean, EWMA."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.metrics import Ewma, StreamingMeanVar, WindowedMean


class TestStreamingMeanVar:
    def test_matches_numpy(self):
        rng = np.random.default_rng(3)
        data = rng.normal(5, 2, 500)
        acc = StreamingMeanVar()
        acc.update_many(data)
        assert acc.mean == pytest.approx(float(np.mean(data)))
        assert acc.variance == pytest.approx(float(np.var(data, ddof=1)))
        assert acc.std == pytest.approx(float(np.std(data, ddof=1)))

    def test_empty_mean_rejected(self):
        with pytest.raises(ValidationError):
            __ = StreamingMeanVar().mean

    def test_single_value(self):
        acc = StreamingMeanVar()
        acc.update(3.0)
        assert acc.mean == 3.0
        assert acc.variance == 0.0

    def test_nan_rejected(self):
        with pytest.raises(ValidationError):
            StreamingMeanVar().update(float("nan"))

    def test_merge_equals_concatenation(self):
        rng = np.random.default_rng(4)
        left_data = rng.normal(0, 1, 100)
        right_data = rng.normal(10, 3, 57)
        left, right = StreamingMeanVar(), StreamingMeanVar()
        left.update_many(left_data)
        right.update_many(right_data)
        merged = left.merge(right)
        combined = np.concatenate([left_data, right_data])
        assert merged.count == 157
        assert merged.mean == pytest.approx(float(np.mean(combined)))
        assert merged.variance == pytest.approx(float(np.var(combined, ddof=1)))

    def test_merge_with_empty(self):
        acc = StreamingMeanVar()
        acc.update(1.0)
        merged = acc.merge(StreamingMeanVar())
        assert merged.count == 1 and merged.mean == 1.0

    def test_merge_two_empties(self):
        merged = StreamingMeanVar().merge(StreamingMeanVar())
        assert merged.count == 0


class TestWindowedMean:
    def test_mean_over_partial_window(self):
        window = WindowedMean(5)
        window.update(2.0)
        window.update(4.0)
        assert window.mean == 3.0
        assert not window.full

    def test_slides(self):
        window = WindowedMean(3)
        for v in (1.0, 2.0, 3.0, 10.0):
            window.update(v)
        assert window.full
        assert window.mean == pytest.approx(5.0)  # (2+3+10)/3

    def test_long_stream_numerically_sane(self):
        window = WindowedMean(10)
        for i in range(10_000):
            window.update(float(i % 10))
        assert window.mean == pytest.approx(4.5)

    def test_empty_mean_rejected(self):
        with pytest.raises(ValidationError):
            __ = WindowedMean(3).mean

    def test_invalid_window(self):
        with pytest.raises(ValidationError):
            WindowedMean(0)

    def test_nan_rejected(self):
        with pytest.raises(ValidationError):
            WindowedMean(3).update(float("nan"))


class TestEwma:
    def test_first_value_initializes(self):
        ewma = Ewma(0.5)
        ewma.update(10.0)
        assert ewma.value == 10.0

    def test_decay(self):
        ewma = Ewma(0.5)
        ewma.update(0.0)
        ewma.update(10.0)
        assert ewma.value == pytest.approx(5.0)

    def test_alpha_one_tracks_latest(self):
        ewma = Ewma(1.0)
        ewma.update(1.0)
        ewma.update(9.0)
        assert ewma.value == 9.0

    def test_invalid_alpha(self):
        with pytest.raises(ValidationError):
            Ewma(0.0)
        with pytest.raises(ValidationError):
            Ewma(1.5)

    def test_empty_value_rejected(self):
        with pytest.raises(ValidationError):
            __ = Ewma(0.5).value

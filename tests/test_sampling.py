"""Sampling engine: reservoir correctness, stratification, retrain hook."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.sampling import ReservoirSampler, StratifiedSampler, sample_observations
from repro.store import Observation


class TestReservoirSampler:
    def test_fewer_items_than_capacity_keeps_all(self):
        sampler = ReservoirSampler(10, rng=1)
        sampler.offer_many(range(4))
        assert sorted(sampler.sample()) == [0, 1, 2, 3]

    def test_sample_size_capped_at_capacity(self):
        sampler = ReservoirSampler(5, rng=1)
        sampler.offer_many(range(100))
        assert len(sampler) == 5
        assert all(0 <= x < 100 for x in sampler.sample())

    def test_uniformity(self):
        """Every item should land in the sample with probability k/n."""
        counts = np.zeros(20)
        trials = 3000
        rng = np.random.default_rng(7)
        for __ in range(trials):
            sampler = ReservoirSampler(5, rng=rng)
            sampler.offer_many(range(20))
            for item in sampler.sample():
                counts[item] += 1
        expected = trials * 5 / 20
        assert np.all(np.abs(counts - expected) < 0.15 * expected + 40)

    def test_seen_counter(self):
        sampler = ReservoirSampler(2, rng=0)
        sampler.offer_many(range(7))
        assert sampler.seen == 7

    def test_validation(self):
        with pytest.raises(ValidationError):
            ReservoirSampler(0)


class TestStratifiedSampler:
    def test_floor_keeps_small_strata_whole(self):
        items = [("a", i) for i in range(2)] + [("b", i) for i in range(100)]
        sampler = StratifiedSampler(fraction=0.1, floor=3, rng=2)
        sampled = sampler.sample(items, key_fn=lambda t: t[0])
        by_key = {}
        for key, __ in sampled:
            by_key[key] = by_key.get(key, 0) + 1
        assert by_key["a"] == 2  # smaller than the floor: kept whole
        assert by_key["b"] == 10  # 10% of 100

    def test_fraction_one_keeps_everything(self):
        items = list(range(50))
        sampler = StratifiedSampler(fraction=1.0, rng=3)
        assert sorted(sampler.sample(items, key_fn=lambda x: x % 5)) == items

    def test_validation(self):
        with pytest.raises(ValidationError):
            StratifiedSampler(0.0)
        with pytest.raises(ValidationError):
            StratifiedSampler(0.5, floor=-1)


class TestSampleObservations:
    def make_observations(self, per_user: int, users: int) -> list:
        return [
            Observation(uid=u, item_id=i, label=3.0)
            for u in range(users)
            for i in range(per_user)
        ]

    def test_every_user_survives(self):
        observations = self.make_observations(per_user=30, users=10)
        sampled = sample_observations(observations, 0.2, min_per_user=3, rng=4)
        users = {ob.uid for ob in sampled}
        assert users == set(range(10))
        per_user = {u: sum(1 for ob in sampled if ob.uid == u) for u in users}
        assert all(count >= 3 for count in per_user.values())
        assert len(sampled) < len(observations)

    def test_fraction_one_is_identity(self):
        observations = self.make_observations(per_user=5, users=3)
        assert sample_observations(observations, 1.0) == observations


class TestSampledRetrain:
    def test_sampled_retrain_trains_and_records(self, deployed_velox, small_split):
        for r in small_split.stream:
            deployed_velox.observe(uid=r.uid, x=r.item_id, y=r.rating)
        event = deployed_velox.manager.retrain_now(
            "songs", reason="approximate", sample_fraction=0.5
        )
        assert event.sampled_observations is not None
        assert event.sampled_observations < event.observations_used
        assert deployed_velox.model().version == 1

    def test_full_retrain_reports_no_sampling(self, deployed_velox, small_split):
        for r in small_split.stream[:50]:
            deployed_velox.observe(uid=r.uid, x=r.item_id, y=r.rating)
        event = deployed_velox.retrain()
        assert event.sampled_observations is None

"""Clock behavior: monotonicity, virtual advancement, validation."""

import pytest

from repro.common.clock import SimulatedClock, SystemClock


class TestSystemClock:
    def test_now_is_monotonic(self):
        clock = SystemClock()
        a = clock.now()
        b = clock.now()
        assert b >= a

    def test_advance_sleeps(self):
        clock = SystemClock()
        start = clock.now()
        clock.advance(0.01)
        assert clock.now() - start >= 0.009

    def test_negative_sleep_rejected(self):
        with pytest.raises(ValueError):
            SystemClock().advance(-1)


class TestSimulatedClock:
    def test_starts_at_configured_time(self):
        assert SimulatedClock(5.0).now() == 5.0

    def test_advance_is_exact_and_free(self):
        clock = SimulatedClock()
        clock.advance(1.5)
        clock.advance(0.25)
        assert clock.now() == pytest.approx(1.75)

    def test_zero_advance_allowed(self):
        clock = SimulatedClock()
        clock.advance(0.0)
        assert clock.now() == 0.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimulatedClock().advance(-0.1)

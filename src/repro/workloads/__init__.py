"""Workload generators for the benchmark harness.

Produces the request streams the paper's serving claims are about:
Zipf-skewed item access (Section 5's caching argument), per-user
prediction/observation mixes, and topK query batches of configurable
itemset size (Figure 4's x-axis).
"""

from repro.workloads.streams import (
    ZipfItemSampler,
    RequestStream,
    PredictRequest,
    TopKRequest,
    ObserveRequest,
    generate_request_stream,
    generate_drifting_stream,
    generate_topk_batches,
)

__all__ = [
    "generate_drifting_stream",
    "ZipfItemSampler",
    "RequestStream",
    "PredictRequest",
    "TopKRequest",
    "ObserveRequest",
    "generate_request_stream",
    "generate_topk_batches",
]

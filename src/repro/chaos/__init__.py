"""Deterministic, seeded fault injection for the whole stack.

Declare faults as data (:class:`FaultSchedule` of :class:`FaultRule`),
activate them with :func:`install`/:func:`installed`, and replay the
exact same failure sequence from the same seed. Injection points are
compiled into the wire codec, the event-loop front end, replication,
the serving engine, and the batch tier; see
:data:`~repro.chaos.schedule.KNOWN_POINTS` for the catalogue.
"""

from repro.chaos.batch import ScheduledFailureInjector, scheduled_worker_kills
from repro.chaos.injector import (
    ChaosInjector,
    active,
    fire,
    garble,
    install,
    installed,
    latency,
    should,
    uninstall,
)
from repro.chaos.schedule import (
    KNOWN_POINTS,
    FaultEvent,
    FaultRule,
    FaultSchedule,
)

__all__ = [
    "KNOWN_POINTS",
    "ChaosInjector",
    "FaultEvent",
    "FaultRule",
    "FaultSchedule",
    "ScheduledFailureInjector",
    "active",
    "fire",
    "garble",
    "install",
    "installed",
    "latency",
    "scheduled_worker_kills",
    "should",
    "uninstall",
]

"""Personalized news: escaping the filter bubble with bandit serving.

The paper's adaptive-feedback motivation (Section 2.1): "a
recommendation system that only recommends sports articles may not
collect enough information to learn about a user's preferences for
articles on politics." This example builds a news feed where every
reader secretly loves a topic the initial model underrates, and compares
greedy serving against LinUCB / epsilon-greedy / Thompson policies on:

* how much of the catalog each policy ever shows,
* how quickly each policy discovers the reader's hidden favourite topic,
* cumulative engagement (the business metric).

Run:  python examples/newsfeed_bandits.py
"""

import numpy as np

from repro import Velox, VeloxConfig
from repro.core.bandits import (
    EpsilonGreedyPolicy,
    GreedyPolicy,
    LinUcbPolicy,
    ThompsonSamplingPolicy,
)
from repro.core.models import MatrixFactorizationModel

TOPICS = ["sports", "politics", "science", "arts", "business", "travel"]
ARTICLES_PER_TOPIC = 25
NUM_READERS = 30
SESSIONS = 600
SLATE_SIZE = 10
RANK = len(TOPICS)


def build_world(seed: int = 23):
    """Articles embed their topic; each reader has a hidden favourite
    topic the initial model knows nothing about."""
    rng = np.random.default_rng(seed)
    num_articles = len(TOPICS) * ARTICLES_PER_TOPIC
    article_topic = np.repeat(np.arange(len(TOPICS)), ARTICLES_PER_TOPIC)
    # Item factors: topic one-hot plus a little noise.
    item_factors = np.eye(len(TOPICS))[article_topic] + rng.normal(
        0, 0.05, (num_articles, RANK)
    )
    hidden_favourite = rng.integers(0, len(TOPICS), NUM_READERS)

    def engagement(uid: int, article: int) -> float:
        base = 2.5
        if article_topic[article] == hidden_favourite[uid]:
            base = 4.5
        return float(np.clip(base + rng.normal(0, 0.3), 0.5, 5.0))

    model = MatrixFactorizationModel("news", item_factors, global_mean=2.5)
    # Initial weights: mild preference for sports for everyone — the
    # editorial prior that creates the filter bubble.
    sports_vector = np.zeros(RANK)
    sports_vector[0] = 0.8
    weights = {
        uid: model.pack_user_weights(sports_vector.copy(), 0.0)
        for uid in range(NUM_READERS)
    }
    return model, weights, engagement, hidden_favourite, article_topic


def run_policy(name: str, policy) -> dict:
    model, weights, engagement, hidden_favourite, article_topic = build_world()
    velox = Velox.deploy(VeloxConfig(num_nodes=2), auto_retrain=False)
    velox.add_model(model, initial_user_weights=weights)
    rng = np.random.default_rng(5)
    num_articles = len(article_topic)

    shown: set[int] = set()
    total_engagement = 0.0
    discovered: set[int] = set()  # readers whose favourite topic got served
    for __ in range(SESSIONS):
        uid = int(rng.integers(NUM_READERS))
        slate = [int(a) for a in rng.choice(num_articles, SLATE_SIZE, replace=False)]
        choice = velox.top_k(None, uid, slate, k=1, policy=policy)[0]
        article = int(choice[0])
        shown.add(article)
        reward = engagement(uid, article)
        total_engagement += reward
        if article_topic[article] == hidden_favourite[uid]:
            discovered.add(uid)
        velox.observe(uid=uid, x=article, y=reward)
    return {
        "catalog_coverage": len(shown) / num_articles,
        "readers_discovered": len(discovered) / NUM_READERS,
        "avg_engagement": total_engagement / SESSIONS,
    }


def main() -> None:
    policies = {
        "greedy": GreedyPolicy(),
        "epsilon_greedy(0.1)": EpsilonGreedyPolicy(epsilon=0.1, rng=1),
        "linucb(a=1.0)": LinUcbPolicy(alpha=1.0),
        "thompson": ThompsonSamplingPolicy(scale=1.0, rng=2),
    }
    print(f"{SESSIONS} sessions, {NUM_READERS} readers, "
          f"{len(TOPICS) * ARTICLES_PER_TOPIC} articles\n")
    print(f"{'policy':<22}{'coverage':<12}{'readers_found':<16}{'avg_engagement'}")
    for name, policy in policies.items():
        result = run_policy(name, policy)
        print(
            f"{name:<22}{result['catalog_coverage']:<12.2f}"
            f"{result['readers_discovered']:<16.2f}"
            f"{result['avg_engagement']:.3f}"
        )
    print(
        "\nGreedy stays inside the sports bubble; exploring policies show\n"
        "more of the catalog, find each reader's hidden favourite topic,\n"
        "and convert that knowledge into higher engagement."
    )


if __name__ == "__main__":
    main()

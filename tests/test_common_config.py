"""VeloxConfig validation."""

import pytest

from repro.common import ConfigError, VeloxConfig


class TestVeloxConfigDefaults:
    def test_defaults_are_valid(self):
        cfg = VeloxConfig()
        assert cfg.num_nodes >= 1
        assert cfg.dimension >= 1
        assert cfg.online_update_method in (
            "normal_equations",
            "sherman_morrison",
            "sgd",
        )

    def test_frozen(self):
        cfg = VeloxConfig()
        with pytest.raises(AttributeError):
            cfg.num_nodes = 10

    def test_extra_dict_available(self):
        cfg = VeloxConfig(extra={"note": "hi"})
        assert cfg.extra["note"] == "hi"


class TestVeloxConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_nodes": 0},
            {"num_nodes": -3},
            {"dimension": 0},
            {"regularization": -0.1},
            {"feature_cache_capacity": -1},
            {"prediction_cache_capacity": -5},
            {"staleness_loss_ratio": 1.0},
            {"staleness_loss_ratio": 0.5},
            {"staleness_window": 0},
            {"online_update_method": "magic"},
            {"batch_executor": "greenlet"},
            {"batch_executor": ""},
            {"bandit_exploration": -1.0},
            {"remote_hop_latency": -1e-3},
            {"remote_bandwidth": 0.0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            VeloxConfig(**kwargs)

    def test_valid_update_methods_accepted(self):
        for method in ("normal_equations", "sherman_morrison", "sgd"):
            assert VeloxConfig(online_update_method=method).online_update_method == method

    def test_zero_cache_capacity_allowed(self):
        cfg = VeloxConfig(feature_cache_capacity=0, prediction_cache_capacity=0)
        assert cfg.feature_cache_capacity == 0

    def test_valid_batch_executors_accepted(self):
        for executor in ("thread", "fork"):
            assert VeloxConfig(batch_executor=executor).batch_executor == executor

    def test_batch_executor_survives_json_roundtrip(self):
        original = VeloxConfig(batch_executor="fork")
        assert VeloxConfig.from_json(original.to_json()).batch_executor == "fork"

    def test_invalid_batch_executor_rejected_from_json(self):
        with pytest.raises(ConfigError):
            VeloxConfig.from_json('{"batch_executor": "greenlet"}')


class TestConfigSerialization:
    def test_json_roundtrip(self):
        original = VeloxConfig(
            num_nodes=6, regularization=2.5, online_update_method="sgd",
            extra={"note": "prod"},
        )
        restored = VeloxConfig.from_json(original.to_json())
        assert restored == original

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError) as exc:
            VeloxConfig.from_json('{"num_nodez": 4}')
        assert "num_nodez" in str(exc.value)

    def test_malformed_json_rejected(self):
        with pytest.raises(ConfigError):
            VeloxConfig.from_json("{nope")

    def test_non_object_rejected(self):
        with pytest.raises(ConfigError):
            VeloxConfig.from_json("[1, 2]")

    def test_invalid_values_still_validated(self):
        with pytest.raises(ConfigError):
            VeloxConfig.from_json('{"num_nodes": 0}')

    def test_from_file(self, tmp_path):
        path = tmp_path / "velox.json"
        path.write_text(VeloxConfig(num_nodes=3).to_json())
        assert VeloxConfig.from_file(path).num_nodes == 3

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            VeloxConfig.from_file(tmp_path / "ghost.json")


class TestReplicationFactor:
    def test_default_is_single_copy(self):
        assert VeloxConfig().replication_factor == 1

    def test_must_be_at_least_one(self):
        with pytest.raises(ConfigError):
            VeloxConfig(replication_factor=0)

    def test_cannot_exceed_cluster_size(self):
        with pytest.raises(ConfigError):
            VeloxConfig(num_nodes=2, replication_factor=3)

    def test_full_replication_allowed(self):
        assert VeloxConfig(num_nodes=3, replication_factor=3).replication_factor == 3

    def test_round_trips_through_json(self):
        original = VeloxConfig(num_nodes=4, replication_factor=2)
        assert VeloxConfig.from_json(original.to_json()) == original

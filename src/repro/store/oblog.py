"""The observation log: append-only feedback storage.

Every ``observe(uid, item, label)`` call lands here (paper Section 4.1):
the online learner consumes it immediately, and offline retraining reads
it later in bulk "from the storage layer". Readers address the log by
offset so a batch job can consume exactly the records that existed when
it was triggered, while new observations continue to append.

Two auxiliary structures ride along with the append path:

* a **per-user offset index** so user-scoped reads (``by_user``, the
  per-user Eq. 2 solves, analytics backfill) cost O(records for that
  user) instead of a full-log scan, and
* **append listeners** — callables invoked inline with each durably
  appended record, under the log lock, in offset order. The analytics
  tier's materialized-view maintainer subscribes here, which is what
  makes an MV's high-watermark offset an exact statement: a view at
  watermark W has folded in precisely ``log[0:W)``.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from threading import RLock
from typing import Callable


@dataclass(frozen=True)
class Observation:
    """One unit of feedback: user ``uid`` rated/labelled item ``item_id``.

    ``item_data`` carries whatever the front-end passed for feature
    extraction (for materialized-feature models this is just the item id;
    for computed-feature models it is the raw input object).
    """

    uid: int
    item_id: int
    label: float
    item_data: object = None
    timestamp: float = 0.0


class ObservationLog:
    """A durable, append-only sequence of :class:`Observation`.

    Append returns the record's offset. ``read_range(start, stop)`` is the
    batch-consumption API; ``snapshot_offset()`` captures "everything seen
    so far" for a retraining job.
    """

    def __init__(self):
        self._records: list[Observation] = []
        self._lock = RLock()
        #: uid -> sorted offsets of that user's records (append-only, so
        #: appends keep each list sorted for free).
        self._user_offsets: dict[int, list[int]] = {}
        self._listeners: list[Callable[[int, Observation], None]] = []

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def add_listener(
        self,
        listener: Callable[[int, Observation], None],
        replay: bool = False,
    ) -> None:
        """Subscribe to appends: ``listener(offset, observation)`` runs
        inline for every future record, under the log lock, in offset
        order. Listeners must not append back into the log.

        ``replay=True`` first feeds every existing record through the
        listener, atomically with the subscription (the lock serializes
        appends), so a late subscriber — a materialized view registered
        against a non-empty log — backfills without ever missing or
        double-seeing a record.
        """
        with self._lock:
            if replay:
                for offset, observation in enumerate(self._records):
                    listener(offset, observation)
            self._listeners.append(listener)

    def append(self, observation: Observation) -> int:
        """Durably append one observation; returns its offset."""
        with self._lock:
            offset = len(self._records)
            self._records.append(observation)
            self._user_offsets.setdefault(observation.uid, []).append(offset)
            for listener in self._listeners:
                listener(offset, observation)
            return offset

    def snapshot_offset(self) -> int:
        """Offset one past the last record at call time."""
        with self._lock:
            return len(self._records)

    def read_range(self, start: int, stop: int | None = None) -> list[Observation]:
        """Records with ``start <= offset < stop`` (``stop=None`` → end)."""
        if start < 0:
            raise ValueError(f"start must be >= 0, got {start}")
        with self._lock:
            end = len(self._records) if stop is None else stop
            if end > len(self._records):
                raise ValueError(
                    f"stop {end} is past the end of the log ({len(self._records)})"
                )
            if end < start:
                raise ValueError(f"stop {end} precedes start {start}")
            return list(self._records[start:end])

    def read_all(self) -> list[Observation]:
        """Every observation currently in the log."""
        return self.read_range(0)

    def by_user(self, uid: int, stop: int | None = None) -> list[Observation]:
        """All observations for one user up to ``stop`` (for Eq. 2 solves).

        Served from the per-user offset index: O(records for this user),
        not a full-log scan. ``stop`` keeps ``read_range`` semantics
        (must lie within ``[0, len(log)]``).
        """
        with self._lock:
            end = len(self._records) if stop is None else stop
            if end > len(self._records):
                raise ValueError(
                    f"stop {end} is past the end of the log ({len(self._records)})"
                )
            if end < 0:
                raise ValueError(f"stop {end} precedes start 0")
            offsets = self._user_offsets.get(uid, [])
            cut = bisect_left(offsets, end)
            return [self._records[offset] for offset in offsets[:cut]]

    def user_record_count(self, uid: int) -> int:
        """Records this user has in the log (an O(1) index lookup; the
        analytics planner's cost estimate for user-scoped scans)."""
        with self._lock:
            return len(self._user_offsets.get(uid, []))

    def user_ids(self) -> list[int]:
        """Distinct user ids present in the log."""
        with self._lock:
            return list(self._user_offsets)

"""DAG scheduler: stages, retries, fetch-failure recovery, threading."""

import pytest

from repro.batch import BatchContext, FailureInjector
from repro.common.errors import TaskFailedError


class TestMetrics:
    def test_job_and_task_counts(self):
        ctx = BatchContext(default_parallelism=1)
        ctx.parallelize(range(10), 4).map(lambda x: x).collect()
        assert ctx.metrics.jobs == 1
        assert ctx.metrics.result_tasks == 4
        assert ctx.metrics.map_tasks == 0  # no shuffle

    def test_shuffle_counts_map_tasks(self):
        ctx = BatchContext(default_parallelism=1)
        pairs = ctx.parallelize([(i % 2, i) for i in range(8)], 4)
        pairs.reduce_by_key(lambda a, b: a + b).collect()
        assert ctx.metrics.map_tasks == 4
        assert ctx.metrics.stages == 2  # one map stage + one result stage

    def test_records_written_to_shuffle(self):
        ctx = BatchContext(default_parallelism=1)
        pairs = ctx.parallelize([(i % 2, 1) for i in range(10)], 2)
        pairs.reduce_by_key(lambda a, b: a + b).collect()
        # Map-side combining: each map partition writes at most 2 keys.
        assert ctx.scheduler.shuffle_store.records_written <= 4


class TestResultTaskRetry:
    def test_transient_result_failure_retried(self):
        injector = FailureInjector(result_failures={0: 2})
        ctx = BatchContext(default_parallelism=1, injector=injector)
        assert ctx.parallelize(range(6), 3).collect() == list(range(6))
        assert ctx.metrics.task_retries == 2
        assert ctx.metrics.injected_failures == 2

    def test_permanent_failure_raises_task_failed(self):
        injector = FailureInjector(result_failures={0: 99})
        ctx = BatchContext(default_parallelism=1, max_task_attempts=3, injector=injector)
        with pytest.raises(TaskFailedError) as exc:
            ctx.parallelize(range(4), 2).collect()
        assert exc.value.attempts == 3

    def test_user_exception_retried_then_raised(self):
        ctx = BatchContext(default_parallelism=1, max_task_attempts=2)

        def boom(x):
            raise RuntimeError("bad record")

        with pytest.raises(TaskFailedError) as exc:
            ctx.parallelize([1], 1).map(boom).collect()
        assert isinstance(exc.value.cause, RuntimeError)
        assert ctx.metrics.task_retries == 2


class TestMapTaskRetry:
    def test_transient_map_failure_retried(self):
        injector = FailureInjector()
        ctx = BatchContext(default_parallelism=1, injector=injector)
        pairs = ctx.parallelize([(i % 3, 1) for i in range(12)], 3)
        reduced = pairs.reduce_by_key(lambda a, b: a + b)
        injector.map_failures[(reduced.shuffle_dependency.shuffle_id, 1)] = 1
        assert reduced.collect_as_map() == {0: 4, 1: 4, 2: 4}
        assert ctx.metrics.injected_failures == 1


class TestFetchFailureRecovery:
    def test_lost_map_output_recomputed(self):
        injector = FailureInjector()
        ctx = BatchContext(default_parallelism=1, injector=injector)
        pairs = ctx.parallelize([(i % 3, 1) for i in range(12)], 4)
        reduced = pairs.reduce_by_key(lambda a, b: a + b)
        injector.lost_outputs.add((reduced.shuffle_dependency.shuffle_id, 2))
        assert reduced.collect_as_map() == {0: 4, 1: 4, 2: 4}
        assert ctx.metrics.fetch_failures >= 1

    def test_multiple_lost_outputs(self):
        injector = FailureInjector()
        ctx = BatchContext(default_parallelism=1, injector=injector)
        pairs = ctx.parallelize([(i % 2, 1) for i in range(8)], 4)
        reduced = pairs.reduce_by_key(lambda a, b: a + b)
        sid = reduced.shuffle_dependency.shuffle_id
        injector.lost_outputs.update({(sid, 0), (sid, 3)})
        assert reduced.collect_as_map() == {0: 4, 1: 4}

    def test_invalidate_shuffle_forces_rerun(self):
        ctx = BatchContext(default_parallelism=1)
        pairs = ctx.parallelize([(1, 1)] * 4, 2)
        reduced = pairs.reduce_by_key(lambda a, b: a + b)
        reduced.collect()
        maps_before = ctx.metrics.map_tasks
        ctx.scheduler.invalidate_shuffle(reduced.shuffle_dependency.shuffle_id)
        reduced.collect()
        assert ctx.metrics.map_tasks == maps_before + 2


class TestThreadedExecution:
    def test_parallel_scheduler_matches_serial(self):
        data = [(i % 5, i) for i in range(200)]
        serial = (
            BatchContext(default_parallelism=1)
            .parallelize(data, 8)
            .reduce_by_key(lambda a, b: a + b)
            .collect_as_map()
        )
        threaded = (
            BatchContext(default_parallelism=4)
            .parallelize(data, 8)
            .reduce_by_key(lambda a, b: a + b)
            .collect_as_map()
        )
        assert serial == threaded

    def test_threaded_with_join(self):
        ctx = BatchContext(default_parallelism=4)
        left = ctx.parallelize([(i, i) for i in range(50)], 6)
        right = ctx.parallelize([(i, i * 2) for i in range(0, 50, 2)], 4)
        joined = left.join(right).collect_as_map()
        assert len(joined) == 25
        assert joined[4] == (4, 8)


class TestWorkerKillInjection:
    def test_killed_fork_worker_partition_recomputed(self):
        from repro.batch import forkexec

        if not forkexec.fork_available():
            pytest.skip("platform has no os.fork")
        injector = FailureInjector(worker_kills={2})
        ctx = BatchContext(
            default_parallelism=4, executor="fork", injector=injector
        )
        pairs = ctx.parallelize([(i % 3, 1) for i in range(12)], 4)
        assert pairs.reduce_by_key(lambda a, b: a + b).collect_as_map() == {
            0: 4, 1: 4, 2: 4
        }
        assert injector.worker_kills == set()
        assert ctx.metrics.injected_failures >= 1

    def test_worker_kills_ignored_by_thread_executor(self):
        # The thread executor has no process to kill; configured kills
        # simply never fire.
        injector = FailureInjector(worker_kills={0})
        ctx = BatchContext(
            default_parallelism=2, executor="thread", injector=injector
        )
        assert ctx.parallelize(range(4), 2).collect() == list(range(4))
        assert injector.worker_kills == {0}


class TestStageProfiles:
    def test_profiles_recorded_per_stage(self):
        ctx = BatchContext(default_parallelism=1)
        pairs = ctx.parallelize([(i % 2, i) for i in range(8)], 4)
        pairs.reduce_by_key(lambda a, b: a + b).collect()
        kinds = [p.kind for p in ctx.metrics.stage_profiles]
        assert kinds == ["map", "result"]
        for profile in ctx.metrics.stage_profiles:
            assert profile.executor == "inline"
            assert profile.wall_seconds >= 0
            assert profile.busy_seconds >= 0

    def test_thread_profile_worker_count(self):
        ctx = BatchContext(default_parallelism=3)
        ctx.parallelize(range(12), 6).map(lambda x: x).collect()
        profile = ctx.metrics.stage_profiles[-1]
        assert profile.executor == "thread"
        assert profile.workers == 3
        assert profile.tasks == 6

    def test_stage_wall_seconds_sums(self):
        ctx = BatchContext(default_parallelism=1)
        ctx.parallelize(range(4), 2).collect()
        total = ctx.metrics.stage_wall_seconds()
        assert total == pytest.approx(
            sum(p.wall_seconds for p in ctx.metrics.stage_profiles)
        )

    def test_reset_clears_profiles(self):
        ctx = BatchContext(default_parallelism=1)
        ctx.parallelize(range(4), 2).collect()
        ctx.metrics.reset()
        assert ctx.metrics.stage_profiles == []
        assert ctx.metrics.jobs == 0


class TestValidation:
    def test_invalid_parallelism(self):
        with pytest.raises(ValueError):
            BatchContext(default_parallelism=0)

    def test_invalid_max_attempts(self):
        from repro.batch.scheduler import DAGScheduler

        with pytest.raises(ValueError):
            DAGScheduler(max_task_attempts=0)

    def test_invalid_executor(self):
        with pytest.raises(ValueError):
            BatchContext(default_parallelism=2, executor="greenlet")

"""Figure 3: online update latency vs model complexity.

Paper: "Average time to perform an online update to a user model as a
function of the number of factors in the model. The results are averaged
over 5000 updates of randomly selected users and items from the
MovieLens 10M rating data set. Error bars represent 95% confidence
intervals." The plotted implementation is the naive normal-equations
solve (Eq. 2), cubic in d; the paper notes the Sherman–Morrison O(d²)
alternative in text, which we measure as the ablation series.

Shape assertions (absolute numbers are hardware-dependent):
* latency grows superlinearly in d for the naive solve,
* Sherman–Morrison beats the naive solve by a growing factor at high d.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.online import (
    NormalEquationsUpdater,
    ShermanMorrisonUpdater,
    UserModelState,
)
from repro.metrics import LatencyRecorder, mean_confidence_interval

from conftest import write_result

DIMENSIONS = [10, 100, 250, 500, 750, 1000]
HISTORY_LENGTH = 17  # ratings per user in the paper's protocol (10 + 7)


def make_state(dimension: int, rng: np.random.Generator) -> UserModelState:
    """A user state preloaded with a realistic observation history."""
    state = UserModelState(dimension, regularization=1.0)
    updater = NormalEquationsUpdater()
    for __ in range(HISTORY_LENGTH):
        updater.update(state, rng.normal(size=dimension), float(rng.normal()))
    return state


def one_update_fixed_history(state, updater, features, label):
    """Apply one update, then roll the history length back so repeated
    benchmark rounds measure a constant-size solve."""
    updater.update(state, features, label)
    if state.feature_history:
        state.feature_history.pop()
        state.label_history.pop()
        state.observation_count -= 1


@pytest.mark.parametrize("dimension", DIMENSIONS)
def test_fig3_normal_equations_update(benchmark, dimension, bench_rng):
    """The paper's plotted series: naive Eq. 2 re-solve per observation."""
    state = make_state(dimension, bench_rng)
    updater = NormalEquationsUpdater()
    features = bench_rng.normal(size=dimension)
    benchmark(one_update_fixed_history, state, updater, features, 3.5)


@pytest.mark.parametrize("dimension", DIMENSIONS)
def test_fig3_sherman_morrison_update(benchmark, dimension, bench_rng):
    """Ablation: the O(d²) incremental update the paper describes."""
    state = make_state(dimension, bench_rng)
    updater = ShermanMorrisonUpdater()
    features = bench_rng.normal(size=dimension)
    benchmark(updater.update, state, features, 3.5)


def test_fig3_summary(benchmark, bench_rng):
    """Regenerate the figure's series and assert its shape."""
    updates_per_dim = 60
    naive_means: dict[int, tuple[float, float]] = {}
    sm_means: dict[int, tuple[float, float]] = {}

    for dimension in DIMENSIONS:
        state = make_state(dimension, bench_rng)
        for updater_cls, sink in (
            (NormalEquationsUpdater, naive_means),
            (ShermanMorrisonUpdater, sm_means),
        ):
            updater = updater_cls()
            recorder = LatencyRecorder()
            for __ in range(updates_per_dim):
                features = bench_rng.normal(size=dimension)
                with recorder.time():
                    one_update_fixed_history(state, updater, features, 3.5)
            sink[dimension] = mean_confidence_interval(recorder.samples)

    lines = ["d    naive_mean_s  naive_ci95    sm_mean_s     sm_ci95"]
    for dimension in DIMENSIONS:
        nm, nc = naive_means[dimension]
        sm, sc = sm_means[dimension]
        lines.append(
            f"{dimension:<5d}{nm:<14.6f}{nc:<14.6f}{sm:<14.6f}{sc:.6f}"
        )
    write_result("fig3_update_latency", lines)

    # Shape: superlinear growth of the naive solve in d.
    assert naive_means[1000][0] > naive_means[250][0]
    growth = naive_means[1000][0] / naive_means[250][0]
    assert growth > 4.0, f"naive growth {growth:.1f}x should exceed linear (4x)"
    # Shape: Sherman-Morrison wins at high d.
    speedup = naive_means[1000][0] / sm_means[1000][0]
    assert speedup > 2.0, f"SM speedup at d=1000 was only {speedup:.1f}x"
    # Keep pytest-benchmark satisfied under --benchmark-only.
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

"""Ablation: prediction materialization strategies (paper Section 2.1).

The paper's straw-man analysis: pre-materializing every (user, item)
prediction "has the disadvantage of materializing potentially billions
of predictions when only a small fraction will likely be required,"
while computing everything online repeats work for hot pairs. Velox's
answer is hybrid caching. This ablation serves an identical Zipfian
query stream through all three strategies and reports build cost,
storage footprint, per-query latency, and on-demand compute counts.

Shape assertions:
* full pre-materialization has the largest build cost and footprint,
  almost all of it never queried,
* online computation recomputes every query,
* hybrid caching approaches full-materialization latency with a
  fraction of the footprint.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.materialization import (
    FullPrematerialization,
    HybridCaching,
    OnlineComputation,
)
from repro.core.models import MatrixFactorizationModel
from repro.metrics import LatencyRecorder, Timer
from repro.workloads import ZipfItemSampler

from conftest import write_result

NUM_ITEMS = 800
NUM_USERS = 120
ACTIVE_USERS = 16  # queries come from a hot subset, as in real services
RANK = 128  # large enough that recomputing a score visibly costs more
QUERIES = 10_000
CACHE_CAPACITY = 6000  # ~6% of the full user x item cross product


def make_population(seed: int = 5):
    rng = np.random.default_rng(seed)
    model = MatrixFactorizationModel(
        "mat",
        rng.normal(0, 0.3, (NUM_ITEMS, RANK)),
        rng.normal(0, 0.2, NUM_ITEMS),
        3.5,
    )
    weights = {
        uid: model.pack_user_weights(
            rng.normal(0, 0.3, RANK), float(rng.normal(0, 0.2))
        )
        for uid in range(NUM_USERS)
    }
    return model, weights


def make_queries(seed: int = 6) -> list[tuple[int, int]]:
    rng = np.random.default_rng(seed)
    sampler = ZipfItemSampler(NUM_ITEMS, 1.2, rng=seed)
    items = sampler.sample(size=QUERIES)
    users = rng.integers(0, ACTIVE_USERS, size=QUERIES)
    return list(zip(users.tolist(), items.tolist()))


def build_strategy(name: str):
    model, weights = make_population()
    if name == "full_prematerialization":
        return FullPrematerialization(weights, model, NUM_ITEMS)
    if name == "online_computation":
        return OnlineComputation(weights, model)
    return HybridCaching(weights, model, cache_capacity=CACHE_CAPACITY)


STRATEGIES = ["full_prematerialization", "online_computation", "hybrid_caching"]


def run_strategy(name: str) -> dict[str, float]:
    strategy = build_strategy(name)
    with Timer() as build_timer:
        strategy.build()
    queries = make_queries()
    recorder = LatencyRecorder()
    for uid, item in queries:
        with recorder.time():
            strategy.serve(uid, item)
    report = strategy.report()
    return {
        "build_s": build_timer.elapsed,
        "storage_entries": report.storage_entries,
        "mean_query_s": recorder.summary().mean,
        "computed_on_demand": report.computed_on_demand,
        "queries": report.queries,
    }


@pytest.mark.parametrize("name", STRATEGIES)
def test_materialization_strategy(benchmark, name):
    benchmark.pedantic(run_strategy, args=(name,), rounds=1, iterations=1)


def test_materialization_summary(benchmark):
    results = {name: run_strategy(name) for name in STRATEGIES}
    lines = [
        "strategy                 build_s   storage   mean_query_s  computed_on_demand"
    ]
    for name, row in results.items():
        lines.append(
            f"{name:<25}{row['build_s']:<10.3f}{row['storage_entries']:<10d}"
            f"{row['mean_query_s']:<14.7f}{row['computed_on_demand']:d}"
        )
    write_result("ablation_materialization", lines)

    full = results["full_prematerialization"]
    online = results["online_computation"]
    hybrid = results["hybrid_caching"]

    # Full materialization: biggest build + footprint; most entries wasted.
    assert full["storage_entries"] == NUM_USERS * NUM_ITEMS
    assert full["build_s"] > 10 * hybrid["build_s"] + 1e-9
    distinct_queried = len(set(make_queries()))
    assert distinct_queried < 0.2 * full["storage_entries"]
    # Online: recomputes everything.
    assert online["computed_on_demand"] == QUERIES
    assert online["storage_entries"] == 0
    # Hybrid: bounded footprint, mostly cache-served under Zipf.
    assert hybrid["storage_entries"] <= CACHE_CAPACITY
    assert hybrid["computed_on_demand"] < 0.5 * QUERIES
    assert hybrid["mean_query_s"] < online["mean_query_s"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

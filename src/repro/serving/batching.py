"""Batching policies and deterministic batch formation.

The Clipper insight (Crankshaw et al., NSDI 2017): coalescing queued
requests into one vectorized model evaluation amortizes per-request
overhead, and the batch size can be tuned *adaptively* against a latency
SLO — additively increase while the SLO holds, multiplicatively back off
when it is violated (AIMD), so throughput rides just under the latency
cliff without manual tuning.

Batch *formation* is split from the worker threads: :class:`BatchFormer`
is a pure function of (queue state, policy state, current time), so the
exact batches formed under a given arrival pattern are deterministic and
testable with :class:`~repro.common.clock.SimulatedClock`.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod

from repro.common.errors import ConfigError
from repro.serving.config import ServingConfig
from repro.serving.queue import QueuedRequest, RequestQueue


class BatchingPolicy(ABC):
    """Decides how large a batch to form and how long to wait for it."""

    name: str = "policy"

    @abstractmethod
    def batch_limit(self) -> int:
        """Current maximum batch size."""

    @abstractmethod
    def batch_delay(self) -> float:
        """How long (seconds) a non-empty queue may linger for more
        requests before a partial batch is formed."""

    def observe(self, batch_size: int, latency: float) -> None:
        """Feedback after a batch completes: its size and the worst
        end-to-end latency (seconds) of any request in it."""


class NoBatchingPolicy(BatchingPolicy):
    """Serve one request at a time — the pre-Clipper baseline."""

    name = "none"

    def batch_limit(self) -> int:
        return 1

    def batch_delay(self) -> float:
        return 0.0


class FixedDelayPolicy(BatchingPolicy):
    """Linger a fixed window, then take whatever arrived (up to a cap)."""

    name = "fixed_delay"

    def __init__(self, max_batch_size: int, delay: float):
        if max_batch_size < 1:
            raise ConfigError(
                f"max_batch_size must be >= 1, got {max_batch_size}"
            )
        if delay < 0:
            raise ConfigError(f"delay must be >= 0, got {delay}")
        self.max_batch_size = max_batch_size
        self.delay = delay

    def batch_limit(self) -> int:
        return self.max_batch_size

    def batch_delay(self) -> float:
        return self.delay


class AdaptiveAimdPolicy(BatchingPolicy):
    """AIMD batch sizing against a p99 latency SLO.

    Starts at batch size 1; every batch that meets the SLO grows the
    limit additively, every violation shrinks it multiplicatively. The
    limit therefore oscillates just under the largest batch the hardware
    can serve within the SLO — Clipper's adaptive batching.
    """

    name = "adaptive"

    def __init__(
        self,
        slo_p99: float,
        max_batch_size: int,
        delay: float,
        additive_step: int = 1,
        backoff: float = 0.5,
    ):
        if slo_p99 <= 0:
            raise ConfigError(f"slo_p99 must be > 0, got {slo_p99}")
        if max_batch_size < 1:
            raise ConfigError(
                f"max_batch_size must be >= 1, got {max_batch_size}"
            )
        if delay < 0:
            raise ConfigError(f"delay must be >= 0, got {delay}")
        if additive_step < 1:
            raise ConfigError(
                f"additive_step must be >= 1, got {additive_step}"
            )
        if not 0.0 < backoff < 1.0:
            raise ConfigError(f"backoff must be in (0, 1), got {backoff}")
        self.slo_p99 = slo_p99
        self.max_batch_size = max_batch_size
        self.delay = delay
        self.additive_step = additive_step
        self.backoff = backoff
        self._lock = threading.Lock()
        self._limit = 1

    def batch_limit(self) -> int:
        with self._lock:
            return self._limit

    def batch_delay(self) -> float:
        return self.delay

    def observe(self, batch_size: int, latency: float) -> None:
        """AIMD step: grow on SLO hit, back off on SLO miss."""
        with self._lock:
            if latency > self.slo_p99:
                self._limit = max(1, int(self._limit * self.backoff))
            else:
                self._limit = min(
                    self.max_batch_size, self._limit + self.additive_step
                )


def make_batching_policy(config: ServingConfig) -> BatchingPolicy:
    """The policy instance a :class:`ServingConfig` asks for.

    Each queue gets its own instance — AIMD state is per-queue.
    """
    if config.batching == "none":
        return NoBatchingPolicy()
    if config.batching == "fixed_delay":
        return FixedDelayPolicy(config.max_batch_size, config.batch_delay)
    return AdaptiveAimdPolicy(
        slo_p99=config.slo_p99,
        max_batch_size=config.max_batch_size,
        delay=config.batch_delay,
        additive_step=config.aimd_additive_step,
        backoff=config.aimd_backoff,
    )


class BatchFormer:
    """Deterministic batch formation over one queue.

    ``form(queue, now)`` returns the next batch, or an empty list when
    the queue should keep lingering (non-empty but younger than the
    policy's delay and smaller than its limit). Given the same queue
    contents, policy state, and clock readings, the same batches form —
    no dependence on thread timing.
    """

    def __init__(self, policy: BatchingPolicy):
        self.policy = policy

    def form(self, queue: RequestQueue, now: float) -> list[QueuedRequest]:
        limit = self.policy.batch_limit()
        depth = len(queue)
        if depth == 0:
            return []
        if depth >= limit:
            return queue.pop_up_to(limit)
        oldest = queue.oldest_age(now)
        if oldest is None:  # raced with another consumer; nothing to do
            return []
        if oldest >= self.policy.batch_delay():
            return queue.pop_up_to(limit)
        return []

    def ready_in(self, queue: RequestQueue, now: float) -> float | None:
        """Seconds until the lingering window elapses (0 when a batch is
        already formable, None when the queue is empty)."""
        oldest = queue.oldest_age(now)
        if oldest is None:
            return None
        if len(queue) >= self.policy.batch_limit():
            return 0.0
        return max(0.0, self.policy.batch_delay() - oldest)

"""UDF byte-code inspection (the paper's Section 6 investigation)."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.core.udf_inspect import check_retrain_udf, inspect_udf


class TestDependencyDiscovery:
    def test_pure_function_is_clean(self):
        def pure(x):
            return x * 2 + 1

        report = inspect_udf(pure)
        assert report.is_pure_looking
        assert report.closure_cells == {}

    def test_closure_capture_reported_with_types(self):
        factors = np.zeros((3, 2))
        bias = 0.5

        def featurize(i):
            return factors[i] + bias

        report = inspect_udf(featurize)
        assert report.closure_cells == {"bias": "float", "factors": "ndarray"}

    def test_globals_reported(self):
        report = inspect_udf(helper_using_global)
        assert "GLOBAL_TABLE" in report.globals_read

    def test_nested_functions_scanned(self):
        def outer(xs):
            import_free = [x for x in xs]

            def inner(x):
                return GLOBAL_TABLE[x]  # noqa: F821 - intentionally global

            return [inner(x) for x in import_free]

        report = inspect_udf(outer)
        assert "GLOBAL_TABLE" in report.globals_read

    def test_builtin_callable_tolerated(self):
        report = inspect_udf(len)
        assert report.name == "len"
        assert report.is_pure_looking


GLOBAL_TABLE = {1: "a"}


def helper_using_global(key):
    return GLOBAL_TABLE.get(key)


class TestRiskPatterns:
    def test_randomness_flagged(self):
        import random

        def sampler(xs):
            return random.choice(xs)

        report = inspect_udf(sampler)
        assert any("nondeterministic" in w for w in report.warnings)

    def test_numpy_rng_attribute_flagged(self):
        def noisy(x):
            return x + np.random.normal()

        report = inspect_udf(noisy)
        assert any("normal" in w for w in report.warnings)

    def test_io_flagged(self):
        def leaky(path):
            with open(path) as handle:
                return handle.read()

        report = inspect_udf(leaky)
        assert any("I/O" in w for w in report.warnings)

    def test_global_mutation_flagged(self):
        def mutator():
            global GLOBAL_TABLE
            GLOBAL_TABLE = {}

        report = inspect_udf(mutator)
        assert any("mutates non-local state" in w for w in report.warnings)

    def test_nonlocal_rebinding_flagged(self):
        counter = 0

        def increment():
            nonlocal counter
            counter += 1

        report = inspect_udf(increment)
        assert any("STORE_DEREF" in w for w in report.warnings)

    def test_own_cellvars_not_flagged(self):
        """Locals captured by a nested comprehension become cell vars;
        assigning them is ordinary local assignment, not mutation."""

        def builder(xs):
            total = sum(xs)
            return [x / total for x in xs]

        assert inspect_udf(builder).is_pure_looking

    def test_non_callable_rejected(self):
        with pytest.raises(ValidationError):
            inspect_udf(42)


class TestRetrainContract:
    def test_mutable_closure_capture_warned(self):
        cache = {}

        def retrain_udf(observations):
            cache["last"] = len(observations)
            return observations

        warnings = check_retrain_udf(retrain_udf)
        assert any("mutable dict" in w for w in warnings)

    def test_deterministic_closure_of_arrays_is_fine(self):
        frozen = np.ones((4, 4))

        def retrain_udf(observations):
            return [frozen @ np.ones(4) for __ in observations]

        assert check_retrain_udf(retrain_udf) == []

    def test_manager_records_udf_warnings_at_deploy(self, deployed_velox):
        assert deployed_velox.manager.udf_warnings["songs"] == []

    def test_real_model_retrains_are_clean(self):
        """The library's own retrain implementations must pass their own
        checker (no nondeterminism outside seeded generators)."""
        from repro.core.models import MatrixFactorizationModel

        model = MatrixFactorizationModel("m", np.zeros((4, 2)))
        warnings = check_retrain_udf(model.retrain)
        assert warnings == [], warnings

"""New-user bootstrapping (paper Section 5).

New users are assigned "a recent estimate of the average of the existing
user weight vectors", which corresponds to predicting the average score
over all users. :class:`UserWeightAverager` maintains that average
incrementally: each user's latest weight vector contributes once, and
re-writes replace the previous contribution, so the mean always reflects
current weights in O(d) per update.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ValidationError


class UserWeightAverager:
    """Exact running mean of every user's current weight vector."""

    def __init__(self, dimension: int):
        if dimension < 1:
            raise ValidationError(f"dimension must be >= 1, got {dimension}")
        self.dimension = dimension
        self._sum = np.zeros(dimension)
        self._contributions: dict[int, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self._contributions)

    def update(self, uid: int, weights: np.ndarray) -> None:
        """Record ``uid``'s current weights (replacing any previous ones)."""
        arr = np.asarray(weights, dtype=float)
        if arr.shape != (self.dimension,):
            raise ValidationError(
                f"weights must have shape ({self.dimension},), got {arr.shape}"
            )
        previous = self._contributions.get(uid)
        if previous is not None:
            self._sum -= previous
        contribution = arr.copy()
        self._contributions[uid] = contribution
        self._sum += contribution

    def remove(self, uid: int) -> bool:
        """Forget a user; returns whether they were known."""
        previous = self._contributions.pop(uid, None)
        if previous is None:
            return False
        self._sum -= previous
        return True

    def mean(self) -> np.ndarray:
        """The bootstrap weight vector w-bar for new users."""
        if not self._contributions:
            raise ValidationError("no user weights to average yet")
        return self._sum / len(self._contributions)

    def reset(self) -> None:
        """Forget every contribution."""
        self._sum = np.zeros(self.dimension)
        self._contributions.clear()

"""Shared fixtures: a small SynthLens corpus, an ALS-trained model, and a
deployed Velox instance, all session-scoped where safe for speed."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Velox, VeloxConfig
from repro.batch import BatchContext
from repro.core.models import MatrixFactorizationModel
from repro.core.offline import als_train
from repro.data import SynthLensConfig, generate_synthlens, paper_protocol_split


SMALL_CONFIG = SynthLensConfig(
    num_users=60,
    num_items=120,
    rank=5,
    ratings_per_user_mean=25.0,
    min_ratings_per_user=18,
    seed=5,
)


@pytest.fixture(scope="session")
def small_lens():
    return generate_synthlens(SMALL_CONFIG)


@pytest.fixture(scope="session")
def small_split(small_lens):
    return paper_protocol_split(small_lens.ratings)


@pytest.fixture(scope="session")
def trained_als(small_split):
    ctx = BatchContext(default_parallelism=2)
    return als_train(
        ctx,
        [(r.uid, r.item_id, r.rating) for r in small_split.init],
        rank=SMALL_CONFIG.rank,
        num_items=SMALL_CONFIG.num_items,
        num_iterations=5,
    )


def make_mf_model(als_result, name: str = "songs") -> MatrixFactorizationModel:
    return MatrixFactorizationModel(
        name,
        als_result.item_factors,
        als_result.item_bias,
        als_result.global_mean,
    )


def make_initial_weights(model: MatrixFactorizationModel, als_result) -> dict:
    return {
        uid: model.pack_user_weights(
            als_result.user_factors[uid], als_result.user_bias[uid]
        )
        for uid in als_result.user_factors
    }


@pytest.fixture
def deployed_velox(trained_als):
    """A fresh 2-node deployment with the trained MF model installed."""
    model = make_mf_model(trained_als)
    weights = make_initial_weights(model, trained_als)
    velox = Velox.deploy(VeloxConfig(num_nodes=2), auto_retrain=False)
    velox.add_model(model, initial_user_weights=weights)
    return velox


@pytest.fixture
def batch_ctx():
    return BatchContext(default_parallelism=3)


@pytest.fixture
def rng():
    return np.random.default_rng(123)

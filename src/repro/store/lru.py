"""An LRU cache with hit/miss/eviction statistics.

Used for the Velox feature cache and prediction cache (paper Section 5).
The paper argues that Zipfian item popularity makes "a simple cache
eviction strategy like LRU" effective; the statistics here are what the
cache-skew ablation benchmark reports.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from threading import RLock
from typing import Generic, Hashable, Iterator, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

_MISSING = object()


@dataclass
class CacheStats:
    """Counters accumulated over the life of the cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        """Total get() calls (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache; 0.0 when never queried."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def reset(self) -> None:
        """Zero every counter."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0


class LRUCache(Generic[K, V]):
    """Thread-safe least-recently-used cache.

    A ``capacity`` of 0 produces a disabled cache: every ``get`` misses and
    ``put`` is a no-op, which lets callers leave cache plumbing in place
    while benchmarking the uncached path.
    """

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self._capacity = capacity
        self._data: OrderedDict[K, V] = OrderedDict()
        self._lock = RLock()
        self.stats = CacheStats()

    @property
    def capacity(self) -> int:
        """Maximum number of entries (0 = disabled)."""
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: K) -> bool:
        """Membership test without recency update or stats mutation."""
        with self._lock:
            return key in self._data

    def get(self, key: K, default: V | None = None) -> V | None:
        """Return the cached value (marking it most recent) or ``default``."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.stats.misses += 1
                return default
            self._data.move_to_end(key)
            self.stats.hits += 1
            return value

    def peek(self, key: K, default: V | None = None) -> V | None:
        """Return the cached value without recency or stats effects."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            return default if value is _MISSING else value

    def put(self, key: K, value: V) -> None:
        """Insert/overwrite a value, evicting the LRU entry if full."""
        if self._capacity == 0:
            return
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            if len(self._data) > self._capacity:
                self._data.popitem(last=False)
                self.stats.evictions += 1

    def invalidate(self, key: K) -> bool:
        """Remove one key; returns whether it was present."""
        with self._lock:
            if key in self._data:
                del self._data[key]
                self.stats.invalidations += 1
                return True
            return False

    def invalidate_if(self, predicate) -> int:
        """Remove all entries whose key satisfies ``predicate``; return count."""
        with self._lock:
            doomed = [k for k in self._data if predicate(k)]
            for k in doomed:
                del self._data[k]
            self.stats.invalidations += len(doomed)
            return len(doomed)

    def clear(self) -> None:
        """Drop every entry (counted as invalidations)."""
        with self._lock:
            self.stats.invalidations += len(self._data)
            self._data.clear()

    def keys(self) -> list[K]:
        """Snapshot of keys from least to most recently used."""
        with self._lock:
            return list(self._data.keys())

    def items(self) -> Iterator[tuple[K, V]]:
        """Snapshot of items from least to most recently used."""
        with self._lock:
            return iter(list(self._data.items()))

    def warm(self, entries) -> None:
        """Bulk-load ``(key, value)`` pairs (e.g. cache repopulation after
        offline retraining, paper Section 4.2)."""
        for key, value in entries:
            self.put(key, value)

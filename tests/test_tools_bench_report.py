"""The bench-report aggregation tool."""

import pytest

from repro.common.errors import ValidationError
from repro.tools.bench_report import build_report, main


@pytest.fixture
def results_dir(tmp_path):
    (tmp_path / "fig3_update_latency.txt").write_text("d  latency\n10  0.001\n")
    (tmp_path / "ablation_routing.txt").write_text("router  remote\nua  0\n")
    (tmp_path / "custom_extra.txt").write_text("hello\n")
    return tmp_path


class TestBuildReport:
    def test_known_series_titled_and_ordered(self, results_dir):
        report = build_report(results_dir)
        fig3 = report.index("Figure 3")
        routing = report.index("routing locality")
        assert fig3 < routing
        assert "d  latency" in report

    def test_unknown_series_appended(self, results_dir):
        report = build_report(results_dir)
        assert "## custom_extra" in report
        assert "hello" in report

    def test_missing_series_listed(self, results_dir):
        report = build_report(results_dir)
        assert "Missing series" in report
        assert "Figure 4" in report

    def test_empty_dir_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            build_report(tmp_path)

    def test_missing_dir_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            build_report(tmp_path / "ghost")


class TestMain:
    def test_main_prints_report(self, results_dir, capsys):
        assert main([str(results_dir)]) == 0
        out = capsys.readouterr().out
        assert "Benchmark series report" in out

    def test_main_error_exit_code(self, tmp_path, capsys):
        assert main([str(tmp_path / "ghost")]) == 1

    def test_against_real_results_if_present(self):
        """When the repo's own results exist, the tool renders them."""
        from pathlib import Path

        real = Path(__file__).resolve().parents[1] / "benchmarks" / "results"
        if not real.is_dir() or not list(real.glob("*.txt")):
            pytest.skip("no recorded benchmark results")
        report = build_report(real)
        assert "Figure 3" in report

"""Single-threaded event-loop TCP front end: C10k-scale connection intake.

The threaded server (:mod:`repro.frontend.server`) spends one OS thread
per connection, so its capacity is bounded by thread spawn cost, stack
memory, and scheduler churn long before the serving engine's queues
saturate — a few hundred sockets is where it stops holding tail
latency. This module decouples connection count from thread count the
way Clipper and InferLine's front ends do: one thread, one
``selectors`` loop, and per-connection state machines.

Design:

* **Non-blocking everything.** The listener, every accepted socket, and
  the wake pipe are non-blocking; the loop thread never sleeps inside a
  read or write. Incoming bytes feed a per-connection incremental
  reassembler (:class:`~repro.frontend.wire.FrameDecoder` for binary,
  a line splitter for JSON), so a slow-loris client trickling one byte
  per call costs one buffer append, not a parked thread.
* **Same protocols, same negotiation.** A connection opening with the
  :data:`~repro.frontend.wire.HELLO` preamble is answered in kind and
  switched to correlated binary frames; anything else is served
  JSON-lines, strictly in order (a FIFO of response futures preserves
  the line protocol's ordering even though dispatch is asynchronous).
  Existing clients — :class:`~repro.frontend.server.RemoteClient` and
  :class:`~repro.frontend.pipelined.PipelinedClient` — work unmodified.
* **Engine-coupled dispatch.** Decoded requests enter the serving
  engine through :meth:`VeloxClient.dispatch_async`, stamped with the
  loop's ``recv`` time so admission control's age-bound shedding sees
  transport delay (reassembly + backpressure pauses), not just queue
  residence. Completion callbacks run on engine worker threads; they
  only enqueue a closure and wake the loop — all connection state is
  mutated by the loop thread alone, so no per-connection locks exist.
* **Write-side backpressure.** Responses queue in a per-connection
  outbound buffer flushed opportunistically and on writability. A
  buffer above ``high_water`` stops the socket's reads (the client's
  own sends eventually block — TCP propagates the pressure); reads
  resume below ``low_water``. Counters for paused sockets, buffered
  bytes, and dispatch depth are exported through the status endpoint.
* **Clean teardown.** ``stop()`` wakes the loop, which closes every
  connection (paused or mid-drain), the listener, the wake pipe, and
  the selector before exiting — repeated start/stop cycles leak no
  file descriptors. In-flight responses for a closed connection are
  dropped on completion; the peer observes the close as a
  :class:`~repro.common.errors.TransportError` on its pending futures.

Control-plane requests without an engine path (status, retrain,
observe) execute inline on the loop thread, exactly as they execute
inline on a connection thread in the threaded server; the hot path —
predict/top-k with an engine attached — never blocks the loop.
"""

from __future__ import annotations

import selectors
import socket
import threading
from collections import deque

from repro import chaos
from repro.common.errors import ValidationError
from repro.frontend import wire
from repro.frontend.api import ApiResponse, decode_request, encode_response
from repro.frontend.client import VeloxClient
from repro.metrics.frontend import FrontendCounters

#: Outbound-buffer high-water mark (bytes): a connection buffering more
#: unsent response bytes than this stops being read until it drains.
HIGH_WATER = 1 << 20
#: Resume reading once the outbound buffer falls below this.
LOW_WATER = 1 << 16
#: Per-recv chunk size.
_RECV_SIZE = 1 << 16
#: recv() calls per readable event before yielding to other sockets.
_RECV_ROUNDS = 4
#: Listen backlog — deep on purpose: connection bursts queue in the
#: kernel and drain at accept speed instead of being refused.
_LISTEN_BACKLOG = 1024

#: Selector registration markers for the non-connection fds.
_ACCEPT = object()
_WAKE = object()

#: Connection protocol states.
_NEGOTIATING = 0
_BINARY = 1
_JSON = 2


class _Connection:
    """Per-socket state: reassembly buffers, mode, in-flight futures."""

    __slots__ = (
        "sock",
        "mode",
        "inbuf",
        "decoder",
        "outbuf",
        "json_fifo",
        "pending",
        "interest",
        "registered",
        "read_paused",
        "draining",
        "closed",
        "recv_stamp",
        "stalled",
    )

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.mode = _NEGOTIATING
        #: Raw bytes before negotiation and JSON-lines residue after.
        self.inbuf = bytearray()
        #: Binary frame reassembler (created when binary negotiates).
        self.decoder: wire.FrameDecoder | None = None
        self.outbuf = bytearray()
        #: JSON mode: response futures in request order (the line
        #: protocol promises in-order responses).
        self.json_fifo: deque = deque()
        #: Binary mode: in-flight dispatch futures (order-free).
        self.pending: set = set()
        self.interest = 0
        self.registered = False
        self.read_paused = False
        self.draining = False
        self.closed = False
        #: Engine-clock stamp of the latest recv (enqueue_time source).
        self.recv_stamp: float | None = None
        #: Injected write stall (chaos ``frontend.stall_write``): while
        #: set, the outbound buffer accumulates but nothing is sent.
        self.stalled = False


class EventLoopServer:
    """Event-loop TCP server over a Velox deployment.

    Usually constructed through :class:`~repro.frontend.server.VeloxServer`
    (which selects the front end from ``VeloxConfig.frontend``); direct
    construction exposes the backpressure watermarks and frame-size cap
    for tests and tuning::

        server = EventLoopServer(velox, engine=engine, high_water=1 << 20)
        server.start()
        ... PipelinedClient(*server.server_address) ...
        server.stop()
    """

    kind = "eventloop"

    def __init__(
        self,
        velox,
        host: str = "127.0.0.1",
        port: int = 0,
        engine=None,
        high_water: int = HIGH_WATER,
        low_water: int = LOW_WATER,
        max_frame_bytes: int | None = None,
        sndbuf: int | None = None,
    ):
        if not 0 < low_water < high_water:
            raise ValidationError(
                f"watermarks must satisfy 0 < low ({low_water}) < "
                f"high ({high_water})"
            )
        self.high_water = high_water
        self.low_water = low_water
        self.max_frame_bytes = (
            wire.MAX_FRAME_BYTES if max_frame_bytes is None else max_frame_bytes
        )
        self._sndbuf = sndbuf
        self.velox_client = VeloxClient(velox, engine=engine)
        self.counters = FrontendCounters(self.kind)
        self.velox_client.frontend_status = self.counters.snapshot
        self._clock = engine.clock if engine is not None else None

        self._listen = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listen.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            self._listen.bind((host, port))
            self._listen.listen(_LISTEN_BACKLOG)
            self._listen.setblocking(False)
            self._wake_r, self._wake_w = socket.socketpair()
            self._wake_r.setblocking(False)
            self._wake_w.setblocking(False)
        except OSError:
            self._listen.close()
            raise
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listen, selectors.EVENT_READ, _ACCEPT)
        self._selector.register(self._wake_r, selectors.EVENT_READ, _WAKE)

        self._conns: set[_Connection] = set()
        #: Closures handed from completion callbacks to the loop thread.
        self._completions: deque = deque()
        #: Live chaos-delay timers (cancelled on teardown).
        self._timers: set[threading.Timer] = set()
        self._thread: threading.Thread | None = None
        self._stop_requested = False
        self._closed = False

    # -- lifecycle ------------------------------------------------------------

    @property
    def server_address(self) -> tuple:
        """Bound (host, port)."""
        return self._listen.getsockname()

    def start(self) -> "EventLoopServer":
        """Start the loop thread; returns self."""
        if self._thread is not None:
            raise ValidationError("server already started")
        if self._closed:
            raise ValidationError("server already stopped")
        self._thread = threading.Thread(
            target=self._run, name="velox-eventloop", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the loop and release every fd (idempotent).

        Connections with unsent responses or in-flight dispatches are
        closed outright: their engine futures complete into a closed
        connection and are dropped, and the peers observe the dead
        socket as a ``TransportError`` on their pending futures.
        """
        if self._thread is None:
            self._teardown()  # bound but never started: release the fds
            return
        self._stop_requested = True
        self._wake()
        self._thread.join(timeout=5)
        self._thread = None

    def _wake(self) -> None:
        try:
            self._wake_w.send(b"\0")
        except (BlockingIOError, OSError):
            pass  # a wake byte is already pending, or we are torn down

    def _schedule(self, fn, *args) -> None:
        """Run ``fn(*args)`` on the loop thread (any-thread safe)."""
        self._completions.append((fn, args))
        self._wake()

    def _later(self, delay: float, fn, *args) -> None:
        """Run ``fn(*args)`` on the loop thread after ``delay`` seconds.

        Used only by chaos injection: the delay ticks on a timer thread
        so an injected latency spike never blocks the loop itself (one
        slow connection must not stall the other thousands).
        """
        timer: threading.Timer | None = None

        def fire() -> None:
            self._timers.discard(timer)
            if not self._closed:
                self._schedule(fn, *args)

        timer = threading.Timer(delay, fire)
        timer.daemon = True
        self._timers.add(timer)
        timer.start()

    # -- the loop -------------------------------------------------------------

    def _run(self) -> None:
        try:
            while not self._stop_requested:
                events = self._selector.select(timeout=1.0)
                for key, mask in events:
                    data = key.data
                    if data is _ACCEPT:
                        self._on_accept()
                    elif data is _WAKE:
                        self._drain_wake()
                    else:
                        conn = data
                        if conn.closed:
                            continue  # closed earlier in this batch
                        if mask & selectors.EVENT_WRITE:
                            self._flush(conn)
                        if mask & selectors.EVENT_READ and not conn.closed:
                            self._on_readable(conn)
                self._drain_completions()
        finally:
            self._teardown()

    def _drain_wake(self) -> None:
        while True:
            try:
                if not self._wake_r.recv(4096):
                    return
            except (BlockingIOError, OSError):
                return

    def _drain_completions(self) -> None:
        while True:
            try:
                fn, args = self._completions.popleft()
            except IndexError:
                return
            fn(*args)

    def _teardown(self) -> None:
        if self._closed:
            return
        self._closed = True
        for timer in list(self._timers):
            timer.cancel()
        self._timers.clear()
        for conn in list(self._conns):
            self._close(conn)
        for sock in (self._listen, self._wake_r, self._wake_w):
            try:
                self._selector.unregister(sock)
            except (KeyError, ValueError, OSError):
                pass
            try:
                sock.close()
            except OSError:
                pass
        self._selector.close()
        self._completions.clear()

    # -- accept / read --------------------------------------------------------

    def _on_accept(self) -> None:
        while True:
            try:
                sock, _addr = self._listen.accept()
            except (BlockingIOError, OSError):
                return
            sock.setblocking(False)
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                if self._sndbuf is not None:
                    sock.setsockopt(
                        socket.SOL_SOCKET, socket.SO_SNDBUF, self._sndbuf
                    )
            except OSError:
                pass
            conn = _Connection(sock)
            self._conns.add(conn)
            self.counters.connection_opened()
            accept_delay = chaos.latency("frontend.slow_accept")
            if accept_delay > 0.0:
                # Injected slow accept: the connection exists but is not
                # read until the delay elapses.
                self._later(
                    accept_delay, self._set_interest, conn,
                    selectors.EVENT_READ,
                )
                continue
            self._set_interest(conn, selectors.EVENT_READ)

    def _on_readable(self, conn: _Connection) -> None:
        for _ in range(_RECV_ROUNDS):
            try:
                chunk = conn.sock.recv(_RECV_SIZE)
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                self._close(conn)
                return
            if not chunk:
                self._start_drain(conn)  # clean EOF: flush, then close
                return
            self.counters.add_bytes_in(len(chunk))
            if self._clock is not None:
                conn.recv_stamp = self._clock.now()
            try:
                self._consume(conn, chunk)
            except Exception:
                # Corrupt framing / oversized line: the stream is
                # unrecoverable; drop the connection like the threaded
                # server's read loop does.
                self.counters.protocol_error()
                self._close(conn)
                return
            if conn.closed or conn.read_paused:
                return
            if len(chunk) < _RECV_SIZE:
                return  # socket likely drained; don't spin on recv

    # -- protocol state machine -----------------------------------------------

    def _consume(self, conn: _Connection, chunk: bytes) -> None:
        if conn.mode == _BINARY:
            conn.decoder.feed(chunk)
        else:
            conn.inbuf += chunk
            if conn.mode == _NEGOTIATING and not self._negotiate(conn):
                return
        if conn.mode == _BINARY:
            for opcode, corr_id, payload in conn.decoder.drain():
                if conn.closed:
                    break  # a write failure killed the socket mid-batch
                self._dispatch_binary(conn, opcode, corr_id, payload)
        elif conn.mode == _JSON:
            self._consume_json(conn)

    def _negotiate(self, conn: _Connection) -> bool:
        """Decide the protocol from the first bytes; False = need more."""
        for hello in wire.HELLO_VERSIONS:
            if conn.inbuf.startswith(hello):
                conn.mode = _BINARY
                conn.decoder = wire.FrameDecoder(self.max_frame_bytes)
                residue = bytes(conn.inbuf[len(hello):])
                conn.inbuf.clear()
                if residue:
                    conn.decoder.feed(residue)
                self._queue_bytes(conn, hello)  # answer in kind
                return True
        if any(hello.startswith(conn.inbuf) for hello in wire.HELLO_VERSIONS):
            return False  # strict prefix: the rest is still in flight
        conn.mode = _JSON
        return True

    def _dispatch_binary(
        self, conn: _Connection, opcode: int, corr_id: int, payload: bytes
    ) -> None:
        self.counters.frame_in()
        try:
            request = wire.decode_request_payload(opcode, payload)
        except Exception as err:
            self._queue_frame(
                conn,
                corr_id,
                ApiResponse(ok=False, error=f"{type(err).__name__}: {err}"),
            )
            return
        future = self.velox_client.dispatch_async(
            request, enqueue_time=conn.recv_stamp
        )
        conn.pending.add(future)
        self.counters.dispatch_started()
        future.add_done_callback(
            lambda done, conn=conn, corr_id=corr_id: self._schedule(
                self._complete_binary, conn, corr_id, done
            )
        )

    def _complete_binary(self, conn: _Connection, corr_id: int, done) -> None:
        """Loop-thread completion: route a response to its frame."""
        if done in conn.pending:
            conn.pending.discard(done)
            self.counters.dispatch_finished()
        if conn.closed:
            return  # the socket died while the engine worked
        try:
            response = done.result()
        except Exception as err:
            response = ApiResponse(
                ok=False, error=f"{type(err).__name__}: {err}"
            )
        self._queue_frame(conn, corr_id, response)
        self._maybe_finish_drain(conn)

    def _consume_json(self, conn: _Connection) -> None:
        while not conn.closed:
            newline = conn.inbuf.find(b"\n")
            if newline < 0:
                if len(conn.inbuf) > self.max_frame_bytes:
                    raise ValidationError(
                        f"JSON line exceeds {self.max_frame_bytes} bytes"
                    )
                return
            raw = bytes(conn.inbuf[:newline])
            del conn.inbuf[: newline + 1]
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            self.counters.json_request()
            try:
                request = decode_request(line)
            except ValidationError as err:
                # Mirrors the threaded JSON loop: validation failures
                # become bare-message envelopes on the same connection.
                future = VeloxClient._completed(
                    ApiResponse(ok=False, error=str(err))
                )
            else:
                future = self.velox_client.dispatch_async(
                    request, enqueue_time=conn.recv_stamp
                )
            conn.json_fifo.append(future)
            self.counters.dispatch_started()
            future.add_done_callback(
                lambda done, conn=conn: self._schedule(self._pump_json, conn)
            )

    def _pump_json(self, conn: _Connection) -> None:
        """Flush completed JSON responses strictly in request order."""
        flushed = False
        while conn.json_fifo and conn.json_fifo[0].done():
            done = conn.json_fifo.popleft()
            self.counters.dispatch_finished()
            flushed = True
            if conn.closed:
                continue  # keep draining the fifo for exact gauges
            try:
                response = done.result()
            except Exception as err:
                response = ApiResponse(
                    ok=False, error=f"{type(err).__name__}: {err}"
                )
            try:
                encoded = (encode_response(response) + "\n").encode("utf-8")
            except Exception as err:  # unserializable payload
                encoded = (
                    encode_response(
                        ApiResponse(
                            ok=False, error=f"{type(err).__name__}: {err}"
                        )
                    )
                    + "\n"
                ).encode("utf-8")
            self._queue_bytes(conn, encoded)
        if flushed:
            self._maybe_finish_drain(conn)

    # -- writes & backpressure ------------------------------------------------

    def _queue_frame(
        self, conn: _Connection, corr_id: int, response: ApiResponse
    ) -> None:
        try:
            frame = wire.encode_response_frame(response, corr_id)
        except Exception as err:  # unserializable payload
            frame = wire.encode_response_frame(
                ApiResponse(ok=False, error=f"{type(err).__name__}: {err}"),
                corr_id,
            )
        if chaos.active() is not None:
            # Wire-codec fault injection, response path. Evaluated per
            # frame, keyed-free (consultation order on the loop thread
            # is the request completion order).
            if chaos.should("wire.reset"):
                self._close(conn)
                return
            if chaos.should("wire.drop_response"):
                return
            if chaos.should("wire.garble_response"):
                frame = chaos.garble(frame)
            delay = chaos.latency("wire.delay_response")
            if delay > 0.0:
                self.counters.frame_out()
                self._later(delay, self._queue_bytes, conn, frame)
                return
        self.counters.frame_out()
        self._queue_bytes(conn, frame)

    def _queue_bytes(self, conn: _Connection, data: bytes) -> None:
        if conn.closed:
            return
        conn.outbuf += data
        if (
            not conn.stalled
            and chaos.active() is not None
        ):
            stall = chaos.latency("frontend.stall_write")
            if stall > 0.0:
                conn.stalled = True
                self._later(stall, self._unstall, conn)
        self._flush(conn)

    def _unstall(self, conn: _Connection) -> None:
        """End an injected write stall and drain what accumulated."""
        conn.stalled = False
        self._flush(conn)

    def _flush(self, conn: _Connection) -> None:
        if conn.closed:
            return
        while not conn.stalled and conn.outbuf:
            try:
                sent = conn.sock.send(conn.outbuf)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self._close(conn)
                return
            if sent == 0:
                break
            del conn.outbuf[:sent]
            self.counters.add_bytes_out(sent)
        if conn.read_paused:
            if len(conn.outbuf) <= self.low_water:
                conn.read_paused = False
                self.counters.read_resume()
        elif len(conn.outbuf) >= self.high_water:
            conn.read_paused = True
            self.counters.read_pause()
        self._update_interest(conn)
        self._maybe_finish_drain(conn)

    def _update_interest(self, conn: _Connection) -> None:
        mask = 0
        if not conn.draining and not conn.read_paused:
            mask |= selectors.EVENT_READ
        # A stalled connection must not watch writability: the socket is
        # writable the whole time, and the loop would spin on it.
        if conn.outbuf and not conn.stalled:
            mask |= selectors.EVENT_WRITE
        self._set_interest(conn, mask)

    def _set_interest(self, conn: _Connection, mask: int) -> None:
        if conn.closed:
            return
        try:
            if mask == 0:
                if conn.registered:
                    self._selector.unregister(conn.sock)
                    conn.registered = False
            elif not conn.registered:
                self._selector.register(conn.sock, mask, conn)
                conn.registered = True
            elif mask != conn.interest:
                self._selector.modify(conn.sock, mask, conn)
        except (KeyError, ValueError, OSError):
            self._close(conn)
            return
        conn.interest = mask

    # -- drain & close --------------------------------------------------------

    def _start_drain(self, conn: _Connection) -> None:
        """Peer EOF: stop reading, finish in-flight work, then close."""
        if conn.closed or conn.draining:
            return
        conn.draining = True
        self._update_interest(conn)
        self._maybe_finish_drain(conn)

    def _maybe_finish_drain(self, conn: _Connection) -> None:
        if (
            conn.draining
            and not conn.closed
            and not conn.outbuf
            and not conn.pending
            and not conn.json_fifo
        ):
            self._close(conn)

    def _close(self, conn: _Connection) -> None:
        if conn.closed:
            return
        conn.closed = True
        if conn.registered:
            try:
                self._selector.unregister(conn.sock)
            except (KeyError, ValueError, OSError):
                pass
            conn.registered = False
        try:
            conn.sock.close()
        except OSError:
            pass
        self._conns.discard(conn)
        if conn.read_paused:
            conn.read_paused = False
            self.counters.read_resume()
        # In-flight dispatches are abandoned: their completions find the
        # connection closed and drop the response. Balance the gauge now
        # so dispatch_depth never counts work with nowhere to land.
        for _ in range(len(conn.pending)):
            self.counters.dispatch_finished()
        conn.pending.clear()
        for _ in range(len(conn.json_fifo)):
            self.counters.dispatch_finished()
        conn.json_fifo.clear()
        self.counters.connection_closed()

    def __enter__(self) -> "EventLoopServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

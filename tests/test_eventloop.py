"""Event-loop front end: selection knob, framing robustness under
hostile clients, write-side backpressure, clean teardown, and the
pipelined client's in-flight window."""

from __future__ import annotations

import io
import os
import socket
import struct
import threading
import time
from concurrent.futures import Future

import pytest

from repro import VeloxConfig
from repro.common.errors import (
    ConfigError,
    OverloadedError,
    TransportError,
    ValidationError,
)
from repro.frontend import (
    EventLoopServer,
    PipelinedClient,
    PredictApiRequest,
    RemoteClient,
    StatusApiRequest,
    VeloxServer,
    encode_request,
)
from repro.frontend import wire
from repro.frontend.api import decode_response
from repro.frontend.eventloop import EventLoopServer as _DirectEventLoop
from repro.frontend.server import _ThreadedFrontend
from repro.serving import ServingConfig

BOTH_FRONTENDS = pytest.mark.parametrize("frontend", ["eventloop", "threaded"])


def _read_hello(sock: socket.socket) -> None:
    """Consume the server's echoed hello line off a raw socket."""
    got = b""
    while not got.endswith(b"\n"):
        chunk = sock.recv(1)
        assert chunk, "server closed during negotiation"
        got += chunk
    assert got == wire.HELLO


def _poll(predicate, timeout: float = 5.0, interval: float = 0.01) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestFrontendSelection:
    def test_config_rejects_unknown_frontend(self):
        with pytest.raises(ConfigError, match="frontend"):
            VeloxConfig(frontend="carrier-pigeon")

    def test_config_accepts_both_frontends(self):
        assert VeloxConfig(frontend="threaded").frontend == "threaded"
        assert VeloxConfig().frontend == "eventloop"  # the default

    def test_facade_selects_implementation(self, deployed_velox):
        ev = VeloxServer(deployed_velox, frontend="eventloop")
        th = VeloxServer(deployed_velox, frontend="threaded")
        try:
            assert isinstance(ev._server, EventLoopServer)
            assert isinstance(th._server, _ThreadedFrontend)
            assert ev.frontend == "eventloop"
            assert th.frontend == "threaded"
        finally:
            ev.stop()
            th.stop()

    def test_facade_defaults_to_config_knob(self, deployed_velox):
        # deployed_velox uses the default config => eventloop.
        server = VeloxServer(deployed_velox)
        try:
            assert isinstance(server._server, EventLoopServer)
        finally:
            server.stop()

    def test_facade_rejects_unknown_frontend(self, deployed_velox):
        with pytest.raises(ValidationError, match="frontend"):
            VeloxServer(deployed_velox, frontend="smoke-signals")

    def test_eventloop_rejects_bad_watermarks(self, deployed_velox):
        with pytest.raises(ValidationError, match="watermark"):
            EventLoopServer(deployed_velox, high_water=100, low_water=100)


class TestSlowAndHostileClients:
    @BOTH_FRONTENDS
    def test_byte_at_a_time_binary_request(self, deployed_velox, frontend):
        """A slow-loris client trickling one byte per send still gets a
        correct response: both servers reassemble incrementally."""
        with VeloxServer(deployed_velox, frontend=frontend) as server:
            sock = socket.create_connection((server.host, server.port), timeout=10)
            try:
                request = wire.encode_request_frame(
                    PredictApiRequest(uid=1, item=2), 77
                )
                for i in range(len(wire.HELLO)):
                    sock.sendall(wire.HELLO[i : i + 1])
                _read_hello(sock)
                for i in range(len(request)):
                    sock.sendall(request[i : i + 1])
                rfile = sock.makefile("rb")
                frame = wire.read_frame(rfile)
                assert frame is not None
                opcode, corr_id, payload = frame
                assert opcode == wire.OP_RESPONSE
                assert corr_id == 77
                response = wire.decode_response_payload(payload)
                assert response.ok, response.error
                assert response.payload["item"] == 2
            finally:
                sock.close()

    @BOTH_FRONTENDS
    def test_byte_at_a_time_json_request(self, deployed_velox, frontend):
        with VeloxServer(deployed_velox, frontend=frontend) as server:
            sock = socket.create_connection((server.host, server.port), timeout=10)
            try:
                line = (
                    encode_request(PredictApiRequest(uid=1, item=3)) + "\n"
                ).encode("utf-8")
                for i in range(len(line)):
                    sock.sendall(line[i : i + 1])
                response = decode_response(
                    sock.makefile("rb").readline().decode("utf-8")
                )
                assert response.ok, response.error
                assert response.payload["item"] == 3
            finally:
                sock.close()

    @BOTH_FRONTENDS
    def test_mid_frame_disconnect_does_not_wedge(self, deployed_velox, frontend):
        """A client dying mid-frame must not wedge the server: later
        connections are served normally."""
        with VeloxServer(deployed_velox, frontend=frontend) as server:
            sock = socket.create_connection((server.host, server.port), timeout=10)
            sock.sendall(wire.HELLO)
            _read_hello(sock)
            # Header promising a 1000-byte frame, then vanish mid-body.
            sock.sendall(struct.pack(">IBQ", 1000, wire.OP_PREDICT, 5))
            sock.sendall(b"\x00" * 10)
            sock.close()
            with PipelinedClient(server.host, server.port) as client:
                response = client.call(PredictApiRequest(uid=1, item=2))
                assert response.ok, response.error

    @BOTH_FRONTENDS
    def test_oversized_frame_rejected_before_allocation(
        self, deployed_velox, frontend
    ):
        """A hostile length prefix drops the connection with a typed
        error, and the server keeps serving everyone else."""
        with VeloxServer(deployed_velox, frontend=frontend) as server:
            sock = socket.create_connection((server.host, server.port), timeout=10)
            sock.sendall(wire.HELLO)
            _read_hello(sock)
            sock.sendall(
                struct.pack(">IBQ", wire.MAX_FRAME_BYTES + 1, wire.OP_PREDICT, 5)
            )
            # The server must close on us rather than buffer toward 64MB.
            sock.settimeout(5)
            assert sock.recv(1) == b""
            sock.close()
            with PipelinedClient(server.host, server.port) as client:
                assert client.call(PredictApiRequest(uid=1, item=2)).ok


class TestEventLoopServing:
    def test_pipelined_burst_through_engine(self, deployed_velox):
        """Many in-flight correlated requests over one socket, through
        the serving engine, all routed back to the right futures."""
        engine = deployed_velox.serving_engine(
            ServingConfig(num_workers=2, batching="adaptive", slo_p99=1.0)
        )
        expected = {
            item: deployed_velox.service.predict("songs", 3, item).score
            for item in range(40)
        }
        with VeloxServer(deployed_velox, engine=engine, frontend="eventloop") as server:
            with PipelinedClient(server.host, server.port) as client:
                assert client.protocol == "binary"
                futures = {
                    item: client.submit(PredictApiRequest(uid=3, item=item))
                    for item in range(40)
                }
                for item, future in futures.items():
                    response = future.result(timeout=10)
                    assert response.ok, response.error
                    assert response.payload["item"] == item
                    assert response.payload["score"] == pytest.approx(
                        expected[item], abs=1e-9
                    )

    def test_json_lines_stay_ordered_over_async_dispatch(self, deployed_velox):
        """The JSON-lines contract is strict ordering; the event loop
        must preserve it even though dispatch is asynchronous."""
        engine = deployed_velox.serving_engine(
            ServingConfig(num_workers=2, batching="adaptive", slo_p99=1.0)
        )
        with VeloxServer(deployed_velox, engine=engine, frontend="eventloop") as server:
            sock = socket.create_connection((server.host, server.port), timeout=10)
            try:
                items = list(range(12))
                burst = b"".join(
                    (encode_request(PredictApiRequest(uid=2, item=item)) + "\n").encode()
                    for item in items
                )
                sock.sendall(burst)
                rfile = sock.makefile("rb")
                for item in items:
                    response = decode_response(rfile.readline().decode("utf-8"))
                    assert response.ok, response.error
                    assert response.payload["item"] == item
            finally:
                sock.close()

    def test_status_exposes_frontend_counters(self, deployed_velox):
        with VeloxServer(deployed_velox, frontend="eventloop") as server:
            with PipelinedClient(server.host, server.port) as client:
                payload = client.call(StatusApiRequest()).payload
                counters = payload["frontend"]
                assert counters["kind"] == "eventloop"
                assert counters["open_connections"] >= 1
                assert counters["frames_in"] >= 1
                assert counters["bytes_in"] > 0
                assert counters["bytes_out"] > 0
                assert counters["read_paused"] == 0
        with VeloxServer(deployed_velox, frontend="threaded") as server:
            with RemoteClient(server.host, server.port) as client:
                counters = client.call(StatusApiRequest()).payload["frontend"]
                assert counters["kind"] == "threaded"
                assert counters["open_connections"] >= 1
                assert counters["json_requests"] >= 1

    def test_remote_client_against_eventloop(self, deployed_velox):
        with VeloxServer(deployed_velox, frontend="eventloop") as server:
            with RemoteClient(server.host, server.port) as client:
                response = client.call(PredictApiRequest(uid=4, item=7))
                assert response.ok, response.error
                assert response.payload["item"] == 7


class TestBackpressure:
    def test_write_pressure_pauses_and_resumes_reads(self, deployed_velox):
        """A client that sends but never reads must trip the high-water
        pause (visible in counters) and resume once it drains."""
        server = _DirectEventLoop(
            deployed_velox,
            high_water=32 * 1024,
            low_water=4 * 1024,
            sndbuf=8 * 1024,
        ).start()
        host, port = server.server_address
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 8 * 1024)
        try:
            sock.connect((host, port))
            sock.sendall(wire.HELLO)
            _read_hello(sock)
            total = 1200
            burst = b"".join(
                wire.encode_request_frame(PredictApiRequest(uid=1, item=2), i)
                for i in range(total)
            )
            sender = threading.Thread(target=sock.sendall, args=(burst,))
            sender.start()
            assert _poll(lambda: server.counters.snapshot()["read_paused"] >= 1), (
                "outbound pressure never paused reads: "
                f"{server.counters.snapshot()}"
            )
            # Drain every response; the pause must lift.
            rfile = sock.makefile("rb")
            seen = 0
            while seen < total:
                frame = wire.read_frame(rfile)
                assert frame is not None
                seen += 1
            sender.join(timeout=10)
            assert not sender.is_alive()
            snap = server.counters.snapshot()
            assert snap["pause_events"] >= 1
            assert _poll(lambda: server.counters.snapshot()["read_paused"] == 0)
        finally:
            sock.close()
            server.stop()


class TestTeardown:
    def test_no_fd_leak_over_restart_cycles(self, deployed_velox):
        """Repeated start/serve/stop cycles hold the process fd count
        flat: listener, wake pipe, selector, and conns all released."""

        def cycle() -> None:
            with VeloxServer(deployed_velox, frontend="eventloop") as server:
                with PipelinedClient(server.host, server.port) as client:
                    assert client.call(PredictApiRequest(uid=1, item=2)).ok

        cycle()  # warm up lazily-created interpreter state
        before = len(os.listdir("/proc/self/fd"))
        for _ in range(5):
            cycle()
        after = len(os.listdir("/proc/self/fd"))
        assert after <= before + 2, f"fd count grew {before} -> {after}"

    def test_stop_fails_pending_client_futures(self, deployed_velox):
        """Stopping the server mid-flight surfaces TransportError on the
        client's pending futures instead of hanging them."""
        server = VeloxServer(deployed_velox, frontend="eventloop").start()
        stuck: Future = Future()  # never completes
        server._server.velox_client.dispatch_async = (
            lambda request, enqueue_time=None: stuck
        )
        client = PipelinedClient(server.host, server.port)
        try:
            future = client.submit(PredictApiRequest(uid=1, item=2))
            server.stop()
            with pytest.raises(TransportError):
                future.result(timeout=10)
        finally:
            client.close()
            server.stop()

    def test_stop_before_start_releases_listener(self, deployed_velox):
        before = len(os.listdir("/proc/self/fd"))
        for _ in range(3):
            VeloxServer(deployed_velox, frontend="eventloop").stop()
            VeloxServer(deployed_velox, frontend="threaded").stop()
        after = len(os.listdir("/proc/self/fd"))
        assert after <= before + 2


class _SilentBinaryServer:
    """Accepts connections, answers the binary hello, then swallows all
    frames without ever responding — a black hole for in-flight tests."""

    def __init__(self):
        self._listen = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listen.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listen.bind(("127.0.0.1", 0))
        self._listen.listen(8)
        self.host, self.port = self._listen.getsockname()
        self._conns: list[socket.socket] = []
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        while True:
            try:
                conn, _ = self._listen.accept()
            except OSError:
                return
            self._conns.append(conn)
            threading.Thread(
                target=self._swallow, args=(conn,), daemon=True
            ).start()

    def _swallow(self, conn: socket.socket) -> None:
        try:
            got = b""
            while not got.endswith(b"\n"):
                chunk = conn.recv(1)
                if not chunk:
                    return
                got += chunk
            conn.sendall(wire.HELLO)
            while conn.recv(65536):
                pass
        except OSError:
            pass

    def close(self) -> None:
        self._listen.close()
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass

    def __enter__(self) -> "_SilentBinaryServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class TestMaxInflight:
    def test_fail_fast_raises_overloaded(self):
        with _SilentBinaryServer() as stub:
            with PipelinedClient(
                stub.host, stub.port, max_inflight=2, block_on_full=False
            ) as client:
                client.submit(PredictApiRequest(uid=1, item=1))
                client.submit(PredictApiRequest(uid=1, item=2))
                with pytest.raises(OverloadedError, match="window full"):
                    client.submit(PredictApiRequest(uid=1, item=3))
                assert client.in_flight == 2

    def test_blocking_submit_times_out(self):
        with _SilentBinaryServer() as stub:
            with PipelinedClient(
                stub.host, stub.port, timeout=0.3, max_inflight=1
            ) as client:
                client.submit(PredictApiRequest(uid=1, item=1))
                start = time.monotonic()
                with pytest.raises(TransportError, match="window full"):
                    client.submit(PredictApiRequest(uid=1, item=2))
                assert time.monotonic() - start >= 0.25

    def test_window_rejects_nonpositive(self):
        with pytest.raises(TransportError, match="max_inflight"):
            PipelinedClient("127.0.0.1", 1, max_inflight=0)

    def test_blocking_window_paces_against_live_server(self, deployed_velox):
        """With a responsive server the window never exceeds the cap and
        every submission eventually lands."""
        with VeloxServer(deployed_velox, frontend="eventloop") as server:
            with PipelinedClient(
                server.host, server.port, max_inflight=4
            ) as client:
                futures = []
                for item in range(50):
                    futures.append(
                        client.submit(PredictApiRequest(uid=1, item=item))
                    )
                    assert client.in_flight <= 4
                for item, future in enumerate(futures):
                    response = future.result(timeout=10)
                    assert response.ok, response.error
                    assert response.payload["item"] == item


class TestFrameDecoder:
    def test_incremental_single_bytes(self):
        frame = wire.encode_request_frame(PredictApiRequest(uid=9, item=4), 123)
        decoder = wire.FrameDecoder()
        for i in range(len(frame) - 1):
            decoder.feed(frame[i : i + 1])
            assert decoder.next_frame() is None
        decoder.feed(frame[-1:])
        opcode, corr_id, payload = decoder.next_frame()
        assert opcode == wire.OP_PREDICT
        assert corr_id == 123
        request = wire.decode_request_payload(opcode, payload)
        assert request == PredictApiRequest(uid=9, item=4)
        assert decoder.buffered == 0

    def test_drain_yields_every_buffered_frame(self):
        frames = [
            wire.encode_request_frame(PredictApiRequest(uid=1, item=i), i)
            for i in range(5)
        ]
        decoder = wire.FrameDecoder()
        decoder.feed(b"".join(frames))
        corr_ids = [corr_id for _, corr_id, _ in decoder.drain()]
        assert corr_ids == [0, 1, 2, 3, 4]
        assert decoder.next_frame() is None

    def test_oversized_prefix_rejected_with_only_four_bytes(self):
        decoder = wire.FrameDecoder(max_frame_bytes=64)
        decoder.feed(struct.pack(">I", 1_000_000))
        with pytest.raises(TransportError, match="invalid frame length"):
            decoder.next_frame()

    def test_undersized_prefix_rejected(self):
        decoder = wire.FrameDecoder()
        decoder.feed(struct.pack(">I", 3))  # below the 9-byte header floor
        with pytest.raises(TransportError, match="invalid frame length"):
            decoder.next_frame()

    def test_decoder_rejects_absurd_limit(self):
        with pytest.raises(ValidationError, match="max_frame_bytes"):
            wire.FrameDecoder(max_frame_bytes=4)

    def test_read_frame_honours_custom_limit(self):
        frame = wire.encode_frame(wire.OP_PREDICT, 1, b"\x00" * 100)
        with pytest.raises(TransportError, match="invalid frame length"):
            wire.read_frame(io.BytesIO(frame), max_frame_bytes=50)
        # The same frame passes under the default limit.
        opcode, corr_id, payload = wire.read_frame(io.BytesIO(frame))
        assert (opcode, corr_id, len(payload)) == (wire.OP_PREDICT, 1, 100)

"""Workload generators: Zipf skew, request mixes, topK batches."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.workloads import (
    ObserveRequest,
    PredictRequest,
    ZipfItemSampler,
    generate_request_stream,
    generate_topk_batches,
)


class TestZipfItemSampler:
    def test_samples_in_range(self):
        sampler = ZipfItemSampler(50, 0.9, rng=1)
        ids = sampler.sample(size=500)
        assert ids.min() >= 0 and ids.max() < 50

    def test_skew_increases_concentration(self):
        def top_share(exponent):
            sampler = ZipfItemSampler(100, exponent, rng=3)
            ids = sampler.sample(size=5000)
            counts = np.bincount(ids, minlength=100)
            counts.sort()
            return counts[-10:].sum() / 5000

        assert top_share(1.2) > top_share(0.0) + 0.2

    def test_uniform_when_exponent_zero(self):
        sampler = ZipfItemSampler(10, 0.0, rng=5)
        ids = sampler.sample(size=5000)
        counts = np.bincount(ids, minlength=10)
        assert counts.min() > 300

    def test_sample_distinct(self):
        sampler = ZipfItemSampler(30, 0.8, rng=2)
        ids = sampler.sample_distinct(30)
        assert sorted(ids) == list(range(30))

    def test_sample_distinct_too_many(self):
        with pytest.raises(ValidationError):
            ZipfItemSampler(5, 0.5).sample_distinct(6)

    def test_single_sample_is_int(self):
        assert isinstance(ZipfItemSampler(5, 0.5, rng=1).sample(), int)

    def test_validation(self):
        with pytest.raises(ValidationError):
            ZipfItemSampler(0, 0.5)
        with pytest.raises(ValidationError):
            ZipfItemSampler(5, -1.0)


class TestRequestStream:
    def test_mix_fraction(self):
        sampler = ZipfItemSampler(20, 0.5, rng=1)
        stream = generate_request_stream(
            1000, num_users=10, item_sampler=sampler, observe_fraction=0.3, rng=2
        )
        observes = sum(1 for r in stream if isinstance(r, ObserveRequest))
        assert 230 <= observes <= 370
        assert all(
            isinstance(r, (PredictRequest, ObserveRequest)) for r in stream
        )

    def test_label_fn_used(self):
        sampler = ZipfItemSampler(5, 0.0, rng=1)
        stream = generate_request_stream(
            200,
            num_users=3,
            item_sampler=sampler,
            observe_fraction=1.0,
            label_fn=lambda uid, item: uid + item,
            rng=4,
        )
        assert all(r.label == r.uid + r.item_id for r in stream)

    def test_all_predict_when_fraction_zero(self):
        sampler = ZipfItemSampler(5, 0.0, rng=1)
        stream = generate_request_stream(
            50, num_users=2, item_sampler=sampler, observe_fraction=0.0, rng=1
        )
        assert all(isinstance(r, PredictRequest) for r in stream)

    def test_validation(self):
        sampler = ZipfItemSampler(5, 0.0)
        with pytest.raises(ValidationError):
            generate_request_stream(-1, 2, sampler)
        with pytest.raises(ValidationError):
            generate_request_stream(10, 0, sampler)
        with pytest.raises(ValidationError):
            generate_request_stream(10, 2, sampler, observe_fraction=2.0)


class TestDriftingStream:
    def test_phases_emit_in_order(self):
        from repro.workloads import generate_drifting_stream

        sampler = ZipfItemSampler(10, 0.0, rng=1)
        stream = generate_drifting_stream(
            num_users=4,
            item_sampler=sampler,
            phases=[(5, lambda u, i: 1.0), (7, lambda u, i: 2.0)],
            rng=2,
        )
        assert len(stream) == 12
        assert all(r.label == 1.0 for r in stream[:5])
        assert all(r.label == 2.0 for r in stream[5:])

    def test_label_fn_receives_ids(self):
        from repro.workloads import generate_drifting_stream

        sampler = ZipfItemSampler(6, 0.0, rng=1)
        stream = generate_drifting_stream(
            4, sampler, [(20, lambda u, i: u * 100 + i)], rng=3
        )
        assert all(r.label == r.uid * 100 + r.item_id for r in stream)

    def test_validation(self):
        from repro.workloads import generate_drifting_stream

        sampler = ZipfItemSampler(5, 0.0)
        with pytest.raises(ValidationError):
            generate_drifting_stream(0, sampler, [(1, lambda u, i: 1.0)])
        with pytest.raises(ValidationError):
            generate_drifting_stream(2, sampler, [])
        with pytest.raises(ValidationError):
            generate_drifting_stream(2, sampler, [(-1, lambda u, i: 1.0)])
        with pytest.raises(ValidationError):
            generate_drifting_stream(2, sampler, [(1, "not callable")])

    def test_drives_staleness_detection_end_to_end(self, deployed_velox):
        """The designed use: phase-2 drift trips the manager's detector."""
        from repro.workloads import generate_drifting_stream

        deployed_velox.manager.auto_retrain = False
        sampler = ZipfItemSampler(60, 0.5, rng=4)
        model = deployed_velox.model()
        stream = generate_drifting_stream(
            num_users=30,
            item_sampler=sampler,
            phases=[
                # phase 1: labels follow the model (low loss baseline)
                (600, lambda u, i: float(
                    deployed_velox.predict(None, u, i)[1]
                )),
                # phase 2: inverted world
                (600, lambda u, i: 5.5 - float(
                    deployed_velox.predict(None, u, i)[1]
                )),
            ],
            rng=5,
        )
        became_stale_at = None
        for index, request in enumerate(stream):
            deployed_velox.observe(
                uid=request.uid,
                x=request.item_id,
                y=float(np.clip(request.label, 0.5, 5.0)),
            )
            health = deployed_velox.health()
            if health.is_stale(1.5, 500):
                became_stale_at = index
                break
        assert became_stale_at is not None
        assert became_stale_at >= 600  # not before the drift


class TestTopKBatches:
    def test_batch_shape(self):
        sampler = ZipfItemSampler(100, 0.7, rng=1)
        batches = generate_topk_batches(
            20, itemset_size=15, num_users=5, item_sampler=sampler, k=3, rng=2
        )
        assert len(batches) == 20
        for batch in batches:
            assert len(batch.item_ids) == 15
            assert len(set(batch.item_ids)) == 15  # distinct
            assert batch.k == 3
            assert 0 <= batch.uid < 5

    def test_validation(self):
        sampler = ZipfItemSampler(10, 0.5)
        with pytest.raises(ValidationError):
            generate_topk_batches(-1, 5, 2, sampler)
        with pytest.raises(ValidationError):
            generate_topk_batches(1, 0, 2, sampler)

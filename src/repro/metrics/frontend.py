"""Front-end transport counters, exported by the status endpoint.

Both TCP front ends (the event-loop server and the threaded fallback)
feed one :class:`FrontendCounters` instance and publish its snapshot
under the ``"frontend"`` key of the status response, so operators can
see transport-level pressure — open sockets, bytes in/out, read-paused
(backpressured) connections, and in-flight dispatch depth — next to the
serving engine's queue metrics.

The event-loop server mutates these from a single thread; the threaded
server from many. A lock keeps the counters exact either way (the
per-call cost is one uncontended lock acquire, far below a syscall).
"""

from __future__ import annotations

import threading


class FrontendCounters:
    """Thread-safe transport counters for one server instance.

    Gauges (``open_connections``, ``read_paused``, ``dispatch_depth``)
    track current state; totals only ever grow. ``snapshot`` returns a
    plain dict safe to serialize over either wire codec.
    """

    def __init__(self, kind: str):
        self.kind = kind
        self._lock = threading.Lock()
        # gauges
        self.open_connections = 0
        self.read_paused = 0
        self.dispatch_depth = 0
        # totals
        self.total_connections = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.frames_in = 0
        self.frames_out = 0
        self.json_requests = 0
        self.dispatched_total = 0
        self.pause_events = 0
        self.protocol_errors = 0

    # -- connection lifecycle -------------------------------------------------

    def connection_opened(self) -> None:
        with self._lock:
            self.open_connections += 1
            self.total_connections += 1

    def connection_closed(self) -> None:
        with self._lock:
            self.open_connections -= 1

    # -- traffic --------------------------------------------------------------

    def add_bytes_in(self, n: int) -> None:
        with self._lock:
            self.bytes_in += n

    def add_bytes_out(self, n: int) -> None:
        with self._lock:
            self.bytes_out += n

    def frame_in(self) -> None:
        with self._lock:
            self.frames_in += 1

    def frame_out(self) -> None:
        with self._lock:
            self.frames_out += 1

    def json_request(self) -> None:
        with self._lock:
            self.json_requests += 1

    def protocol_error(self) -> None:
        with self._lock:
            self.protocol_errors += 1

    # -- dispatch depth -------------------------------------------------------

    def dispatch_started(self) -> None:
        with self._lock:
            self.dispatch_depth += 1
            self.dispatched_total += 1

    def dispatch_finished(self) -> None:
        with self._lock:
            self.dispatch_depth -= 1

    # -- backpressure ---------------------------------------------------------

    def read_pause(self) -> None:
        with self._lock:
            self.read_paused += 1
            self.pause_events += 1

    def read_resume(self) -> None:
        with self._lock:
            self.read_paused -= 1

    # -- export ---------------------------------------------------------------

    def snapshot(self) -> dict:
        """Point-in-time copy of every counter (JSON-serializable)."""
        with self._lock:
            return {
                "kind": self.kind,
                "open_connections": self.open_connections,
                "total_connections": self.total_connections,
                "bytes_in": self.bytes_in,
                "bytes_out": self.bytes_out,
                "frames_in": self.frames_in,
                "frames_out": self.frames_out,
                "json_requests": self.json_requests,
                "dispatch_depth": self.dispatch_depth,
                "dispatched_total": self.dispatched_total,
                "read_paused": self.read_paused,
                "pause_events": self.pause_events,
                "protocol_errors": self.protocol_errors,
            }

"""Velox core: the paper's primary contribution.

The pieces map one-to-one onto the paper's architecture (Figure 2):

* :mod:`repro.core.model` — the ``VeloxModel`` interface (Listing 2),
* :mod:`repro.core.models` — concrete feature functions (matrix
  factorization, personalized linear, ensemble-of-SVMs, random Fourier
  features, a small MLP),
* :mod:`repro.core.online` — per-user online learning (Eq. 2: normal
  equations; Sherman–Morrison rank-one updates; SGD),
* :mod:`repro.core.offline` — offline (re)training on the sparklite
  batch substrate, including ALS for the factor models,
* :mod:`repro.core.prediction` — the model predictor: ``predict`` /
  ``top_k`` with feature and prediction caches,
* :mod:`repro.core.manager` — the model manager: ``observe`` ingestion,
  quality evaluation, staleness detection, retraining, versioning,
* :mod:`repro.core.bandits` — contextual-bandit topK policies,
* :mod:`repro.core.bootstrap` — new-user priors,
* :mod:`repro.core.materialization` — prediction materialization
  strategies (the Section 2.1 straw-men plus Velox's hybrid),
* :mod:`repro.core.velox` — the deployment facade tying it together.
"""

from repro.core.model import VeloxModel, ModelRegistry, ModelVersion
from repro.core.online import (
    UserModelState,
    NormalEquationsUpdater,
    ShermanMorrisonUpdater,
    SgdUpdater,
    make_updater,
)
from repro.core.prediction import PredictionService, PredictionResult
from repro.core.manager import ModelManager, ModelHealth
from repro.core.bandits import (
    BanditPolicy,
    GreedyPolicy,
    EpsilonGreedyPolicy,
    LinUcbPolicy,
    ThompsonSamplingPolicy,
)
from repro.core.bootstrap import UserWeightAverager
from repro.core.selection import (
    HedgeSelector,
    Exp3Selector,
    EpsilonGreedySelector,
    SelectorScope,
    EnsembleRouter,
)
from repro.core.topk import NaiveTopK, BlockedMatrixTopK, ThresholdTopK
from repro.core.shadow import ShadowEvaluator, ShadowReport
from repro.core.udf_inspect import UdfReport, check_retrain_udf, inspect_udf
from repro.core.maintenance import MaintenanceScheduler
from repro.core.velox import Velox

__all__ = [
    "VeloxModel",
    "ModelRegistry",
    "ModelVersion",
    "UserModelState",
    "NormalEquationsUpdater",
    "ShermanMorrisonUpdater",
    "SgdUpdater",
    "make_updater",
    "PredictionService",
    "PredictionResult",
    "ModelManager",
    "ModelHealth",
    "BanditPolicy",
    "GreedyPolicy",
    "EpsilonGreedyPolicy",
    "LinUcbPolicy",
    "ThompsonSamplingPolicy",
    "UserWeightAverager",
    "HedgeSelector",
    "Exp3Selector",
    "EpsilonGreedySelector",
    "SelectorScope",
    "EnsembleRouter",
    "NaiveTopK",
    "BlockedMatrixTopK",
    "ThresholdTopK",
    "ShadowEvaluator",
    "ShadowReport",
    "UdfReport",
    "inspect_udf",
    "check_retrain_udf",
    "MaintenanceScheduler",
    "Velox",
]

"""The serving engine: queues + worker pool between frontend and models.

Requests enter per-(model, node) bounded queues (sharded by the same
router that owns user-weight locality, so a batch never mixes nodes), a
shared worker pool forms batches under the configured policy, and every
batch is evaluated through the vectorized
:meth:`~repro.core.prediction.PredictionService.predict_batch` fast
path. Overload is handled explicitly: full queues shed at admission,
stale requests shed at dequeue, and (optionally) ``top_k`` degrades to
the prediction-cache-only path instead of rejecting.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future

from repro import chaos
from repro.common.clock import Clock, SystemClock
from repro.common.errors import (
    DeadlineExceededError,
    OverloadedError,
    ValidationError,
)
from repro.core.bandits import GreedyPolicy
from repro.metrics.resilience import ResilienceMetrics
from repro.metrics.serving import QueueMetrics
from repro.serving.batching import BatchFormer, make_batching_policy
from repro.serving.config import ServingConfig
from repro.serving.queue import QueuedRequest, RequestQueue

#: Upper bound on how long an idle worker sleeps between queue scans.
_IDLE_WAIT = 0.05
#: Floor for lingering waits so near-ready queues don't busy-spin.
_MIN_WAIT = 1e-4


class ServingEngine:
    """Queued, batched, SLO-aware serving over a Velox deployment.

    Usage::

        engine = ServingEngine(velox, ServingConfig(num_workers=4))
        with engine:                       # starts the worker pool
            future = engine.submit_predict(uid=7, x=42)
            result = future.result()       # a PredictionResult
            best = engine.top_k(uid=7, items=[1, 2, 3], k=2)

    The synchronous in-process path (``velox.predict`` etc.) remains
    untouched; the engine is an optional layer the frontend server and
    benchmarks opt into.

    With replication enabled, batch reads that hit a dead primary are
    retried against the promoted follower inside
    :meth:`~repro.core.prediction.PredictionService.predict_batch`
    (which reports the failure, triggering immediate promotion), so a
    node loss surfaces as bounded-stale results — flagged via
    ``PredictionResult.stale`` — rather than request failures.
    """

    def __init__(
        self,
        velox,
        config: ServingConfig | None = None,
        clock: Clock | None = None,
    ):
        self.velox = velox
        self.config = config if config is not None else ServingConfig()
        self.clock = clock if clock is not None else SystemClock()
        self._cond = threading.Condition()
        self._queues: dict[tuple[str, int], RequestQueue] = {}
        self._formers: dict[tuple[str, int], BatchFormer] = {}
        self._metrics: dict[tuple[str, int], QueueMetrics] = {}
        self._queue_keys: list[tuple[str, int]] = []
        self._scan_offset = 0
        self._workers: list[threading.Thread] = []
        self._running = False
        #: Engine-side resilience counters (deadline sheds, degraded
        #: responses); exported through the status endpoint.
        self.resilience = ResilienceMetrics("engine")

    # -- lifecycle -----------------------------------------------------------

    @property
    def running(self) -> bool:
        """Whether the worker pool is accepting and serving requests."""
        with self._cond:
            return self._running

    def start(self) -> "ServingEngine":
        """Start the worker pool; returns self."""
        with self._cond:
            if self._running:
                raise ValidationError("serving engine already started")
            self._running = True
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"serving-worker-{i}", daemon=True
            )
            for i in range(self.config.num_workers)
        ]
        for worker in self._workers:
            worker.start()
        return self

    def stop(self) -> None:
        """Stop workers and fail everything still queued as overloaded.

        Also drains queues when the engine never started, so no
        submitted future is left forever pending.
        """
        with self._cond:
            self._running = False
            self._cond.notify_all()
        for worker in self._workers:
            worker.join(timeout=5)
        self._workers = []
        for key, queue in self._queues.items():
            for request in queue.drain():
                self._metrics[key].on_shed(at_admission=False)
                request.future.set_exception(
                    OverloadedError(queue.name, "engine stopped")
                )

    def __enter__(self) -> "ServingEngine":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- submission ----------------------------------------------------------

    def submit_predict(
        self,
        uid: int,
        x: object,
        model: str | None = None,
        enqueue_time: float | None = None,
        deadline: float | None = None,
    ) -> Future:
        """Enqueue one point prediction; the future yields a
        :class:`~repro.core.prediction.PredictionResult`.

        ``enqueue_time`` lets a transport layer timestamp the request at
        frame-decode time, so queue-age accounting (and age-bound
        shedding) covers time spent between the wire and the queue.
        ``deadline`` is the request's remaining budget in *relative*
        seconds (measured from ``enqueue_time``); once it is spent the
        engine sheds the request — before compute, never after.
        """
        model_name = self.velox._model_name(model)
        stamp = enqueue_time if enqueue_time is not None else self.clock.now()
        request = QueuedRequest(
            kind="predict",
            model=model_name,
            uid=uid,
            enqueue_time=stamp,
            item=x,
            deadline=None if deadline is None else stamp + float(deadline),
        )
        return self._submit(request)

    def submit_top_k(
        self,
        uid: int,
        items,
        k: int = 1,
        model: str | None = None,
        policy=None,
        item_filter=None,
        enqueue_time: float | None = None,
        deadline: float | None = None,
    ) -> Future:
        """Enqueue a best-k query; the future yields a list of
        :class:`~repro.core.prediction.PredictionResult`.

        ``enqueue_time``/``deadline`` behave as in :meth:`submit_predict`.
        """
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        model_name = self.velox._model_name(model)
        stamp = enqueue_time if enqueue_time is not None else self.clock.now()
        request = QueuedRequest(
            kind="top_k",
            model=model_name,
            uid=uid,
            enqueue_time=stamp,
            items=tuple(items),
            k=k,
            policy=policy,
            item_filter=item_filter,
            deadline=None if deadline is None else stamp + float(deadline),
        )
        return self._submit(request)

    def predict(
        self,
        uid: int,
        x: object,
        model: str | None = None,
        timeout: float | None = None,
        deadline: float | None = None,
    ):
        """Blocking convenience around :meth:`submit_predict`."""
        return self.submit_predict(uid, x, model=model, deadline=deadline).result(
            timeout
        )

    def top_k(
        self,
        uid: int,
        items,
        k: int = 1,
        model: str | None = None,
        policy=None,
        item_filter=None,
        timeout: float | None = None,
        deadline: float | None = None,
    ):
        """Blocking convenience around :meth:`submit_top_k`."""
        future = self.submit_top_k(
            uid, items, k=k, model=model, policy=policy,
            item_filter=item_filter, deadline=deadline,
        )
        return future.result(timeout)

    def _submit(self, request: QueuedRequest) -> Future:
        key = (request.model, self.velox.cluster.router.route_index(request.uid))
        queue, metrics = self._queue_for(key)
        if request.deadline_expired(self.clock.now()):
            # The budget was spent before the request even reached a
            # queue (wire delay, stalled frontend). Shed at admission:
            # queueing work nobody will wait for only hurts neighbours.
            self.resilience.on_deadline_shed("admission")
            metrics.on_shed(at_admission=True)
            raise DeadlineExceededError(
                "admission", f"budget spent before enqueue on {queue.name}"
            )
        if not queue.offer(request):
            if (
                request.kind == "top_k"
                and self.config.degrade_top_k_on_overload
            ):
                # Graceful degradation: answer from the prediction cache
                # only (possibly fewer than k items) instead of rejecting.
                metrics.on_degraded()
                self.resilience.on_degraded("cached")
                request.future.set_result(
                    self.velox.service.top_k_cached(
                        request.model,
                        request.uid,
                        list(request.items),
                        k=request.k,
                        policy=request.policy,
                    )
                )
                return request.future
            metrics.on_shed(at_admission=True)
            raise OverloadedError(
                queue.name, f"queue depth bound {queue.max_depth} reached"
            )
        metrics.on_enqueue()
        with self._cond:
            self._cond.notify()
        return request.future

    def _queue_for(
        self, key: tuple[str, int]
    ) -> tuple[RequestQueue, QueueMetrics]:
        with self._cond:
            queue = self._queues.get(key)
            if queue is None:
                name = f"{key[0]}@node{key[1]}"
                queue = RequestQueue(name, self.config.max_queue_depth)
                self._queues[key] = queue
                self._formers[key] = BatchFormer(
                    make_batching_policy(self.config)
                )
                self._metrics[key] = QueueMetrics(name)
                self._queue_keys.append(key)
            return queue, self._metrics[key]

    # -- worker pool ---------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                if not self._running:
                    return
                job, wait_hint = self._next_batch()
                if job is None:
                    self._cond.wait(timeout=wait_hint)
                    continue
            self._execute(*job)

    def _next_batch(self):
        """Scan queues round-robin for the next servable batch.

        Returns ``((key, batch), _)`` when a batch formed, else
        ``(None, seconds_until_something_may_be_ready)``. Expired
        requests are shed here, before batch formation, so a burst that
        outran the workers fails fast instead of serving stale. Callers
        hold ``self._cond``.
        """
        now = self.clock.now()
        wait_hint = _IDLE_WAIT
        num_queues = len(self._queue_keys)
        for offset in range(num_queues):
            index = (self._scan_offset + offset) % num_queues
            key = self._queue_keys[index]
            queue = self._queues[key]
            former = self._formers[key]
            metrics = self._metrics[key]
            for expired in queue.pop_expired(now, self.config.max_queue_age):
                metrics.on_shed(at_admission=False)
                expired.future.set_exception(
                    OverloadedError(
                        queue.name,
                        f"queued {expired.age(now):.4f}s, age bound "
                        f"{self.config.max_queue_age}s",
                    )
                )
            for dead in queue.pop_deadline_expired(now):
                self.resilience.on_deadline_shed("queue")
                metrics.on_shed(at_admission=False)
                dead.future.set_exception(
                    DeadlineExceededError(
                        "queue",
                        f"budget spent after {dead.age(now):.4f}s on "
                        f"{queue.name}",
                    )
                )
            batch = former.form(queue, now)
            if batch:
                self._scan_offset = (index + 1) % num_queues
                return (key, batch), 0.0
            ready_in = former.ready_in(queue, now)
            if ready_in is not None:
                wait_hint = min(wait_hint, max(_MIN_WAIT, ready_in))
        return None, wait_hint

    def _execute(self, key: tuple[str, int], batch: list[QueuedRequest]) -> None:
        model_name = key[0]
        metrics = self._metrics[key]
        former = self._formers[key]
        start = self.clock.now()
        # Last deadline gate, *before* any compute (or injected handler
        # delay): a request whose budget is already spent is shed here;
        # one that starts scoring is always completed and delivered,
        # even late. "Shed before compute, never after."
        live = []
        for request in batch:
            if request.deadline_expired(start):
                self.resilience.on_deadline_shed("pre-compute")
                metrics.on_shed(at_admission=False)
                request.future.set_exception(
                    DeadlineExceededError(
                        "pre-compute",
                        f"budget spent after {request.age(start):.4f}s "
                        f"waiting on {model_name}@node{key[1]}",
                    )
                )
            else:
                live.append(request)
        batch = live
        if not batch:
            return
        handler_delay = chaos.latency("engine.slow_handler")
        if handler_delay > 0.0:
            self.clock.advance(handler_delay)
        for request in batch:
            metrics.wait.record(request.age(start))
        metrics.batch_sizes.observe(len(batch))
        try:
            outcomes = self._run_batch(model_name, batch)
        except Exception:
            # One poisoned request must not fail its batch neighbours:
            # fall back to serving each request individually.
            outcomes = [self._run_single(request) for request in batch]
        end = self.clock.now()
        metrics.service.record(max(0.0, end - start))
        worst = 0.0
        for request, outcome in zip(batch, outcomes):
            elapsed = max(0.0, end - request.enqueue_time)
            metrics.end_to_end.record(elapsed)
            worst = max(worst, elapsed)
            metrics.on_complete(slo_hit=elapsed <= self.config.slo_p99)
            if isinstance(outcome, BaseException):
                request.future.set_exception(outcome)
            else:
                request.future.set_result(outcome)
        former.policy.observe(len(batch), worst)

    def _run_batch(self, model_name: str, batch: list[QueuedRequest]):
        """Evaluate a whole batch through one ``predict_batch`` call.

        ``top_k`` requests are flattened into the same stacked scoring
        pass as point predictions, then re-ranked per request.
        """
        service = self.velox.service
        user_ids: list[int] = []
        xs: list = []
        spans: list[tuple[QueuedRequest, int, int]] = []
        for request in batch:
            begin = len(user_ids)
            if request.kind == "predict":
                user_ids.append(request.uid)
                xs.append(request.item)
            else:
                candidates = list(request.items)
                if request.item_filter is not None:
                    candidates = [
                        x for x in candidates if request.item_filter(x)
                    ]
                user_ids.extend([request.uid] * len(candidates))
                xs.extend(candidates)
            spans.append((request, begin, len(user_ids)))
        results = service.predict_batch(model_name, user_ids, xs)
        outcomes = []
        for request, begin, stop in spans:
            slice_results = results[begin:stop]
            if request.kind == "predict":
                outcomes.append(slice_results[0])
            else:
                policy = (
                    request.policy if request.policy is not None else GreedyPolicy()
                )
                ranked = sorted(
                    slice_results,
                    key=lambda r: policy.selection_score(r.score, r.uncertainty),
                    reverse=True,
                )
                outcomes.append(ranked[: request.k])
        return outcomes

    def _run_single(self, request: QueuedRequest):
        """Scalar fallback; returns the result or the exception."""
        service = self.velox.service
        try:
            if request.kind == "predict":
                return service.predict(request.model, request.uid, request.item)
            return service.top_k(
                request.model,
                request.uid,
                list(request.items),
                k=request.k,
                policy=request.policy,
                item_filter=request.item_filter,
            )
        except Exception as err:
            return err

    # -- observability -------------------------------------------------------

    def queue_metrics(self) -> dict[str, QueueMetrics]:
        """Live :class:`QueueMetrics` objects keyed by queue name."""
        with self._cond:
            return {m.name: m for m in self._metrics.values()}

    def queue_depths(self) -> dict[str, int]:
        """Current depth of every queue."""
        with self._cond:
            return {q.name: len(q) for q in self._queues.values()}

    def metrics_snapshot(self) -> dict[str, dict]:
        """Plain-dict snapshot of every queue's metrics."""
        return {
            name: metrics.snapshot()
            for name, metrics in self.queue_metrics().items()
        }

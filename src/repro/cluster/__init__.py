"""Cluster simulation: nodes, partition placement, routing, network costs.

Velox deploys a co-located (model manager, model predictor) pair with
each Tachyon worker and routes each user's requests to the node owning
that user's weight-vector partition, so user-weight reads and writes are
always local (paper Section 5). This subpackage models that fabric inside
one process:

* :class:`Partitioner` implementations map keys to partitions,
* :class:`Node` represents one worker with its local shards,
* :class:`Router` policies map a request's uid to a serving node —
  :class:`UserAwareRouter` (the paper's design) vs
  :class:`RandomRouter` (the ablation baseline),
* :class:`NetworkModel` charges modeled latency/bytes for remote
  accesses on a virtual clock, giving deterministic locality metrics.
"""

from repro.cluster.partitioner import (
    Partitioner,
    HashPartitioner,
    ModuloPartitioner,
    RangePartitioner,
)
from repro.cluster.network import NetworkModel, NetworkStats
from repro.cluster.node import Node
from repro.cluster.router import Router, UserAwareRouter, RandomRouter, RoundRobinRouter
from repro.cluster.cluster import VeloxCluster

__all__ = [
    "Partitioner",
    "HashPartitioner",
    "ModuloPartitioner",
    "RangePartitioner",
    "NetworkModel",
    "NetworkStats",
    "Node",
    "Router",
    "UserAwareRouter",
    "RandomRouter",
    "RoundRobinRouter",
    "VeloxCluster",
]

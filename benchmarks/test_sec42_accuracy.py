"""Section 4.2 accuracy experiment: hybrid online+offline vs full retrain.

Paper (in-text result): "By initializing the latent features with 10
ratings from each user and then using an additional 7 ratings, we were
able to achieve 1.6% improvement in prediction accuracy by applying the
online strategy. This is comparable to the 2.3% increase in accuracy
achieved using full offline retraining." Protocol: offline-init θ on
half the data; stream 70% of the remainder through online updates;
evaluate held-out error for {no-update, online, full-retrain}.

Run on SynthLens (the documented MovieLens10M substitution). Shape
assertions:
* both online updates and full retraining improve over no-update,
* online updates recover a substantial fraction of the full-retrain
  improvement (the paper's ratio is 1.6/2.3 ≈ 0.7).
"""

from __future__ import annotations

from repro import Velox, VeloxConfig
from repro.batch import BatchContext
from repro.core.models import MatrixFactorizationModel
from repro.core.offline import als_train, predict_rating
from repro.data import SynthLensConfig, generate_synthlens, paper_protocol_split
from repro.metrics import rmse

from conftest import write_result

CORPUS = SynthLensConfig(
    num_users=270,
    num_items=180,
    rank=8,
    ratings_per_user_mean=40.0,
    min_ratings_per_user=20,
    zipf_exponent=0.8,
    noise_std=0.25,
    seed=3,
)
RANK = 8
ALS_ITERATIONS = 8


def run_protocol() -> dict[str, float]:
    """The full Section 4.2 protocol; returns holdout RMSE per strategy."""
    lens = generate_synthlens(CORPUS)
    split = paper_protocol_split(lens.ratings, init_fraction=0.5, stream_fraction=0.7)
    ctx = BatchContext(default_parallelism=4)

    def triples(ratings):
        return [(r.uid, r.item_id, r.rating) for r in ratings]

    init_model = als_train(
        ctx, triples(split.init), rank=RANK, num_items=CORPUS.num_items,
        num_iterations=ALS_ITERATIONS,
    )
    holdout_truth = [r.rating for r in split.holdout]

    # Strategy 1: no updates at all — serve the init model forever.
    no_update = rmse(
        holdout_truth,
        [predict_rating(init_model, r.uid, r.item_id) for r in split.holdout],
    )

    # Strategy 2: Velox's hybrid — θ frozen, per-user online updates.
    model = MatrixFactorizationModel(
        "songs", init_model.item_factors, init_model.item_bias, init_model.global_mean
    )
    weights = {
        uid: model.pack_user_weights(
            init_model.user_factors[uid], init_model.user_bias[uid]
        )
        for uid in init_model.user_factors
    }
    velox = Velox.deploy(VeloxConfig(num_nodes=4), auto_retrain=False)
    velox.add_model(model, initial_user_weights=weights)
    for r in split.stream:
        velox.observe(uid=r.uid, x=r.item_id, y=r.rating)
    online = rmse(
        holdout_truth,
        [velox.predict(None, r.uid, r.item_id)[1] for r in split.holdout],
    )

    # Strategy 3: full offline retraining on init + stream.
    full_model = als_train(
        ctx, triples(split.init + split.stream), rank=RANK,
        num_items=CORPUS.num_items, num_iterations=ALS_ITERATIONS,
    )
    full = rmse(
        holdout_truth,
        [predict_rating(full_model, r.uid, r.item_id) for r in split.holdout],
    )
    return {"no_update": no_update, "online": online, "full_retrain": full}


def test_sec42_accuracy_table(benchmark):
    results = run_protocol()
    base = results["no_update"]
    online_improvement = (base - results["online"]) / base * 100
    full_improvement = (base - results["full_retrain"]) / base * 100

    lines = [
        "strategy       holdout_rmse  improvement_vs_no_update",
        f"no_update      {results['no_update']:<14.4f}{0.0:.2f}%",
        f"online         {results['online']:<14.4f}{online_improvement:.2f}%",
        f"full_retrain   {results['full_retrain']:<14.4f}{full_improvement:.2f}%",
        "",
        f"paper: online +1.6% vs full retrain +2.3% (ratio 0.70)",
        f"ours:  online +{online_improvement:.2f}% vs full retrain "
        f"+{full_improvement:.2f}% (ratio "
        f"{online_improvement / max(full_improvement, 1e-9):.2f})",
    ]
    write_result("sec42_accuracy", lines)

    # Shape: both strategies beat serving the stale model.
    assert results["online"] < base
    assert results["full_retrain"] < base
    # Shape: online recovers a large fraction of the retrain improvement
    # (paper ratio ~0.7; we accept anything substantial, and allow online
    # to slightly exceed full retraining, which heavier-regularized ALS
    # can permit on synthetic data).
    # The run is fully seeded, so this ratio is deterministic (~0.79
    # with the committed corpus, vs the paper's 0.70); the margin below
    # guards against numerical-library differences, not randomness.
    ratio = online_improvement / full_improvement
    assert ratio > 0.4, f"online recovered only {ratio:.2f} of retrain gain"

    # Timing is incidental here; run the protocol once for the record.
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

"""The VeloxModel interface (paper Listing 2) and the model registry.

A ``VeloxModel`` bundles the feature transformation function ``f`` with
its global parameters θ (``state``), a retraining procedure expressed
against the batch substrate, and a loss for quality evaluation. Models
are versioned: retraining produces a new instance with ``version + 1``,
and the registry keeps the history for diagnostics and rollback
(paper Section 2.1, "model lifecycle management").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ModelNotFoundError, ValidationError


class VeloxModel(ABC):
    """A named, versioned feature-transformation model.

    Subclasses set :attr:`materialized` — ``True`` when ``features`` is a
    table lookup over precomputed vectors (e.g. latent factors), ``False``
    when it is a computation over raw input (e.g. basis functions, a
    neural network). The serving tier uses this flag to choose between
    caching table reads and caching computed results (paper Section 5).
    """

    #: Whether features come from a materialized table (True) or are
    #: computed from raw input (False).
    materialized: bool = False

    def __init__(self, name: str, dimension: int, version: int = 0):
        if not name:
            raise ValidationError("model name must be non-empty")
        if dimension < 1:
            raise ValidationError(f"dimension must be >= 1, got {dimension}")
        if version < 0:
            raise ValidationError(f"version must be >= 0, got {version}")
        self.name = name
        self.dimension = dimension
        self.version = version

    # -- the Listing 2 surface ------------------------------------------------

    @abstractmethod
    def features(self, x: object) -> np.ndarray:
        """Map input ``x`` into the d-dimensional feature space.

        For materialized models ``x`` is an item id; for computed models
        it is the raw input object. Must return a 1-D float array of
        length :attr:`dimension`.
        """

    @abstractmethod
    def retrain(self, batch_context, observations, user_weights: dict):
        """Produce a retrained ``(new_model, new_user_weights)`` pair.

        ``batch_context`` is the sparklite :class:`BatchContext` (the
        paper defines retraining as an opaque Spark UDF); ``observations``
        is the list of :class:`~repro.store.Observation` records read
        from the storage layer; ``user_weights`` maps uid to the current
        weight vectors. Implementations must not mutate their inputs.
        """

    def loss(self, y: float, y_predict: float, x: object, uid: int) -> float:
        """Per-observation quality loss; squared error by default
        (the prototype's configured error function, Section 4.2)."""
        diff = y - y_predict
        return diff * diff

    # -- shared helpers -------------------------------------------------------

    def initial_user_weights(self) -> np.ndarray:
        """Weights assigned to a brand-new user before any bootstrap
        information exists. Zeros by default; models whose feature space
        embeds an intercept slot override this (see the MF model)."""
        return np.zeros(self.dimension)

    def prior_mean(self) -> np.ndarray:
        """The ridge prior w0 toward which online updates regularize.

        Plain L2 regularization (``w0 = 0``) matches Eq. 2 exactly;
        models with structural slots (e.g. a fixed intercept multiplier)
        shift the prior so regularization does not fight the structure.
        """
        return np.zeros(self.dimension)

    def with_version(self, version: int) -> "VeloxModel":
        """A shallow copy of this model stamped with a new version
        (used for rollbacks and by retrain implementations)."""
        import copy

        if version < 0:
            raise ValidationError(f"version must be >= 0, got {version}")
        clone = copy.copy(self)
        clone.version = version
        return clone

    def validate_features(self, vector: np.ndarray) -> np.ndarray:
        """Shape/NaN-check a feature vector before serving it."""
        arr = np.asarray(vector, dtype=float)
        if arr.ndim != 1 or arr.shape[0] != self.dimension:
            raise ValidationError(
                f"model {self.name!r} expects feature vectors of length "
                f"{self.dimension}, got shape {arr.shape}"
            )
        if not np.all(np.isfinite(arr)):
            raise ValidationError(
                f"model {self.name!r} produced non-finite features"
            )
        return arr

    def __repr__(self) -> str:
        kind = "materialized" if self.materialized else "computed"
        return (
            f"{type(self).__name__}(name={self.name!r}, d={self.dimension}, "
            f"v{self.version}, {kind})"
        )


@dataclass
class ModelVersion:
    """One entry in a model's version history."""

    version: int
    model: VeloxModel
    trained_on_observations: int = 0
    note: str = ""


@dataclass
class _ModelEntry:
    current: VeloxModel
    history: list[ModelVersion] = field(default_factory=list)


class ModelRegistry:
    """Holds the current version and history of every deployed model."""

    def __init__(self):
        self._entries: dict[str, _ModelEntry] = {}

    def register(self, model: VeloxModel, note: str = "initial deployment") -> None:
        """Deploy a new model name; raises if the name exists."""
        if model.name in self._entries:
            raise ValidationError(
                f"model {model.name!r} is already registered; use "
                "publish() to deploy a new version"
            )
        entry = _ModelEntry(current=model)
        entry.history.append(ModelVersion(model.version, model, note=note))
        self._entries[model.name] = entry

    def publish(
        self, model: VeloxModel, trained_on_observations: int = 0, note: str = ""
    ) -> None:
        """Swap in a retrained model; its version must strictly increase."""
        entry = self._entry(model.name)
        if model.version <= entry.current.version:
            raise ValidationError(
                f"new version {model.version} must exceed current "
                f"{entry.current.version} for model {model.name!r}"
            )
        entry.history.append(
            ModelVersion(model.version, model, trained_on_observations, note)
        )
        entry.current = model

    def get(self, name: str) -> VeloxModel:
        """The currently serving version of a model."""
        return self._entry(name).current

    def get_version(self, name: str, version: int) -> VeloxModel:
        """A specific historical version."""
        for record in self._entry(name).history:
            if record.version == version:
                return record.model
        raise ModelNotFoundError(name, version)

    def rollback(self, name: str, version: int) -> VeloxModel:
        """Make a historical version current again (as a *new* version,
        so the version counter keeps moving forward and caches based on
        (name, version) keys invalidate correctly)."""
        entry = self._entry(name)
        old = self.get_version(name, version)
        revived = old.with_version(entry.current.version + 1)
        entry.history.append(
            ModelVersion(revived.version, revived, note=f"rollback to v{version}")
        )
        entry.current = revived
        return revived

    def history(self, name: str) -> list[ModelVersion]:
        """Every recorded version of a model, oldest first."""
        return list(self._entry(name).history)

    def names(self) -> list[str]:
        """Sorted names of all registered models."""
        return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def _entry(self, name: str) -> _ModelEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise ModelNotFoundError(name) from None

"""Fork executor: frame transport, effect replay, recovery, fallback."""

import io
import os

import numpy as np
import pytest

from repro.batch import BatchContext, FailureInjector
from repro.batch import forkexec
from repro.batch.scheduler import JobMetrics
from repro.batch.shuffle import ShuffleStore
from repro.common.errors import BatchExecutionError, TaskFailedError

pytestmark = pytest.mark.skipif(
    not forkexec.fork_available(), reason="platform has no os.fork"
)


@pytest.fixture
def fork_ctx():
    return BatchContext(default_parallelism=3, executor="fork")


class TestFrameCodec:
    def roundtrip(self, obj, shm_min_bytes=None):
        out = io.BytesIO()
        forkexec.write_frame(out, forkexec._FRAME_TASK, obj, shm_min_bytes)
        kind, decoded = forkexec.read_frame(io.BytesIO(out.getvalue()))
        assert kind == forkexec._FRAME_TASK
        return decoded

    def test_plain_object(self):
        assert self.roundtrip({"partition": 3, "ok": True}) == {
            "partition": 3,
            "ok": True,
        }

    def test_numpy_out_of_band(self):
        array = np.arange(1000, dtype=np.float64).reshape(50, 20)
        decoded = self.roundtrip({"value": array})
        assert np.array_equal(decoded["value"], array)
        assert decoded["value"].dtype == array.dtype

    def test_shared_memory_path(self):
        # Threshold 1 forces every out-of-band buffer through shm.
        array = np.arange(512, dtype=np.float64)
        decoded = self.roundtrip([array, array * 2], shm_min_bytes=1)
        assert np.array_equal(decoded[0], array)
        assert np.array_equal(decoded[1], array * 2)

    def test_truncated_stream_returns_none(self):
        out = io.BytesIO()
        forkexec.write_frame(out, forkexec._FRAME_TASK, list(range(100)))
        truncated = out.getvalue()[:-5]
        assert forkexec.read_frame(io.BytesIO(truncated)) is None

    def test_empty_stream_returns_none(self):
        assert forkexec.read_frame(io.BytesIO(b"")) is None


class TestForkExecution:
    def test_collect_matches_serial(self, fork_ctx):
        data = list(range(100))
        serial = BatchContext(default_parallelism=1)
        assert (
            fork_ctx.parallelize(data, 6).map(lambda x: x * 3).collect()
            == serial.parallelize(data, 6).map(lambda x: x * 3).collect()
        )

    def test_shuffle_job(self, fork_ctx):
        pairs = fork_ctx.parallelize([(i % 5, 1) for i in range(50)], 6)
        assert pairs.reduce_by_key(lambda a, b: a + b).collect_as_map() == {
            k: 10 for k in range(5)
        }

    def test_numpy_results_bit_exact(self, fork_ctx):
        rng = np.random.default_rng(7)
        arrays = [rng.normal(size=(40, 8)) for _ in range(6)]
        doubled = (
            fork_ctx.parallelize(arrays, 3).map(lambda a: a * 2.0).collect()
        )
        for original, result in zip(arrays, doubled):
            assert np.array_equal(result, original * 2.0)

    def test_shared_memory_transport(self, fork_ctx, monkeypatch):
        # Shrink the threshold so real task results take the shm path;
        # children inherit the patched module global through fork.
        monkeypatch.setattr(forkexec, "SHM_MIN_BYTES", 64)
        arrays = [np.full((100,), float(i)) for i in range(6)]
        results = fork_ctx.parallelize(arrays, 3).map(lambda a: a + 1).collect()
        for i, result in enumerate(results):
            assert np.array_equal(result, np.full((100,), float(i)) + 1)

    def test_stage_profile_records_fork(self, fork_ctx):
        fork_ctx.parallelize(range(30), 6).map(lambda x: x).collect()
        profile = fork_ctx.metrics.stage_profiles[-1]
        assert profile.executor == "fork"
        assert profile.workers == 3
        assert profile.tasks == 6
        assert profile.wall_seconds > 0
        assert 0 <= profile.utilization <= 1.5  # timer noise tolerance

    def test_inline_when_single_partition(self, fork_ctx):
        fork_ctx.parallelize([1], 1).collect()
        assert fork_ctx.metrics.stage_profiles[-1].executor == "inline"

    def test_fallback_to_threads(self, monkeypatch):
        monkeypatch.setattr(forkexec, "fork_available", lambda: False)
        ctx = BatchContext(default_parallelism=3, executor="fork")
        assert ctx.parallelize(range(20), 4).map(lambda x: -x).collect() == [
            -x for x in range(20)
        ]
        assert ctx.metrics.stage_profiles[-1].executor == "thread"


class TestForkSideEffects:
    def test_accumulator_adds_do_not_vanish(self, fork_ctx):
        counter = fork_ctx.accumulator(0)
        result = (
            fork_ctx.parallelize(range(60), 6)
            .map(lambda x: counter.add(1) or x)
            .collect()
        )
        assert result == list(range(60))
        assert counter.value == 60

    def test_accumulator_custom_merge(self, fork_ctx):
        collector = fork_ctx.accumulator([], merge_fn=lambda a, b: a + [b])
        fork_ctx.parallelize([4, 5, 6], 3).map(
            lambda x: collector.add(x) or x
        ).collect()
        assert sorted(collector.value) == [4, 5, 6]

    def test_accumulator_merge_order_is_partition_order(self, fork_ctx):
        # With an order-sensitive merge_fn the fork executor must match
        # inline execution: deltas replay in partition order.
        def run(ctx):
            trace = ctx.accumulator([], merge_fn=lambda a, b: a + [b])
            ctx.parallelize(range(8), 4).map(
                lambda x: trace.add(x) or x
            ).collect()
            return trace.value

        assert run(fork_ctx) == run(BatchContext(default_parallelism=1))

    def test_foreach_mutates_driver_state(self, fork_ctx):
        # foreach is pinned local_only: driver-side mutation must be
        # visible even under the fork executor.
        seen = []
        fork_ctx.parallelize(range(10), 4).foreach(seen.append)
        assert sorted(seen) == list(range(10))

    def test_save_to_table_under_fork(self, fork_ctx):
        from repro.store import VeloxStore

        table = VeloxStore(default_partitions=2).create_table("t")
        written = fork_ctx.parallelize(
            [(i, i * 10) for i in range(20)], 4
        ).save_to_table(table)
        assert written == 20
        assert table.get(7) == 70

    def test_driver_unpersist_between_jobs_is_safe(self, fork_ctx):
        first = fork_ctx.broadcast(100)
        result = (
            fork_ctx.parallelize(range(6), 3)
            .map(lambda x: x + first.value)
            .collect()
        )
        assert result == [x + 100 for x in range(6)]
        first.unpersist()
        second = fork_ctx.broadcast(200)
        assert fork_ctx.parallelize([1], 1).map(
            lambda x: x + second.value
        ).collect() == [201]

    def test_task_side_unpersist_does_not_leak_to_driver(self, fork_ctx):
        handle = fork_ctx.broadcast(42)

        def read_then_unpersist(x):
            value = handle.value
            handle.unpersist()  # local to the forked child
            return x + value

        # One record per partition: each forked child reads once, then
        # poisons only its own copy-on-write copy of the handle.
        result = (
            fork_ctx.parallelize(range(2), 2).map(read_then_unpersist).collect()
        )
        assert result == [x + 42 for x in range(2)]
        assert handle.value == 42  # driver copy untouched


class TestForkFailures:
    def test_task_error_propagates_with_cause(self, fork_ctx):
        def boom(x):
            if x == 7:
                raise RuntimeError("bad record")
            return x

        with pytest.raises(TaskFailedError) as exc:
            fork_ctx.parallelize(range(10), 4).map(boom).collect()
        assert isinstance(exc.value.cause, RuntimeError)

    def test_unpicklable_error_is_summarized(self, fork_ctx):
        def boom(x):
            raise RuntimeError(lambda: None)  # lambda arg defeats pickle

        # The wrapper keeps its TaskFailedError shape; only the
        # unpicklable cause is replaced with a summary.
        with pytest.raises(TaskFailedError) as exc:
            fork_ctx.parallelize([1, 2], 2).map(boom).collect()
        assert isinstance(exc.value.cause, BatchExecutionError)
        assert "RuntimeError" in str(exc.value.cause)

    def test_worker_kill_recovered(self):
        injector = FailureInjector(worker_kills={1})
        ctx = BatchContext(
            default_parallelism=3, executor="fork", injector=injector
        )
        assert ctx.parallelize(range(12), 4).map(lambda x: x * 2).collect() == [
            x * 2 for x in range(12)
        ]
        assert injector.worker_kills == set()  # consumed by the driver
        assert ctx.metrics.injected_failures >= 1
        assert ctx.metrics.task_retries >= 1

    def test_worker_kill_loses_only_unreported_partitions(self):
        # Partition 3 is killed; 0-2 complete in the first round and
        # must not be recomputed (their accumulator adds land once).
        injector = FailureInjector(worker_kills={3})
        ctx = BatchContext(
            default_parallelism=4, executor="fork", injector=injector
        )
        counter = ctx.accumulator(0)
        result = ctx.parallelize(range(8), 4).map(
            lambda x: counter.add(1) or x
        ).collect()
        assert result == list(range(8))
        assert counter.value == 8

    def test_persistent_worker_death_exhausts_attempts(self):
        class AlwaysKill:
            """An injector whose kill never clears (hard crash loop)."""

            def should_kill_worker(self, partition):
                return partition == 1

            def consume_worker_kill(self, partition):
                return False

            def apply_consumed_events(self, events):
                pass

        metrics = JobMetrics()
        with pytest.raises(TaskFailedError) as exc:
            forkexec.run_forked(
                lambda p: p,
                [0, 1, 2],
                num_workers=2,
                metrics=metrics,
                shuffle_store=ShuffleStore(),
                injector=AlwaysKill(),
                max_attempts=3,
            )
        assert exc.value.attempts == 3
        assert isinstance(exc.value.cause, BatchExecutionError)

    def test_surviving_results_still_replayed_after_failure(self, fork_ctx):
        # A failing task must not discard sibling tasks' accumulator
        # deltas from the same stage.
        counter = fork_ctx.accumulator(0)

        def count_or_boom(x):
            counter.add(1)
            if x == 0:
                raise RuntimeError("boom")
            return x

        with pytest.raises(TaskFailedError):
            fork_ctx.parallelize(range(6), 3).map(count_or_boom).collect()
        assert counter.value >= 4  # the two surviving partitions landed


class TestForkDeterminism:
    def test_matches_thread_executor_bitwise(self):
        rng = np.random.default_rng(3)
        data = [(int(k), rng.normal(size=4)) for k in range(40) for _ in range(3)]

        def run(executor):
            ctx = BatchContext(default_parallelism=4, executor=executor)
            return (
                ctx.parallelize(data, 6)
                .reduce_by_key(lambda a, b: a + b)
                .collect_as_map()
            )

        forked, threaded = run("fork"), run("thread")
        assert set(forked) == set(threaded)
        for key in forked:
            assert np.array_equal(forked[key], threaded[key])

"""Logistic online updater: convergence, calibration, validation."""

import numpy as np
import pytest

from repro.common.errors import ConfigError, ValidationError
from repro.core.online import (
    LogisticUpdater,
    UserModelState,
    make_updater,
    sigmoid,
)


def logistic_stream(rng, true_w, count):
    for __ in range(count):
        features = rng.normal(size=true_w.shape[0])
        probability = float(sigmoid(true_w @ features))
        yield features, float(rng.random() < probability)


class TestSigmoid:
    def test_known_values(self):
        assert sigmoid(0.0) == pytest.approx(0.5)
        assert sigmoid(100.0) == pytest.approx(1.0)
        assert sigmoid(-100.0) == pytest.approx(0.0)

    def test_no_overflow_on_extremes(self):
        assert np.isfinite(sigmoid(np.array([-1e6, 1e6]))).all()

    def test_symmetry(self):
        z = np.linspace(-5, 5, 11)
        assert np.allclose(sigmoid(z) + sigmoid(-z), 1.0)


class TestLogisticUpdater:
    def test_recovers_planted_direction(self, rng):
        true_w = np.array([2.0, -1.5, 0.5])
        state = UserModelState(3, regularization=0.5)
        updater = LogisticUpdater()
        for features, label in logistic_stream(rng, true_w, 400):
            updater.update(state, features, label)
        cosine = float(
            state.weights @ true_w
            / (np.linalg.norm(state.weights) * np.linalg.norm(true_w))
        )
        assert cosine > 0.95

    def test_predictions_are_calibrated(self, rng):
        true_w = np.array([1.5, -1.0])
        state = UserModelState(2, regularization=0.5)
        updater = LogisticUpdater()
        for features, label in logistic_stream(rng, true_w, 500):
            updater.update(state, features, label)
        # Among fresh examples predicted ~70-90% positive, the empirical
        # rate should be in that band too.
        bucket_labels = []
        for features, label in logistic_stream(rng, true_w, 3000):
            probability = LogisticUpdater.predict_probability(state, features)
            if 0.7 <= probability <= 0.9:
                bucket_labels.append(label)
        assert len(bucket_labels) > 50
        assert 0.62 <= float(np.mean(bucket_labels)) <= 0.95

    def test_matches_penalized_mle(self, rng):
        """The updater's weights equal a direct IRLS solve on the data."""
        true_w = np.array([1.0, -1.0, 0.5, 0.0])
        state = UserModelState(4, regularization=1.0)
        updater = LogisticUpdater(newton_iterations=50)
        data = list(logistic_stream(rng, true_w, 60))
        for features, label in data:
            updater.update(state, features, label)

        f_matrix = np.vstack([f for f, __ in data])
        labels = np.asarray([y for __, y in data])
        weights = np.zeros(4)
        for __ in range(100):
            probabilities = sigmoid(f_matrix @ weights)
            gradient = f_matrix.T @ (probabilities - labels) + 1.0 * weights
            hessian_w = probabilities * (1 - probabilities)
            hessian = (f_matrix * hessian_w[:, None]).T @ f_matrix + np.eye(4)
            weights = weights - np.linalg.solve(hessian, gradient)
        assert np.allclose(state.weights, weights, atol=1e-6)

    def test_progressive_loss_is_log_loss(self):
        state = UserModelState(2, regularization=1.0)
        updater = LogisticUpdater()
        updater.update(state, np.array([1.0, 0.0]), 1.0)
        # Before any learning the prediction is p=0.5 -> log-loss ln 2.
        assert state.progressive_loss.mean == pytest.approx(np.log(2.0))

    def test_uncertainty_shrinks_with_data(self, rng):
        state = UserModelState(3, regularization=1.0)
        updater = LogisticUpdater()
        probe = np.array([1.0, 1.0, 0.0])
        before = state.uncertainty(probe)
        for features, label in logistic_stream(rng, np.ones(3), 40):
            updater.update(state, features, label)
        assert state.uncertainty(probe) < before

    def test_label_validation(self):
        state = UserModelState(2, regularization=1.0)
        updater = LogisticUpdater()
        with pytest.raises(ValidationError):
            updater.update(state, np.ones(2), 3.5)

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            LogisticUpdater(newton_iterations=0)
        with pytest.raises(ConfigError):
            LogisticUpdater(tolerance=0.0)

    def test_factory(self):
        assert isinstance(make_updater("logistic"), LogisticUpdater)


class TestLogisticDeployment:
    def test_click_model_end_to_end(self, rng):
        """A CTR-style deployment: binary feedback through the full
        Velox observe path with the logistic error function."""
        from repro import Velox, VeloxConfig
        from repro.core.models import PersonalizedLinearModel

        velox = Velox.deploy(
            VeloxConfig(num_nodes=2, online_update_method="logistic"),
            auto_retrain=False,
        )
        velox.add_model(PersonalizedLinearModel("ctr", input_dimension=3))
        uid = 7
        true_w = np.array([2.0, -2.0, 1.0, 0.0])  # includes intercept slot
        for __ in range(120):
            x = rng.normal(size=3)
            features = np.concatenate([x, [1.0]])
            label = float(rng.random() < sigmoid(true_w @ features))
            velox.observe(uid=uid, x=x, y=label)
        state = velox.manager.user_state_table("ctr").get(uid)
        cosine = float(
            state.weights @ true_w
            / (np.linalg.norm(state.weights) * np.linalg.norm(true_w))
        )
        assert cosine > 0.85

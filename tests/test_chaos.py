"""Chaos layer: schedule validation/serde, deterministic draws, the
injector's budgets and windows, the process-wide runtime, and the batch
tier's schedule-driven worker kills."""

from __future__ import annotations

import math
import threading

import pytest

from repro import chaos
from repro.chaos import (
    ChaosInjector,
    FaultRule,
    FaultSchedule,
    ScheduledFailureInjector,
    scheduled_worker_kills,
)
from repro.common.clock import SimulatedClock
from repro.common.errors import ConfigError, TransportError
from repro.frontend import ApiResponse, wire


class TestFaultRuleValidation:
    def test_rejects_empty_point(self):
        with pytest.raises(ConfigError, match="point"):
            FaultRule("")

    def test_rejects_probability_out_of_range(self):
        with pytest.raises(ConfigError, match="probability"):
            FaultRule("wire.reset", probability=1.5)
        with pytest.raises(ConfigError, match="probability"):
            FaultRule("wire.reset", probability=-0.1)

    def test_rejects_negative_magnitude_and_jitter(self):
        with pytest.raises(ConfigError, match="magnitude"):
            FaultRule("wire.delay_response", magnitude=-1.0)
        with pytest.raises(ConfigError, match="jitter"):
            FaultRule("wire.delay_response", jitter=-0.5)

    def test_rejects_jitter_exceeding_magnitude(self):
        with pytest.raises(ConfigError, match="jitter"):
            FaultRule("wire.delay_response", magnitude=0.01, jitter=0.02)

    def test_rejects_inverted_window(self):
        with pytest.raises(ConfigError, match="window"):
            FaultRule("wire.reset", start=2.0, stop=1.0)
        with pytest.raises(ConfigError, match="window"):
            FaultRule("wire.reset", start=1.0, stop=1.0)

    def test_rejects_negative_budget(self):
        with pytest.raises(ConfigError, match="max_faults"):
            FaultRule("wire.reset", max_faults=-1)

    def test_schedule_rejects_non_rule(self):
        with pytest.raises(ConfigError, match="FaultRule"):
            FaultSchedule(["wire.reset"])


class TestScheduleSerde:
    def test_round_trip_preserves_everything(self):
        schedule = FaultSchedule(
            [
                FaultRule(
                    "wire.delay_response",
                    probability=0.25,
                    magnitude=0.02,
                    jitter=0.01,
                    max_faults=7,
                    start=1.0,
                    stop=3.0,
                ),
                FaultRule("replication.dead_node", probability=1.0),
            ],
            seed=1234,
        )
        restored = FaultSchedule.from_dict(schedule.to_dict())
        assert restored.seed == schedule.seed
        assert restored.rules == schedule.rules

    def test_infinite_stop_serializes_as_none(self):
        data = FaultRule("wire.reset").to_dict()
        assert data["stop"] is None
        assert FaultRule.from_dict(data).stop == math.inf

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigError, match="unknown"):
            FaultRule.from_dict({"point": "wire.reset", "severity": 9})
        with pytest.raises(ConfigError, match="unknown"):
            FaultSchedule.from_dict({"seed": 1, "rules": [], "name": "x"})

    def test_round_trip_draws_identically(self):
        schedule = FaultSchedule(
            [FaultRule("wire.drop_response", probability=0.5)], seed=99
        )
        restored = FaultSchedule.from_dict(schedule.to_dict())
        for key in range(50):
            assert schedule.draw(0, key) == restored.draw(0, key)


class TestDeterministicDraws:
    def test_draw_is_pure_in_seed_rule_key(self):
        schedule = FaultSchedule(
            [FaultRule("wire.drop_response", probability=0.5)], seed=7
        )
        assert schedule.draw(0, 3) == schedule.draw(0, 3)
        assert schedule.draw(0, "node-1") == schedule.draw(0, "node-1")

    def test_different_seeds_differ(self):
        rule = FaultRule("wire.drop_response", probability=0.5)
        a = FaultSchedule([rule], seed=1)
        b = FaultSchedule([rule], seed=2)
        draws_a = [a.draw(0, k)[0] for k in range(32)]
        draws_b = [b.draw(0, k)[0] for k in range(32)]
        assert draws_a != draws_b

    def test_different_rule_indices_differ(self):
        schedule = FaultSchedule(
            [
                FaultRule("wire.drop_response", probability=0.5),
                FaultRule("wire.drop_response", probability=0.5),
            ],
            seed=7,
        )
        draws_0 = [schedule.draw(0, k)[0] for k in range(32)]
        draws_1 = [schedule.draw(1, k)[0] for k in range(32)]
        assert draws_0 != draws_1


class TestChaosInjector:
    def test_certain_rule_fires_and_records(self):
        injector = ChaosInjector(
            FaultSchedule([FaultRule("wire.reset", probability=1.0)])
        )
        assert injector.should("wire.reset")
        assert injector.event_count("wire.reset") == 1
        assert injector.events[0].point == "wire.reset"

    def test_impossible_rule_never_fires(self):
        injector = ChaosInjector(
            FaultSchedule([FaultRule("wire.reset", probability=0.0)])
        )
        assert not any(injector.should("wire.reset") for _ in range(100))
        assert injector.event_count() == 0

    def test_unmatched_point_is_silent(self):
        injector = ChaosInjector(
            FaultSchedule([FaultRule("wire.reset", probability=1.0)])
        )
        assert injector.fire("engine.slow_handler") is None

    def test_max_faults_budget_enforced(self):
        injector = ChaosInjector(
            FaultSchedule(
                [FaultRule("wire.drop_response", probability=1.0, max_faults=3)]
            )
        )
        fired = sum(injector.should("wire.drop_response") for _ in range(10))
        assert fired == 3

    def test_latency_magnitude_and_jitter_bounds(self):
        injector = ChaosInjector(
            FaultSchedule(
                [
                    FaultRule(
                        "wire.delay_response",
                        probability=1.0,
                        magnitude=0.02,
                        jitter=0.01,
                    )
                ]
            )
        )
        delays = [injector.latency("wire.delay_response") for _ in range(50)]
        assert all(0.01 <= d <= 0.03 for d in delays)
        assert len(set(delays)) > 1  # jitter actually varies

    def test_time_window_respected(self):
        clock = SimulatedClock()
        injector = ChaosInjector(
            FaultSchedule(
                [FaultRule("wire.reset", probability=1.0, start=1.0, stop=2.0)]
            ),
            clock=clock,
        )
        assert not injector.should("wire.reset")  # before the window
        clock.advance(1.5)
        assert injector.should("wire.reset")  # inside
        clock.advance(1.0)
        assert not injector.should("wire.reset")  # past stop (exclusive)

    def test_start_resets_epoch(self):
        clock = SimulatedClock()
        injector = ChaosInjector(
            FaultSchedule(
                [FaultRule("wire.reset", probability=1.0, stop=1.0)]
            ),
            clock=clock,
        )
        clock.advance(5.0)  # the window is long gone...
        assert not injector.should("wire.reset")
        injector.start()  # ...until the epoch is re-anchored
        assert injector.should("wire.reset")

    def test_first_matching_rule_wins(self):
        injector = ChaosInjector(
            FaultSchedule(
                [
                    FaultRule(
                        "wire.delay_response",
                        probability=1.0,
                        magnitude=0.5,
                        max_faults=1,
                    ),
                    FaultRule(
                        "wire.delay_response", probability=1.0, magnitude=0.1
                    ),
                ]
            )
        )
        first = injector.fire("wire.delay_response")
        second = injector.fire("wire.delay_response")
        assert first.rule_index == 0 and first.magnitude == 0.5
        assert second.rule_index == 1 and second.magnitude == 0.1

    def test_keyed_signature_is_interleaving_independent(self):
        schedule = FaultSchedule(
            [FaultRule("batch.worker_kill", probability=0.4)], seed=11
        )
        forward = ChaosInjector(schedule)
        backward = ChaosInjector(schedule)
        keys = list(range(64))
        for key in keys:
            forward.fire("batch.worker_kill", key=key)
        for key in reversed(keys):
            backward.fire("batch.worker_kill", key=key)
        assert forward.signature() == backward.signature()
        assert len(forward.signature()) > 0

    def test_two_runs_identical_signatures(self):
        schedule = FaultSchedule(
            [
                FaultRule("wire.drop_response", probability=0.1),
                FaultRule(
                    "wire.delay_response",
                    probability=0.2,
                    magnitude=0.005,
                    jitter=0.002,
                ),
            ],
            seed=42,
        )

        def run() -> tuple:
            injector = ChaosInjector(schedule)
            for _ in range(500):
                injector.fire("wire.drop_response")
                injector.fire("wire.delay_response")
            return injector.signature()

        first, second = run(), run()
        assert first == second
        assert len(first) > 0

    def test_threaded_keyed_consultations_deterministic(self):
        schedule = FaultSchedule(
            [FaultRule("replication.dead_node", probability=0.3)], seed=5
        )

        def run() -> tuple:
            injector = ChaosInjector(schedule)

            def worker(base: int) -> None:
                for key in range(base, base + 50):
                    injector.fire("replication.dead_node", key=key)

            threads = [
                threading.Thread(target=worker, args=(b,))
                for b in (0, 50, 100, 150)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            return injector.signature()

        assert run() == run()


class TestRuntime:
    def test_inactive_hooks_are_noops(self):
        chaos.uninstall()
        assert chaos.active() is None
        assert chaos.fire("wire.reset") is None
        assert not chaos.should("wire.reset")
        assert chaos.latency("wire.delay_response") == 0.0

    def test_installed_scopes_the_injector(self):
        injector = ChaosInjector(
            FaultSchedule([FaultRule("wire.reset", probability=1.0)])
        )
        with chaos.installed(injector) as active:
            assert chaos.active() is active is injector
            assert chaos.should("wire.reset")
        assert chaos.active() is None
        assert not chaos.should("wire.reset")

    def test_installed_uninstalls_on_error(self):
        injector = ChaosInjector(FaultSchedule([]))
        with pytest.raises(RuntimeError):
            with chaos.installed(injector):
                raise RuntimeError("boom")
        assert chaos.active() is None


class TestGarble:
    def test_garbled_response_fails_typed_decode(self):
        frame = wire.encode_response_frame(
            ApiResponse(ok=True, payload={"score": 1.5}), corr_id=9
        )
        garbled = chaos.garble(frame)
        assert garbled != frame
        decoder = wire.FrameDecoder()
        decoder.feed(garbled)
        opcode, corr_id, payload = decoder.next_frame()
        with pytest.raises(TransportError, match="tag"):
            wire.decode_response_payload(payload)

    def test_short_frame_truncated(self):
        assert chaos.garble(b"\x00\x01") == b"\x00"


class TestScheduledWorkerKills:
    def test_kill_set_is_deterministic(self):
        schedule = FaultSchedule(
            [FaultRule("batch.worker_kill", probability=0.5)], seed=3
        )
        first = scheduled_worker_kills(schedule, partitions=16)
        second = scheduled_worker_kills(schedule, partitions=16)
        assert first == second
        assert 0 < len(first) < 16  # p=0.5 over 16: neither empty nor full

    def test_budget_honoured_in_partition_order(self):
        schedule = FaultSchedule(
            [FaultRule("batch.worker_kill", probability=1.0, max_faults=2)],
            seed=3,
        )
        assert scheduled_worker_kills(schedule, partitions=8) == {0, 1}

    def test_injector_keeps_should_kill_worker_api(self):
        schedule = FaultSchedule(
            [FaultRule("batch.worker_kill", probability=1.0, max_faults=1)],
            seed=3,
        )
        injector = ScheduledFailureInjector.from_schedule(schedule, partitions=4)
        assert injector.schedule is schedule
        assert injector.worker_kills == {0}
        assert injector.should_kill_worker(0)
        assert not injector.should_kill_worker(1)
        # The driver-side consumption API is inherited unchanged.
        assert injector.consume_worker_kill(0)
        assert not injector.consume_worker_kill(0)

    def test_no_rules_means_no_kills(self):
        schedule = FaultSchedule([], seed=3)
        assert scheduled_worker_kills(schedule, partitions=8) == set()
        injector = ScheduledFailureInjector.from_schedule(schedule, partitions=8)
        assert injector.worker_kills == set()

"""Bounded request queues for the serving engine.

One :class:`RequestQueue` holds pending work for one (model, node) pair.
Queues are plain FIFO under a lock; blocking/waking is coordinated by
the engine's condition variable, not here, so the queue logic stays
deterministic and directly testable with a simulated clock.
"""

from __future__ import annotations

from concurrent.futures import Future
from dataclasses import dataclass, field
from collections import deque

import threading


@dataclass
class QueuedRequest:
    """One request waiting in a queue.

    ``kind`` is ``"predict"`` (payload: ``item``) or ``"top_k"``
    (payload: ``items``/``k``/``policy``/``item_filter``). The future is
    completed by the worker that serves (or sheds) the request.

    ``deadline`` is the *absolute* clock time after which serving this
    request is pointless (the caller has given up); the engine sheds it
    at admission, on queue scan, or just before compute — never after
    compute has started.
    """

    kind: str
    model: str
    uid: int
    enqueue_time: float
    item: object = None
    items: tuple = ()
    k: int = 1
    policy: object = None
    item_filter: object = None
    deadline: float | None = None
    future: Future = field(default_factory=Future)

    def age(self, now: float) -> float:
        """Seconds this request has been waiting."""
        return max(0.0, now - self.enqueue_time)

    def deadline_expired(self, now: float) -> bool:
        """Whether the absolute deadline (if any) has passed."""
        return self.deadline is not None and now >= self.deadline


class RequestQueue:
    """A bounded FIFO of :class:`QueuedRequest`, safe for many producers
    and many consumers."""

    def __init__(self, name: str, max_depth: int):
        self.name = name
        self.max_depth = max_depth
        self._lock = threading.Lock()
        self._items: deque[QueuedRequest] = deque()

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def depth(self) -> int:
        """Current queue depth (alias of ``len``)."""
        return len(self)

    def offer(self, request: QueuedRequest) -> bool:
        """Append unless the depth bound is hit; False means "shed me"."""
        with self._lock:
            if len(self._items) >= self.max_depth:
                return False
            self._items.append(request)
            return True

    def pop_up_to(self, n: int) -> list[QueuedRequest]:
        """Remove and return up to ``n`` requests, oldest first."""
        if n <= 0:
            return []
        with self._lock:
            taken = []
            while self._items and len(taken) < n:
                taken.append(self._items.popleft())
            return taken

    def pop_expired(self, now: float, max_age: float) -> list[QueuedRequest]:
        """Remove every leading request older than ``max_age``.

        Only the head needs checking: FIFO order means the oldest
        requests are always in front.
        """
        with self._lock:
            expired = []
            while self._items and self._items[0].age(now) > max_age:
                expired.append(self._items.popleft())
            return expired

    def pop_deadline_expired(self, now: float) -> list[QueuedRequest]:
        """Remove every request whose absolute deadline has passed.

        Unlike :meth:`pop_expired`, deadlines are per-request budgets,
        not a shared age bound, so the whole (depth-bounded) deque is
        scanned, not just the head.
        """
        with self._lock:
            if not any(r.deadline is not None for r in self._items):
                return []
            expired = [r for r in self._items if r.deadline_expired(now)]
            if expired:
                dead = set(map(id, expired))
                self._items = deque(
                    r for r in self._items if id(r) not in dead
                )
            return expired

    def oldest_age(self, now: float) -> float | None:
        """Age of the head request, or None when empty."""
        with self._lock:
            if not self._items:
                return None
            return self._items[0].age(now)

    def drain(self) -> list[QueuedRequest]:
        """Remove and return everything (engine shutdown)."""
        with self._lock:
            taken = list(self._items)
            self._items.clear()
            return taken

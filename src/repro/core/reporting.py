"""Deployment status reporting.

The paper's lifecycle-management pitch includes "aid[ing] administrators
in managing deployed models" (Section 4.3) — diagnostics over model
health, version history, cache effectiveness, and cluster locality.
This module renders one structured snapshot of a deployment, both as a
plain dict (for programmatic consumers / the front-end) and as an
aligned text report (for humans).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ModelStatus:
    """One deployed model's lifecycle snapshot."""

    name: str
    version: int
    dimension: int
    materialized: bool
    users: int
    observations_logged: int
    health_observations: int
    baseline_loss: float | None
    recent_loss: float | None
    stale: bool
    validation_pool: int
    versions: int
    retrains: int
    predictions_served: int = 0
    predict_p50_ms: float | None = None
    predict_p99_ms: float | None = None


@dataclass(frozen=True)
class DeploymentStatus:
    """The whole deployment at a point in time."""

    num_nodes: int
    alive_nodes: int
    models: list[ModelStatus] = field(default_factory=list)
    feature_cache_hit_rate: float = 0.0
    prediction_cache_hit_rate: float = 0.0
    network_locality: float = 1.0
    remote_accesses: int = 0
    requests_served: int = 0
    observations_applied: int = 0


def _live_user_count(table) -> int:
    """User count over healthy partitions only — the report must stay
    usable while a node is down."""
    return sum(
        len(table.partition(i))
        for i in range(table.num_partitions)
        if not table.partition(i).failed
    )


def snapshot(velox) -> DeploymentStatus:
    """Collect a :class:`DeploymentStatus` from a deployed Velox."""
    manager = velox.manager
    cluster = velox.cluster
    models = []
    for name in velox.registry.names():
        model = velox.registry.get(name)
        health = manager.health_report(name)
        table = manager.user_state_table(name)
        log = manager.observation_log(name)
        recorder = velox.service.serving_latency.get(name)
        if recorder is not None and len(recorder):
            latency = recorder.summary()
            served, p50, p99 = (
                latency.count,
                latency.p50 * 1e3,
                latency.p99 * 1e3,
            )
        else:
            served, p50, p99 = 0, None, None
        models.append(
            ModelStatus(
                name=name,
                version=model.version,
                dimension=model.dimension,
                materialized=model.materialized,
                users=_live_user_count(table),
                observations_logged=len(log),
                health_observations=health.observations,
                baseline_loss=(
                    health.baseline.mean if health.baseline.count else None
                ),
                recent_loss=health.recent.mean if health.recent.count else None,
                stale=health.is_stale(
                    velox.config.staleness_loss_ratio,
                    velox.config.min_observations_for_staleness,
                ),
                validation_pool=len(health.validation_pool),
                versions=len(velox.registry.history(name)),
                retrains=sum(
                    1 for e in manager.retrain_events if e.model_name == name
                ),
                predictions_served=served,
                predict_p50_ms=p50,
                predict_p99_ms=p99,
            )
        )

    def hit_rate(caches) -> float:
        """Aggregate hit rate across the given caches."""
        hits = sum(c.stats.hits for c in caches)
        lookups = sum(c.stats.lookups for c in caches)
        return hits / lookups if lookups else 0.0

    return DeploymentStatus(
        num_nodes=cluster.num_nodes,
        alive_nodes=sum(1 for n in cluster.nodes if n.alive),
        models=models,
        feature_cache_hit_rate=hit_rate(velox.service.feature_caches),
        prediction_cache_hit_rate=hit_rate(velox.service.prediction_caches),
        network_locality=cluster.network.stats.locality_rate,
        remote_accesses=cluster.network.stats.remote_accesses,
        requests_served=sum(n.stats.requests_served for n in cluster.nodes),
        observations_applied=sum(
            n.stats.observations_applied for n in cluster.nodes
        ),
    )


def render(status: DeploymentStatus) -> str:
    """Human-readable text report from a snapshot."""
    lines = [
        f"Velox deployment: {status.alive_nodes}/{status.num_nodes} nodes alive",
        f"  requests served      {status.requests_served}",
        f"  observations applied {status.observations_applied}",
        f"  feature cache hits   {status.feature_cache_hit_rate:.1%}",
        f"  prediction cache hits {status.prediction_cache_hit_rate:.1%}",
        f"  network locality     {status.network_locality:.1%} "
        f"({status.remote_accesses} remote accesses)",
        "",
        "  model           ver  users  obs     recent_loss  stale  retrains"
        "  p50_ms  p99_ms",
    ]
    for model in status.models:
        recent = f"{model.recent_loss:.4f}" if model.recent_loss is not None else "-"
        p50 = f"{model.predict_p50_ms:.2f}" if model.predict_p50_ms is not None else "-"
        p99 = f"{model.predict_p99_ms:.2f}" if model.predict_p99_ms is not None else "-"
        lines.append(
            f"  {model.name:<15} {model.version:<4} {model.users:<6} "
            f"{model.observations_logged:<7} {recent:<12} "
            f"{'YES' if model.stale else 'no':<6} {model.retrains:<9} "
            f"{p50:<7} {p99}"
        )
    return "\n".join(lines)


def report(velox) -> str:
    """Convenience: snapshot + render in one call."""
    return render(snapshot(velox))

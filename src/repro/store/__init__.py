"""veloxstore: a partitioned, versioned, in-memory key-value store.

This is the reproduction's stand-in for Tachyon [Li et al., SOCC 2014],
the memory-centric storage layer Velox uses to persist user weight tables,
item feature tables, and the observation log. It provides:

* named tables partitioned by a pluggable partitioner,
* per-key versions with optimistic compare-and-set,
* an append-only journal per partition, giving lineage-style recovery
  (drop the in-memory partition, replay the journal),
* table snapshots and restores,
* an append-only :class:`ObservationLog` that batch jobs read by offset,
* a stats-tracking :class:`LRUCache` reused by the serving tier,
* columnar slab storage (:mod:`repro.store.slab`) for tables whose
  values are fixed-rank float vectors.
"""

from repro.store.lru import LRUCache, CacheStats
from repro.store.journal import Journal, JournalRecord
from repro.store.partition import Partition
from repro.store.slab import (
    ArrayMapping,
    HybridExport,
    HybridStore,
    SlabPolicy,
    SlabRow,
    SlabSnapshot,
    SlabStorage,
    WeightRead,
)
from repro.store.table import Table, VersionedValue
from repro.store.store import VeloxStore
from repro.store.oblog import ObservationLog, Observation
from repro.store.persistence import checkpoint_store, restore_store

__all__ = [
    "checkpoint_store",
    "restore_store",
    "ArrayMapping",
    "HybridExport",
    "HybridStore",
    "LRUCache",
    "CacheStats",
    "Journal",
    "JournalRecord",
    "Partition",
    "SlabPolicy",
    "SlabRow",
    "SlabSnapshot",
    "SlabStorage",
    "Table",
    "VersionedValue",
    "VeloxStore",
    "ObservationLog",
    "Observation",
    "WeightRead",
]

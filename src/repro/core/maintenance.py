"""Periodic maintenance scheduling: the "e.g., daily" in the paper.

Section 2's straw-man pipeline recomputes W and X "periodically (e.g.,
daily)", and Section 2.1 notes that existing solutions "bind together
separate monitoring and management services with scripts to trigger
retraining, often in an ad-hoc manner". Velox's answer is reactive
(staleness-triggered retraining, in the manager); this module supplies
the complementary *proactive* schedule — nightly retrains, hourly store
snapshots, report dumps — as first-class tasks instead of cron scripts.

Runs against any :class:`~repro.common.clock.Clock`: a
:class:`SimulatedClock` makes schedules deterministic and instant in
tests; the :class:`SystemClock` runs them for real.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.common.clock import Clock, SimulatedClock
from repro.common.errors import ValidationError


@dataclass
class MaintenanceTask:
    """One recurring action."""

    name: str
    interval: float
    action: Callable[[], object]
    next_due: float
    runs: int = 0
    last_result: object = None
    last_error: BaseException | None = None


@dataclass(frozen=True)
class TaskRun:
    """Record of one executed task."""

    name: str
    at: float
    ok: bool
    error: str = ""


class MaintenanceScheduler:
    """Registers recurring tasks and runs whichever are due.

    Tasks never overlap (execution is sequential in due-time order) and
    a failing task does not stop the schedule — the failure is recorded
    on the task and in the run log, and the task is re-armed for its
    next interval, which is exactly what an unattended nightly-retrain
    loop needs.
    """

    def __init__(self, clock: Clock | None = None):
        self.clock = clock if clock is not None else SimulatedClock()
        self._tasks: dict[str, MaintenanceTask] = {}
        self.run_log: list[TaskRun] = []

    # -- registration ---------------------------------------------------------

    def every(self, interval: float, action: Callable[[], object], name: str) -> MaintenanceTask:
        """Register ``action`` to run each ``interval`` seconds of clock
        time, first due one interval from now."""
        if interval <= 0:
            raise ValidationError(f"interval must be > 0, got {interval}")
        if not name:
            raise ValidationError("task name must be non-empty")
        if name in self._tasks:
            raise ValidationError(f"task {name!r} already scheduled")
        task = MaintenanceTask(
            name=name,
            interval=interval,
            action=action,
            next_due=self.clock.now() + interval,
        )
        self._tasks[name] = task
        return task

    def schedule_retrain(self, velox, interval: float, model_name: str | None = None,
                         sample_fraction: float | None = None) -> MaintenanceTask:
        """Convenience: the paper's periodic offline recompute."""
        resolved = velox._model_name(model_name)

        def retrain():
            """The scheduled retrain action."""
            return velox.manager.retrain_now(
                resolved,
                reason=f"scheduled every {interval:g}s",
                sample_fraction=sample_fraction,
            )

        return self.every(interval, retrain, name=f"retrain:{resolved}")

    def schedule_snapshot(self, store, interval: float) -> MaintenanceTask:
        """Convenience: periodic store checkpointing (journal compaction)."""
        def snapshot():
            """The scheduled snapshot action."""
            store.snapshot_all()

        return self.every(interval, snapshot, name="store:snapshot")

    def cancel(self, name: str) -> bool:
        """Remove a task; returns whether it existed."""
        return self._tasks.pop(name, None) is not None

    def task(self, name: str) -> MaintenanceTask:
        """Look up a scheduled task by name."""
        try:
            return self._tasks[name]
        except KeyError:
            raise ValidationError(f"no task named {name!r}") from None

    def tasks(self) -> list[str]:
        """Sorted names of all scheduled tasks."""
        return sorted(self._tasks)

    # -- execution ----------------------------------------------------------------

    def run_pending(self) -> list[TaskRun]:
        """Execute every task whose due time has passed, oldest-due first.

        A task overdue by several intervals runs once and re-arms from
        *now* (catch-up storms after a long pause help nobody)."""
        now = self.clock.now()
        due = sorted(
            (t for t in self._tasks.values() if t.next_due <= now),
            key=lambda t: t.next_due,
        )
        executed = []
        for task in due:
            executed.append(self._execute(task, now))
        return executed

    def run_until(self, end_time: float) -> list[TaskRun]:
        """Advance the clock task-by-task until ``end_time`` (virtual
        clocks jump; the system clock sleeps), executing on schedule."""
        if end_time < self.clock.now():
            raise ValidationError("end_time is in the past")
        executed = []
        while True:
            pending = [t for t in self._tasks.values() if t.next_due <= end_time]
            if not pending:
                break
            task = min(pending, key=lambda t: t.next_due)
            wait = max(0.0, task.next_due - self.clock.now())
            self.clock.advance(wait)
            executed.append(self._execute(task, self.clock.now()))
        remaining = end_time - self.clock.now()
        if remaining > 0:
            self.clock.advance(remaining)
        return executed

    def _execute(self, task: MaintenanceTask, now: float) -> TaskRun:
        try:
            task.last_result = task.action()
            task.last_error = None
            run = TaskRun(name=task.name, at=now, ok=True)
        except Exception as err:  # recorded, schedule continues
            task.last_error = err
            run = TaskRun(name=task.name, at=now, ok=False, error=str(err))
        task.runs += 1
        task.next_due = now + task.interval
        self.run_log.append(run)
        return run

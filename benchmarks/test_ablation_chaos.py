"""Ablation: resilience policies under a recorded fault schedule.

The chaos layer (``repro/chaos``) + resilience stack (deadline budgets,
retries, hedged reads, circuit breaking, the degradation ladder) claim
that under injected trouble — a node kill, 10% dropped response frames,
latency spikes — the resilient configuration holds its p99 SLO with
zero client-visible errors, while the baseline (plain pooled client, no
policies) blows the SLO and surfaces errors. This experiment records:

* **determinism** — the same seeded :class:`FaultSchedule` replayed
  twice produces bit-identical injected-fault sequences (the property
  that makes any chaos run reproducible),
* **baseline vs resilient** — the same fault schedule driven against
  the same server stack with a plain :class:`ConnectionPool` and with a
  :class:`ResilientClient`: per-config p99, client-visible errors, and
  the resilience counters explaining the difference,
* **deadline sheds** — a burst of spent-budget requests is shed
  entirely at pre-compute stages (admission/queue/pre-compute), never
  after model compute.

Writes ``benchmarks/results/ablation_chaos.txt`` and the
machine-readable ``BENCH_chaos.json`` at the repo root.

Set ``RESILIENCE_SMOKE=1`` for the fast CI configuration.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import time

import numpy as np

from repro import Velox, VeloxConfig, chaos
from repro.chaos import ChaosInjector, FaultRule, FaultSchedule
from repro.common.clock import SimulatedClock
from repro.common.errors import DeadlineExceededError, DegradedError, TransportError
from repro.core.models import MatrixFactorizationModel
from repro.frontend import (
    ConnectionPool,
    HedgePolicy,
    PredictApiRequest,
    ResilientClient,
    RetryPolicy,
    VeloxServer,
)
from repro.serving import ServingConfig
from repro.tools.bench_report import write_json_summary

from conftest import write_result

SMOKE = os.environ.get("RESILIENCE_SMOKE", "") not in ("", "0")

NUM_NODES = 4
NUM_USERS = 64 if SMOKE else 128
NUM_ITEMS = 200 if SMOKE else 800
RANK = 8
REQUESTS = 150 if SMOKE else 400
WARMUP = 30
SLO_P99_MS = 50.0
BASELINE_TIMEOUT = 0.2  # what one lost response costs the plain client
SEED = 42

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def fault_schedule() -> FaultSchedule:
    """The recorded schedule: node kill + 10% drops + latency spikes."""
    return FaultSchedule(
        [
            # One node dies shortly into the run (first alive node the
            # heartbeat tick consults; keyed by node id).
            FaultRule(
                "replication.dead_node",
                probability=1.0,
                max_faults=1,
                start=0.1,
            ),
            # One in ten response frames silently vanishes.
            FaultRule("wire.drop_response", probability=0.10),
            # One in twenty responses takes a 20ms (+/-10ms) spike.
            FaultRule(
                "wire.delay_response",
                probability=0.05,
                magnitude=0.020,
                jitter=0.010,
            ),
        ],
        seed=SEED,
    )


def build_deployment() -> tuple[Velox, object]:
    rng = np.random.default_rng(SEED)
    model = MatrixFactorizationModel(
        "bench",
        item_factors=rng.normal(0, 0.1, (NUM_ITEMS, RANK)),
        item_bias=rng.normal(0, 0.1, NUM_ITEMS),
        global_mean=3.5,
    )
    weights = {
        uid: model.pack_user_weights(rng.normal(0, 0.1, RANK), 0.0)
        for uid in range(NUM_USERS)
    }
    velox = Velox.deploy(
        VeloxConfig(num_nodes=NUM_NODES, replication_factor=2),
        auto_retrain=False,
    )
    velox.add_model(model, initial_user_weights=weights)
    engine = velox.serving_engine(
        ServingConfig(num_workers=2, batching="adaptive", slo_p99=0.05)
    )
    return velox, engine


def replay_offline(schedule: FaultSchedule) -> tuple:
    """A scripted consultation sequence against a simulated clock.

    This is the determinism artifact: the exact consultation pattern a
    test would drive, replayed from scratch. Two calls must produce
    bit-identical signatures.
    """
    clock = SimulatedClock()
    injector = ChaosInjector(schedule, clock=clock)
    for node_id in range(NUM_NODES):
        injector.fire("replication.dead_node", key=node_id)
    clock.advance(0.2)  # into the kill window
    for node_id in range(NUM_NODES):
        injector.fire("replication.dead_node", key=node_id)
    for _ in range(2000):
        injector.fire("wire.drop_response")
        injector.fire("wire.delay_response")
        clock.advance(0.001)
    return injector.signature()


def request_stream(rng: np.random.Generator, count: int):
    for _ in range(count):
        yield int(rng.integers(NUM_USERS)), int(rng.integers(NUM_ITEMS))


def percentile_ms(latencies: list[float], q: float) -> float:
    return float(np.percentile(np.asarray(latencies), q) * 1e3)


def run_baseline() -> dict:
    """Plain pooled client, no resilience policies, under the schedule."""
    velox, engine = build_deployment()
    injector = ChaosInjector(fault_schedule())
    latencies, errors = [], 0
    try:
        with VeloxServer(velox, engine=engine) as server:
            pool = ConnectionPool(
                server.host, server.port, size=2, timeout=BASELINE_TIMEOUT
            )
            try:
                rng = np.random.default_rng(SEED + 1)
                for uid, item in request_stream(rng, WARMUP):
                    pool.call(PredictApiRequest(uid=uid, item=item))
                injector.start()
                with chaos.installed(injector):
                    for uid, item in request_stream(rng, REQUESTS):
                        begin = time.perf_counter()
                        try:
                            response = pool.call(
                                PredictApiRequest(uid=uid, item=item)
                            )
                            if not response.ok:
                                errors += 1
                        except TransportError:
                            errors += 1
                        latencies.append(time.perf_counter() - begin)
            finally:
                pool.close()
    finally:
        velox.shutdown()
    return {
        "errors": errors,
        "p50_ms": percentile_ms(latencies, 50),
        "p99_ms": percentile_ms(latencies, 99),
        "injected": injector.event_count(),
        "injected_by_point": {
            point: injector.event_count(point)
            for point in fault_schedule().points()
        },
    }


def run_resilient() -> dict:
    """The full policy stack under the identical schedule."""
    velox, engine = build_deployment()
    injector = ChaosInjector(fault_schedule())
    latencies, errors = [], 0
    try:
        # Two endpoints over the same deployment: hedges and retries
        # have somewhere else to go when a response is lost.
        with VeloxServer(velox, engine=engine) as primary, VeloxServer(
            velox, engine=engine
        ) as backup:
            client = ResilientClient(
                [(primary.host, primary.port), (backup.host, backup.port)],
                pool_size=2,
                timeout=2.0,
                retry=RetryPolicy(max_attempts=3, base_backoff=0.005),
                hedge=HedgePolicy(
                    percentile=95.0,
                    min_samples=16,
                    max_delay=0.05,
                    max_hedges=3,
                ),
            )
            try:
                rng = np.random.default_rng(SEED + 1)
                for uid, item in request_stream(rng, WARMUP):
                    client.predict(uid=uid, item=item)
                injector.start()
                with chaos.installed(injector):
                    for uid, item in request_stream(rng, REQUESTS):
                        begin = time.perf_counter()
                        try:
                            response = client.predict(
                                uid=uid, item=item, deadline=1.0
                            )
                            if not response.ok:
                                errors += 1
                        except (TransportError, DegradedError):
                            errors += 1
                        latencies.append(time.perf_counter() - begin)
            finally:
                client.close()
    finally:
        velox.shutdown()
    snapshot = client.metrics.snapshot()
    return {
        "errors": errors,
        "p50_ms": percentile_ms(latencies, 50),
        "p99_ms": percentile_ms(latencies, 99),
        "injected": injector.event_count(),
        "injected_by_point": {
            point: injector.event_count(point)
            for point in fault_schedule().points()
        },
        "client_metrics": snapshot,
        "engine_resilience": engine.resilience.snapshot(),
    }


def run_deadline_sheds() -> dict:
    """Spent-budget burst: everything sheds at a pre-compute stage."""
    velox, engine = build_deployment()
    try:
        engine.start()
        shed, served = 0, 0
        # Impossible budgets (already spent at submit) plus very tight
        # ones (may expire while queued): whatever the mix of outcomes,
        # no shed may happen after compute starts.
        rng = np.random.default_rng(SEED + 2)
        futures = []
        for index, (uid, item) in enumerate(request_stream(rng, 80)):
            deadline = 0.0 if index % 2 == 0 else 0.001
            try:
                futures.append(
                    engine.submit_predict(uid, item, deadline=deadline)
                )
            except DeadlineExceededError:
                shed += 1
        for future in futures:
            try:
                future.result(timeout=10.0)
                served += 1
            except DeadlineExceededError:
                shed += 1
        stages = engine.resilience.snapshot()["deadline_sheds"]
    finally:
        velox.shutdown()
        engine.stop()
    return {"shed": shed, "served": served, "stages": stages}


def test_chaos_resilience_summary(benchmark):
    # -- determinism: the same schedule replayed twice ----------------------
    schedule = fault_schedule()
    signature_a = replay_offline(schedule)
    signature_b = replay_offline(FaultSchedule.from_dict(schedule.to_dict()))
    assert signature_a == signature_b, "seeded schedule replay diverged"
    assert len(signature_a) > 0
    signature_hash = hashlib.blake2b(
        repr(signature_a).encode(), digest_size=16
    ).hexdigest()

    # -- the two configurations under identical trouble ---------------------
    baseline = run_baseline()
    resilient = run_resilient()
    sheds = run_deadline_sheds()

    lines = [
        f"== chaos ablation ({NUM_NODES} nodes rf=2, {REQUESTS} requests, "
        f"SLO p99 {SLO_P99_MS:.0f}ms, smoke={SMOKE}) ==",
        f"schedule: seed={schedule.seed}, "
        f"{len(schedule)} rules (node kill + 10% drops + latency spikes)",
        f"determinism: two offline replays -> identical "
        f"{len(signature_a)}-event signatures (blake2b {signature_hash})",
        "",
        "config      p50_ms   p99_ms   errors  injected_faults",
        f"baseline    {baseline['p50_ms']:7.2f} {baseline['p99_ms']:8.2f} "
        f"{baseline['errors']:7d}  {baseline['injected']}",
        f"resilient   {resilient['p50_ms']:7.2f} {resilient['p99_ms']:8.2f} "
        f"{resilient['errors']:7d}  {resilient['injected']}",
        "",
        f"baseline violates SLO: p99 {baseline['p99_ms']:.1f}ms > "
        f"{SLO_P99_MS:.0f}ms with {baseline['errors']} client-visible errors",
        f"resilient holds SLO: p99 {resilient['p99_ms']:.1f}ms <= "
        f"{SLO_P99_MS:.0f}ms with {resilient['errors']} errors",
        f"  retries={resilient['client_metrics']['retries']} "
        f"hedges={resilient['client_metrics']['hedges_launched']} "
        f"(won {resilient['client_metrics']['hedges_won']}) "
        f"degraded={resilient['client_metrics']['degraded']}",
        "",
        f"deadline burst: {sheds['shed']} shed / {sheds['served']} served; "
        f"shed stages {sheds['stages']} (all pre-compute)",
    ]
    write_result("ablation_chaos", lines)

    write_json_summary(
        REPO_ROOT / "BENCH_chaos.json",
        "ablation_chaos",
        {
            "smoke": SMOKE,
            "slo_p99_ms": SLO_P99_MS,
            "workload": {
                "num_nodes": NUM_NODES,
                "replication_factor": 2,
                "num_users": NUM_USERS,
                "num_items": NUM_ITEMS,
                "requests": REQUESTS,
                "baseline_timeout_s": BASELINE_TIMEOUT,
            },
            "schedule": schedule.to_dict(),
            "determinism": {
                "replay_events": len(signature_a),
                "signatures_identical": signature_a == signature_b,
                "signature_blake2b": signature_hash,
            },
            "baseline": baseline,
            "resilient": resilient,
            "deadline_sheds": sheds,
        },
    )

    # -- shape assertions ----------------------------------------------------
    # The baseline configuration blows its SLO under the schedule...
    assert baseline["p99_ms"] > SLO_P99_MS
    assert baseline["errors"] > 0
    assert baseline["injected_by_point"]["wire.drop_response"] > 0
    assert baseline["injected_by_point"]["replication.dead_node"] == 1
    # ...the resilient configuration absorbs the identical trouble.
    assert resilient["errors"] == 0, "resilient config leaked client errors"
    assert resilient["p99_ms"] <= SLO_P99_MS
    assert resilient["client_metrics"]["hedges_launched"] > 0
    assert resilient["injected_by_point"]["replication.dead_node"] == 1
    # Deadline sheds happen before model compute, never after.
    assert sheds["shed"] > 0
    assert set(sheds["stages"]) <= {"admission", "queue", "pre-compute"}
    assert sum(sheds["stages"].values()) == sheds["shed"]

    benchmark.extra_info.update(
        baseline_p99_ms=baseline["p99_ms"],
        resilient_p99_ms=resilient["p99_ms"],
        resilient_errors=resilient["errors"],
    )
    benchmark(lambda: replay_offline(schedule))

"""Follower-side partition replicas and the promoted failover view.

A :class:`PartitionReplica` is one follower's copy of one (table,
partition): a key → (value, version) dict plus the journal sequence it
has applied through. Followers learn mutations exclusively by **journal
shipping** — the primary's journal records from ``applied_sequence``
onward, applied in order (values deep-copied, modeling serialization
across the wire, so a replica never aliases primary state). When the
primary has compacted past a replica's ack point the records are gone
and catch-up falls back to a **snapshot transfer**: the primary's full
state replaces the replica wholesale.

On primary failure the replica can be **promoted**: it serves reads from
whatever prefix was shipped before the failure (bounded staleness —
``promotion_lag`` records were in the journal but never shipped) and
accepts writes, which it applies locally *and* appends to the durable
journal, keeping the journal the single source of truth. When the
failed node restarts, replaying the full journal reproduces both the
unshipped tail and every failover-era write, in order, so primary and
replicas reconverge.
"""

from __future__ import annotations

import copy
from typing import Iterator

from repro.common.errors import ReplicationError
from repro.store.journal import JournalOp, JournalRecord


class PartitionReplica:
    """One follower's copy of one table partition."""

    def __init__(self, table_name: str, partition_index: int, node_id: int):
        self.table_name = table_name
        self.partition_index = partition_index
        #: the physical node hosting this replica.
        self.node_id = node_id
        self._data: dict[object, tuple[object, int]] = {}
        #: journal records applied so far (next expected sequence).
        self.applied_sequence = 0
        self.promoted = False
        #: records the primary had journaled but never shipped, frozen
        #: at promotion time — the staleness bound for follower reads.
        self.promotion_lag = 0
        self.snapshot_transfers = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: object) -> bool:
        return key in self._data

    # -- journal shipping ----------------------------------------------------

    def apply(self, record: JournalRecord) -> None:
        """Apply one shipped journal record, enforcing sequence order."""
        if record.sequence != self.applied_sequence:
            raise ReplicationError(
                f"replica of {self.table_name}[{self.partition_index}] at "
                f"sequence {self.applied_sequence} got record "
                f"{record.sequence}; journal shipping must be gapless"
            )
        self._apply_op(record.op, record.key, copy.deepcopy(record.value),
                       record.version)
        self.applied_sequence = record.sequence + 1

    def _apply_op(self, op: JournalOp, key, value, version: int) -> None:
        if op is JournalOp.PUT:
            self._data[key] = (value, version)
        elif op is JournalOp.DELETE:
            self._data.pop(key, None)
        elif op is JournalOp.TRUNCATE:
            self._data.clear()

    def install_snapshot(
        self, state: dict[object, tuple[object, int]], sequence: int
    ) -> None:
        """Replace the replica wholesale (catch-up past compaction)."""
        self._data = copy.deepcopy(state)
        self.applied_sequence = sequence
        self.snapshot_transfers += 1

    def lag(self, journal_head: int) -> int:
        """Records the primary has journaled that this replica lacks."""
        return max(0, journal_head - self.applied_sequence)

    def reset(self) -> None:
        """Drop all replica state (the hosting node lost its memory).

        The replica restarts from sequence 0; the next shipping round
        either replays the whole journal or, when the journal has been
        compacted past 0, falls back to a snapshot transfer.
        """
        self._data = {}
        self.applied_sequence = 0

    # -- promoted serving ----------------------------------------------------

    def promote(self, journal_head: int) -> int:
        """Become the serving copy; returns the frozen staleness bound."""
        self.promotion_lag = self.lag(journal_head)
        self.promoted = True
        return self.promotion_lag

    def demote(self) -> None:
        """Stop serving (the real primary recovered)."""
        self.promoted = False
        self.promotion_lag = 0

    # -- mapping reads (used by the failover view) ---------------------------

    def get(self, key: object) -> tuple[object, int] | None:
        """``(value, version)`` or None — the shipped view of the key."""
        return self._data.get(key)

    def keys(self) -> Iterator[object]:
        return iter(list(self._data.keys()))

    def items(self) -> Iterator[tuple[object, object]]:
        return iter([(k, v) for k, (v, _) in self._data.items()])

    def local_put(self, key: object, value: object) -> int:
        """Apply a failover-era write locally; returns the new version."""
        existing = self._data.get(key)
        version = 1 if existing is None else existing[1] + 1
        self._data[key] = (value, version)
        return version

    def local_delete(self, key: object) -> bool:
        """Apply a failover-era delete locally."""
        return self._data.pop(key, None) is not None

    def local_truncate(self) -> None:
        """Apply a failover-era truncate locally."""
        self._data.clear()


class PromotedPartitionView:
    """The failover delegate a failed :class:`~repro.store.Partition`
    routes its operations through.

    Reads serve the promoted replica's shipped state. Writes journal to
    the *durable* journal first (it survives node loss — the Tachyon
    lineage tier), then apply to the replica, so a later ``recover()``
    of the real partition replays failover-era writes after the
    unshipped tail and every copy reconverges.
    """

    def __init__(self, replica: PartitionReplica, journal, on_write=None):
        if not replica.promoted:
            raise ReplicationError(
                f"replica of {replica.table_name}[{replica.partition_index}] "
                "must be promoted before serving"
            )
        self.replica = replica
        self._journal = journal
        #: callable(replica) fired after each failover-era mutation.
        self._on_write = on_write

    def get(self, key: object) -> tuple[object, int] | None:
        return self.replica.get(key)

    def __contains__(self, key: object) -> bool:
        return key in self.replica

    def __len__(self) -> int:
        return len(self.replica)

    def keys(self) -> Iterator[object]:
        return self.replica.keys()

    def items(self) -> Iterator[tuple[object, object]]:
        return self.replica.items()

    def put(self, key: object, value: object) -> int:
        version = self.replica.local_put(key, value)
        self._journal.append(JournalOp.PUT, key, copy.deepcopy(value), version)
        if self._on_write is not None:
            self._on_write(self.replica)
        return version

    def install(self, key: object, value: object, version: int) -> None:
        if version < 1:
            raise ValueError(f"version must be >= 1, got {version}")
        self.replica._data[key] = (copy.deepcopy(value), version)
        self._journal.append(JournalOp.PUT, key, copy.deepcopy(value), version)
        if self._on_write is not None:
            self._on_write(self.replica)

    def delete(self, key: object) -> bool:
        existed = self.replica.local_delete(key)
        if existed:
            self._journal.append(JournalOp.DELETE, key, None, 0)
            if self._on_write is not None:
                self._on_write(self.replica)
        return existed

    def truncate(self) -> None:
        self.replica.local_truncate()
        self._journal.append(JournalOp.TRUNCATE, None, None, 0)
        if self._on_write is not None:
            self._on_write(self.replica)

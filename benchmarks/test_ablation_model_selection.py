"""Ablation: dynamic model selection (the abstract's "dynamic weighting").

The paper's abstract promises "lightweight online model maintenance and
selection (i.e., dynamic weighting)", elaborated in Section 8 as
multiple-model bandit techniques. This ablation deploys two models of
the same catalog — one well-trained, one deliberately poor — plus a
*shifting* environment in which the better model changes mid-run, and
compares selection strategies on cumulative prediction loss.

Which model is better is **user-dependent** (even users match alpha,
odd users match beta) and **flips mid-run** — the regime that motivates
*per-user* dynamic weighting rather than one global mixture:

* static uniform blend (no selection — the baseline),
* Hedge (full information) globally — wrong granularity here, since
  half the population prefers each model at any moment,
* Hedge per-user with decay — the paper's per-user dynamic weighting,
* EXP3 per-user (bandit feedback),
* oracle (always the currently-correct model per user) as the floor.

Shape assertions: per-user Hedge beats both the static blend and the
global selector; the bandit variant also beats static; the oracle is
the floor.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Velox, VeloxConfig
from repro.core.models import MatrixFactorizationModel
from repro.core.selection import (
    Exp3Selector,
    HedgeSelector,
    SelectorScope,
)

from conftest import write_result

NUM_ITEMS = 60
NUM_USERS = 16
ROUNDS = 1500
FLIP_AT = ROUNDS // 2
RANK = 6


def best_model(round_index: int, uid: int) -> str:
    """Even users match alpha, odd users beta — inverted after the flip."""
    prefers_alpha = uid % 2 == 0
    if round_index >= FLIP_AT:
        prefers_alpha = not prefers_alpha
    return "alpha" if prefers_alpha else "beta"


def deploy_two_models(seed: int = 41):
    rng = np.random.default_rng(seed)
    item_factors = rng.normal(0, 0.5, (NUM_ITEMS, RANK))
    taste_a = rng.normal(0, 0.5, (NUM_USERS, RANK))
    taste_b = rng.normal(0, 0.5, (NUM_USERS, RANK))

    def environment(round_index: int, uid: int, item: int) -> float:
        taste = taste_a if best_model(round_index, uid) == "alpha" else taste_b
        return float(np.clip(3.0 + taste[uid] @ item_factors[item], 0.5, 5.0))

    velox = Velox.deploy(VeloxConfig(num_nodes=2), auto_retrain=False)
    for name, taste in (("alpha", taste_a), ("beta", taste_b)):
        model = MatrixFactorizationModel(name, item_factors, global_mean=3.0)
        weights = {
            uid: model.pack_user_weights(taste[uid], 0.0) for uid in range(NUM_USERS)
        }
        velox.add_model(model, initial_user_weights=weights)
    return velox, environment


def run_strategy(strategy: str) -> float:
    """Cumulative squared loss of the blended prediction."""
    velox, environment = deploy_two_models()
    rng = np.random.default_rng(7)
    names = ["alpha", "beta"]

    # decay < 1 gives the selectors a finite memory so they can track
    # the mid-run flip of the better model.
    if strategy == "hedge_global":
        scope = SelectorScope(
            lambda: HedgeSelector(names, eta=1.0, decay=0.85), per_user=False
        )
    elif strategy == "hedge_per_user":
        scope = SelectorScope(
            lambda: HedgeSelector(names, eta=1.0, decay=0.85), per_user=True
        )
    elif strategy == "exp3_per_user":
        scope = SelectorScope(
            lambda: Exp3Selector(names, gamma=0.1, eta=0.3, decay=0.9, rng=3),
            per_user=True,
        )
    else:
        scope = None

    total_loss = 0.0
    for round_index in range(ROUNDS):
        uid = int(rng.integers(NUM_USERS))
        item = int(rng.integers(NUM_ITEMS))
        truth = environment(round_index, uid, item)
        scores = {
            name: velox.predict_detailed(name, uid, item).score for name in names
        }
        if strategy == "static_uniform":
            blended = 0.5 * scores["alpha"] + 0.5 * scores["beta"]
        elif strategy == "oracle":
            blended = scores[best_model(round_index, uid)]
        else:
            weights = scope.for_user(uid).weights()
            blended = sum(weights[n] * scores[n] for n in names)
        total_loss += (truth - blended) ** 2

        losses = {n: (truth - scores[n]) ** 2 for n in names}
        if strategy == "exp3_per_user":
            selector = scope.for_user(uid)
            served = selector.choose()
            selector.update({served: losses[served]}, served=served)
        elif scope is not None:
            scope.for_user(uid).update(losses)
    return total_loss


STRATEGIES = [
    "static_uniform",
    "hedge_global",
    "hedge_per_user",
    "exp3_per_user",
    "oracle",
]


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_selection_strategy(benchmark, strategy):
    benchmark.pedantic(run_strategy, args=(strategy,), rounds=1, iterations=1)


def test_selection_summary(benchmark):
    results = {s: run_strategy(s) for s in STRATEGIES}
    lines = ["strategy        cumulative_sq_loss"]
    for name in STRATEGIES:
        lines.append(f"{name:<16}{results[name]:.1f}")
    write_result("ablation_model_selection", lines)

    # Shape: per-user dynamic weighting wins — it is the only
    # granularity that can be right when each half of the population
    # prefers a different model.
    assert results["hedge_per_user"] < 0.7 * results["static_uniform"]
    assert results["hedge_per_user"] < results["hedge_global"]
    assert results["exp3_per_user"] < results["static_uniform"]
    assert results["oracle"] <= min(
        results[s] for s in STRATEGIES if s != "oracle"
    ) * 1.05
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

"""Offline ALS: convergence, signal recovery, cold entities, validation."""

import numpy as np
import pytest

from repro.batch import BatchContext
from repro.common.errors import ValidationError
from repro.core.offline import als_train, predict_rating
from repro.data import SynthLensConfig, generate_synthlens
from repro.metrics import rmse


class TestAlsConvergence:
    def test_training_rmse_decreases(self, small_split, batch_ctx):
        result = als_train(
            batch_ctx,
            [(r.uid, r.item_id, r.rating) for r in small_split.init],
            rank=5,
            num_items=120,
            num_iterations=6,
        )
        assert result.train_rmse[-1] < result.train_rmse[0]
        assert result.train_rmse[-1] < 0.3

    def test_recovers_planted_signal(self, batch_ctx):
        lens = generate_synthlens(
            SynthLensConfig(
                num_users=80, num_items=150, rank=4, ratings_per_user_mean=35,
                min_ratings_per_user=25, noise_std=0.2, seed=13,
            )
        )
        half = len(lens.ratings) // 2
        train, test = lens.ratings[:half], lens.ratings[half:]
        result = als_train(
            batch_ctx,
            [(r.uid, r.item_id, r.rating) for r in train],
            rank=4,
            num_items=150,
            num_iterations=10,
        )
        predictions = [predict_rating(result, r.uid, r.item_id) for r in test]
        truth = [r.rating for r in test]
        error = rmse(truth, predictions)
        # Must clearly beat the global-mean baseline and approach noise.
        baseline = rmse(truth, [result.global_mean] * len(truth))
        assert error < 0.75 * baseline
        assert error < 0.6

    def test_more_data_helps(self, small_lens, batch_ctx):
        ratings = [(r.uid, r.item_id, r.rating) for r in small_lens.ratings]
        test = ratings[-400:]
        small = als_train(batch_ctx, ratings[:400], rank=5, num_items=120, num_iterations=6)
        large = als_train(batch_ctx, ratings[:-400], rank=5, num_items=120, num_iterations=6)
        small_err = rmse([r[2] for r in test], [predict_rating(small, r[0], r[1]) for r in test])
        large_err = rmse([r[2] for r in test], [predict_rating(large, r[0], r[1]) for r in test])
        assert large_err < small_err


class TestAlsOutputs:
    def test_shapes(self, batch_ctx):
        ratings = [(u, i, 3.0) for u in range(5) for i in range(8)]
        result = als_train(batch_ctx, ratings, rank=3, num_items=10, num_iterations=2)
        assert result.item_factors.shape == (10, 3)
        assert result.item_bias.shape == (10,)
        assert set(result.user_factors) == set(range(5))
        assert all(f.shape == (3,) for f in result.user_factors.values())

    def test_global_mean(self, batch_ctx):
        ratings = [(0, 0, 2.0), (0, 1, 4.0), (1, 0, 3.0)]
        result = als_train(batch_ctx, ratings, rank=1, num_items=2, num_iterations=1)
        assert result.global_mean == pytest.approx(3.0)

    def test_cold_items_keep_zero_bias(self, batch_ctx):
        ratings = [(0, 0, 3.0), (0, 1, 4.0), (1, 0, 2.0), (1, 1, 5.0)]
        result = als_train(batch_ctx, ratings, rank=2, num_items=10, num_iterations=2)
        assert result.item_bias[7] == 0.0  # item 7 never rated

    def test_predict_rating_cold_user_falls_back(self, batch_ctx):
        ratings = [(0, 0, 4.0), (0, 1, 4.0), (1, 0, 4.0), (1, 1, 4.0)]
        result = als_train(batch_ctx, ratings, rank=1, num_items=2, num_iterations=2)
        cold = predict_rating(result, uid=99, item_id=0)
        assert cold == pytest.approx(result.global_mean + result.item_bias[0])

    def test_deterministic_given_seed(self, batch_ctx):
        ratings = [(u, i, float(2 + (u + i) % 3)) for u in range(6) for i in range(6)]
        a = als_train(batch_ctx, ratings, rank=2, num_items=6, num_iterations=3, seed=5)
        b = als_train(batch_ctx, ratings, rank=2, num_items=6, num_iterations=3, seed=5)
        assert np.array_equal(a.item_factors, b.item_factors)


class TestAlsValidation:
    def test_empty_ratings_rejected(self, batch_ctx):
        with pytest.raises(ValidationError):
            als_train(batch_ctx, [], rank=2, num_items=5)

    def test_item_out_of_range_rejected(self, batch_ctx):
        with pytest.raises(ValidationError):
            als_train(batch_ctx, [(0, 99, 3.0)], rank=2, num_items=5)

    def test_invalid_params(self, batch_ctx):
        ratings = [(0, 0, 3.0)]
        with pytest.raises(ValidationError):
            als_train(batch_ctx, ratings, rank=0, num_items=1)
        with pytest.raises(ValidationError):
            als_train(batch_ctx, ratings, rank=1, num_items=1, num_iterations=0)
        with pytest.raises(ValidationError):
            als_train(batch_ctx, ratings, rank=1, num_items=1, regularization=-1)
